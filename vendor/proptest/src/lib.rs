//! Offline, zero-dependency shim for the subset of `proptest` this
//! workspace's property tests use.
//!
//! The container has no crates.io access, so the workspace vendors a small
//! property-testing engine with the same surface syntax: the [`proptest!`]
//! macro (including `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message; it is not minimized.
//! * **Deterministic generation.** Cases are drawn from a generator seeded
//!   by the test's name, so every run (locally and in CI) explores the
//!   identical sequence — which doubles as the reproducibility discipline
//!   `cargo xtask check` enforces elsewhere in the workspace.
//! * `*.proptest-regressions` files are ignored.

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from arbitrary bytes (test names).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// the produced strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end as i64 - self.start as i64) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i32)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            rng.range_u64(self.start as u64, self.end as u64) as usize
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length comes from `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property-test condition, reporting the case number on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream block syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in (0f64..1.0, 0f64..1.0)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_specs() {
        let mut rng = crate::TestRng::from_name("lens");
        let exact = collection::vec(0usize..5, 7usize).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..100 {
            let ranged = collection::vec(0usize..5, 2usize..6).generate(&mut rng);
            assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        let sa = collection::vec(-1.0f64..1.0, 16usize).generate(&mut a);
        let sb = collection::vec(-1.0f64..1.0, 16usize).generate(&mut b);
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(v in collection::vec(0usize..10, 0..8), (x, y) in (0.0f64..1.0, 1usize..4)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(y.min(3), y);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(n in 1usize..5) {
            prop_assert!((1..5).contains(&n));
        }
    }
}
