//! Offline, zero-dependency shim for the subset of `crossbeam` this
//! workspace uses: [`thread::scope`] with crossbeam's closure signature
//! (`spawn(|scope| ...)`) and panic-capturing `Result`, plus
//! multi-producer **multi-consumer** [`channel`]s (`unbounded`, `bounded`,
//! `recv_timeout`) built on `Mutex` + `Condvar`.
//!
//! The channel is MPMC because the wire-protocol simulator clones
//! `Receiver`s across device threads; `std::sync::mpsc` receivers are not
//! cloneable and `std::sync::mpmc` is still unstable on this toolchain.

pub mod thread {
    //! Scoped threads with crossbeam's API shape over `std::thread::scope`.

    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    /// Error payload of a panicked scope: the panic value of the first
    /// panicking thread (crossbeam semantics — `std::thread::scope` alone
    /// would replace it with a generic "a scoped thread panicked").
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Handle passed to scope closures; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        first_panic: Arc<Mutex<Option<PanicPayload>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// workers can spawn further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let slot = Arc::clone(&self.first_panic);
            inner.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| {
                    f(&Scope {
                        inner,
                        first_panic: Arc::clone(&slot),
                    })
                })) {
                    Ok(t) => t,
                    Err(payload) => {
                        // Keep the *first* panicking thread's payload so the
                        // scope can hand it back verbatim, then re-panic so
                        // `std::thread::scope` still sees the failure.
                        let mut guard =
                            slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                        if guard.is_none() {
                            *guard = Some(payload);
                            drop(guard);
                            resume_unwind(Box::new("scoped thread panicked"));
                        }
                        drop(guard);
                        resume_unwind(payload)
                    }
                }
            })
        }
    }

    /// Runs `f` with a scope handle; joins all spawned threads before
    /// returning. Returns `Err` with the first panic payload if any thread
    /// (or `f` itself) panicked, like crossbeam's `scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let first_panic = Arc::new(Mutex::new(None));
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    first_panic: Arc::clone(&first_panic),
                })
            })
        }));
        match result {
            Ok(v) => Ok(v),
            Err(outer) => {
                let recorded = first_panic
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take();
                Err(recorded.unwrap_or(outer))
            }
        }
    }
}

pub mod channel {
    //! MPMC channels over `Mutex` + `Condvar`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when a message arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        writable: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` queued messages; senders block while
    /// full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        // A worker panicking while holding this short critical section is
        // already a scope-level failure; propagate by taking the data.
        match shared.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Queues `msg`, blocking while a bounded channel is full. Fails iff
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if st.items.len() >= cap => {
                        st = match self.shared.writable.wait(st) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            st.items.push_back(msg);
            drop(st);
            self.shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails iff the queue is drained
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.readable.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Like [`recv`](Receiver::recv) with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.shared);
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = match self.shared.readable.wait_timeout(st, deadline - now) {
                    Ok(pair) => pair,
                    Err(p) => p.into_inner(),
                };
                st = guard;
            }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn scope_joins_and_returns_value() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().map(|v| v * 2).unwrap_or(0)
        });
        assert_eq!(r.ok(), Some(42));
    }

    #[test]
    fn scope_reports_worker_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_from_worker() {
        let r = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap_or(0))
                .join()
                .unwrap_or(0)
        });
        assert_eq!(r.ok(), Some(7));
    }

    #[test]
    fn unbounded_fifo_order() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cloned_receivers_partition_messages() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        tx.send(1).expect("alive");
        tx.send(2).expect("alive");
        drop(tx);
        let a = rx1.recv().expect("first message");
        let b = rx2.recv().expect("second message");
        let mut both = [a, b];
        both.sort_unstable();
        assert_eq!(both, [1, 2]);
        assert!(rx1.recv().is_err());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).expect("alive");
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
    }

    #[test]
    fn bounded_channel_blocks_until_capacity_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).expect("capacity 1");
        let r = super::thread::scope(|s| {
            s.spawn(|_| tx.send(1).expect("receiver drains"));
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        });
        assert!(r.is_ok());
    }

    #[test]
    fn scope_err_carries_first_panic_payload() {
        // Crossbeam semantics: the Err payload is the panic value of the
        // first panicking thread, not std's generic replacement message.
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("original payload"));
        });
        let payload = r.expect_err("a thread panicked");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"original payload"));
    }

    #[test]
    fn cross_thread_fan_in() {
        let (tx, rx) = unbounded::<usize>();
        let r = super::thread::scope(|s| {
            for z in 0..8 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(z).expect("receiver alive"));
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            got
        });
        assert_eq!(r.ok(), Some((0..8).collect::<Vec<_>>()));
    }
}
