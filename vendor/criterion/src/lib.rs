//! Offline, zero-dependency shim for the subset of `criterion` the bench
//! crate uses: [`Criterion`], `benchmark_group` / `sample_size` /
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is a plain median-of-samples wall-clock measurement printed to
//! stdout — enough to compare kernels relatively on one machine, with none
//! of upstream's statistical machinery or HTML reports.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark unless overridden.
const DEFAULT_SAMPLES: usize = 10;

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a standalone benchmark named `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Final statistics pass (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median of the sample runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = Some(times[times.len() / 2]);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        median: None,
    };
    f(&mut b);
    match b.median {
        Some(t) => println!("bench {name:<48} median {t:>12.3?} ({samples} samples)"),
        None => println!("bench {name:<48} (no iter() call)"),
    }
}

/// Declares a benchmark group function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // Warm-up + DEFAULT_SAMPLES timed runs.
        assert_eq!(ran, 1 + DEFAULT_SAMPLES as u32);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("inner", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 4);
    }
}
