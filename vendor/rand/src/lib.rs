//! Offline, zero-dependency shim for the subset of the `rand` API this
//! workspace uses.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the handful of `rand` items it calls: the [`Rng`] /
//! [`RngExt`] traits, [`SeedableRng`], the seedable [`rngs::StdRng`]
//! generator, and [`seq::SliceRandom::shuffle`]. Everything is fully
//! deterministic given a seed — there is intentionally **no**
//! `thread_rng`/`from_entropy`-style OS entropy source here, which is also
//! what `cargo xtask check` enforces across the numerical crates: all
//! randomness must flow from a caller-provided seed so paper experiments
//! reproduce bit-for-bit.
//!
//! `StdRng` is xoshiro256** seeded via SplitMix64 — a strong, well-studied
//! non-cryptographic generator. It does not match upstream `rand`'s
//! `StdRng` stream (upstream additionally makes no cross-version stream
//! guarantees), and nothing in the workspace depends on a particular
//! stream, only on determinism.

/// Uniformly samplable primitive types (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`'s uniform stream.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleRange: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                // Debiased via rejection sampling on the top zone.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return lo + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32);

impl SampleRange for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Core random-number-generator trait: a uniform `u64` stream plus the
/// `random::<T>()` convenience the call sites use.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over [`Rng`] (mirrors upstream's `Rng`/`RngExt`
/// split).
pub trait RngExt: Rng {
    /// Uniform draw from a half-open range; panics if the range is empty.
    fn random_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Seedable generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity order (astronomically unlikely)"
        );
    }

    #[test]
    fn unsized_rng_receiver_works() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let r: &mut dyn FnMut() = &mut || {};
        let _ = r; // silence: demonstrate ?Sized generic use compiles
        assert!(draw(&mut rng).is_finite());
    }
}
