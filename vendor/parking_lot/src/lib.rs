//! Offline, zero-dependency shim for the subset of `parking_lot` this
//! workspace uses: a [`Mutex`] (and [`RwLock`]) whose `lock()` returns the
//! guard directly instead of a poison `Result`, matching parking_lot's API.
//!
//! Poisoning is deliberately ignored (parking_lot has no poisoning): if a
//! thread panicked while holding the lock, the next locker simply proceeds
//! with the data as it was. The only workspace user guards index-disjoint
//! slot writes, where that behavior is sound.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning; the guard to the existing data is returned instead.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(vec![0usize; 4]);
        m.lock()[2] = 7;
        assert_eq!(m.into_inner(), vec![0, 0, 7, 0]);
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: next lock just works.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
