//! Offline, zero-dependency shim for the subset of the `bytes` crate the
//! wire protocol uses: cheaply-cloneable immutable [`Bytes`], growable
//! [`BytesMut`], and the little-endian accessors from the [`Buf`] /
//! [`BufMut`] traits.
//!
//! `Bytes` is an `Arc<[u8]>` plus a cursor, so clones share the allocation
//! and `get_*` consume from the front without copying — the same
//! cost model message decoding relies on upstream.

use std::sync::Arc;

enum Repr {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Shared(a) => Repr::Shared(a.clone()),
            Repr::Static(s) => Repr::Static(s),
        }
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// A buffer borrowing `'static` data without allocating.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
        }
    }

    /// Unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        let all: &[u8] = match &self.repr {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        };
        &all[self.start..]
    }

    /// Number of unread bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A new handle covering `range` of the unread bytes; shares the
    /// allocation where possible.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        match &self.repr {
            Repr::Static(_) | Repr::Shared(_) if range.end == self.len() => {
                let mut out = self.clone();
                out.start += range.start;
                out
            }
            _ => Bytes::from(self.as_slice()[range].to_vec()),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(v.into()),
            start: 0,
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read-side accessors (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Drops `n` bytes from the front; panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Copies out the next `dst.len()` bytes; panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Next `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Next `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        assert!(n <= self.len(), "read past end of Bytes");
        dst.copy_from_slice(&self.as_slice()[..n]);
        self.start += n;
    }
}

/// Growable byte buffer for message encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Write-side accessors (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_mixed_scalars() {
        let mut w = BytesMut::with_capacity(20);
        w.put_u64_le(0x0123_4567_89ab_cdef);
        w.put_u32_le(0xdead_beef);
        w.put_f64_le(-1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 20);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clones_share_and_cursor_is_per_handle() {
        let mut w = BytesMut::new();
        w.put_u32_le(1);
        w.put_u32_le(2);
        let mut a = w.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u32_le(), 1);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(a.get_u32_le(), 2);
        assert_eq!(b.get_u32_le(), 2);
    }

    #[test]
    fn static_and_vec_sources() {
        let s = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(s.len(), 3);
        let v = Bytes::from(vec![4, 5]);
        assert_eq!(v.as_slice(), &[4, 5]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from_static(&[0, 1]);
        let _ = b.get_u32_le();
    }
}
