//! # fed-sc — One-Shot Federated Subspace Clustering
//!
//! Umbrella crate for the Fed-SC reproduction (Xie et al., ICDE 2023).
//! Re-exports the public API of every workspace crate so downstream users
//! can depend on a single crate:
//!
//! * [`fedsc`] (re-exported at the root) — the Fed-SC scheme itself.
//! * [`linalg`] — dense linear-algebra substrate.
//! * [`sparse`] — sparse structures and sparse-optimization solvers.
//! * [`graph`] — affinity graphs and Laplacian spectra.
//! * [`clustering`] — k-means, spectral clustering, evaluation metrics.
//! * [`subspace`] — centralized SC baselines and the Section V theory.
//! * [`federated`] — partitioners, channel, k-FED baseline.
//! * [`data`] — synthetic and surrogate workload generators.
//!
//! See the `examples/` directory for runnable entry points and `DESIGN.md`
//! for the system inventory.

#![warn(missing_docs)]

pub use fedsc::*;

pub use fedsc_clustering as clustering;
pub use fedsc_data as data;
pub use fedsc_federated as federated;
pub use fedsc_graph as graph;
pub use fedsc_linalg as linalg;
pub use fedsc_obs as obs;
pub use fedsc_sparse as sparse;
pub use fedsc_subspace as subspace;
