//! Seeded Johnson–Lindenstrauss **sign sketch** (Achlioptas-style ±1
//! projection).
//!
//! Compresses the columns of a `d x n` data matrix to `s << d` dimensions
//! with `S = (1/sqrt(s)) P X`, where `P in {±1}^{s x d}` is generated
//! deterministically from a seed. Sign projections preserve inner products
//! in expectation with variance `O(1/s)`, which is all the candidate
//! pre-selection stage of the subquadratic SSC pipeline needs: the sketch
//! only *ranks* likely neighbors, and every quantity that touches the final
//! coefficients is recomputed on the exact data downstream (see
//! `fedsc_sparse::restricted`).
//!
//! The kernel is blocked over output columns on the shared worker pool
//! ([`crate::par::par_chunks_mut`]): each output-column panel is written by
//! exactly one participant with per-column arithmetic that never depends on
//! the thread count, so the sketch is **bitwise thread-invariant** and
//! seeded-deterministic like the rest of the stack. The sign matrix is
//! materialized once as packed 64-bit words (`d * ceil(s/64)` words), not as
//! floats — for the default `s = 32` the whole of `P` for `d = 1024` is
//! 8 KiB.

use crate::matrix::Matrix;
use crate::par;
use fedsc_obs::LazyCounter;

/// Sketch invocations.
static SKETCH_CALLS: LazyCounter = LazyCounter::new("sketch.calls");
/// Data columns compressed across all sketch invocations.
static SKETCH_COLUMNS: LazyCounter = LazyCounter::new("sketch.columns");

/// Output columns per pool task: big enough to amortize a claim, small
/// enough that n in the low thousands still fans out.
const COL_BLOCK: usize = 64;

/// Deterministic sign words: bit `r` of word `w` for input row `k` is the
/// sign (`1 => +1`, `0 => -1`) of projection row `w*64 + r` against row `k`.
///
/// splitmix64 finalizer over a seed/row/word mix — high-quality independent
/// bits per (seed, k, w) triple, no sequential state, so any word can be
/// generated on any thread.
fn sign_word(seed: u64, k: u64, w: u64) -> u64 {
    let mut z =
        seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ w.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the `s x n` sign sketch `(1/sqrt(s)) P x` of the `d x n` data
/// matrix `x`, with `P in {±1}^{s x d}` derived deterministically from
/// `seed`.
///
/// Column `j` of the result depends only on column `j` of `x` (and the
/// seed), so sketching a column subset equals selecting columns of the full
/// sketch, bit for bit. `threads` fans the output-column panels out over
/// the shared pool; the result is bitwise identical for every value.
pub fn sign_sketch(x: &Matrix, s: usize, seed: u64, threads: usize) -> Matrix {
    let d = x.rows();
    let n = x.cols();
    let mut out = Matrix::zeros(s, n);
    if s == 0 || n == 0 || d == 0 {
        return out;
    }
    SKETCH_CALLS.inc();
    SKETCH_COLUMNS.add(n as u64);
    let words_per_row = s.div_ceil(64);
    let mut signs = Vec::with_capacity(d * words_per_row);
    for k in 0..d {
        for w in 0..words_per_row {
            signs.push(sign_word(seed, k as u64, w as u64));
        }
    }
    let inv = 1.0 / (s as f64).sqrt();
    par::par_chunks_mut(out.as_mut_slice(), s * COL_BLOCK, threads, |blk, chunk| {
        let first_col = blk * COL_BLOCK;
        for (c, acc) in chunk.chunks_mut(s).enumerate() {
            let col = x.col(first_col + c);
            for (k, &v) in col.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let row_words = &signs[k * words_per_row..(k + 1) * words_per_row];
                for (r, a) in acc.iter_mut().enumerate() {
                    let bit = (row_words[r >> 6] >> (r & 63)) & 1;
                    *a += if bit == 1 { v } else { -v };
                }
            }
            for a in acc.iter_mut() {
                *a *= inv;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use proptest::prelude::*;

    fn filled(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = ((i * 31 + j * 7 + 3) % 17) as f64 * 0.25 - 2.0;
            }
        }
        m
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = filled(40, 30);
        let a = sign_sketch(&x, 16, 7, 1);
        let b = sign_sketch(&x, 16, 7, 1);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = sign_sketch(&x, 16, 8, 1);
        assert_ne!(a.as_slice(), c.as_slice(), "seed must matter");
    }

    #[test]
    fn column_subset_matches_full_sketch() {
        // Column j of the sketch depends only on column j of the data, so
        // sketching a column selection must equal selecting sketch columns.
        let x = filled(25, 20);
        let full = sign_sketch(&x, 12, 3, 1);
        let sub = x.select_columns(&[2, 5, 19]);
        let sk_sub = sign_sketch(&sub, 12, 3, 1);
        for (a, &j) in [2usize, 5, 19].iter().enumerate() {
            assert_eq!(sk_sub.col(a), full.col(j), "column {j}");
        }
    }

    #[test]
    fn preserves_inner_products_approximately() {
        // JL sanity: with s comfortably large, sketched inner products of
        // unit vectors track the exact ones. Loose tolerance — we only ever
        // use the sketch to rank candidates.
        let mut x = filled(64, 12);
        x.normalize_columns(1e-12);
        let sk = sign_sketch(&x, 512, 11, 1);
        for i in 0..12 {
            for j in 0..12 {
                let exact = vector::dot(x.col(i), x.col(j));
                let approx = vector::dot(sk.col(i), sk.col(j));
                assert!(
                    (exact - approx).abs() < 0.25,
                    "({i},{j}): exact {exact} vs sketched {approx}"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let x = filled(10, 5);
        assert_eq!(sign_sketch(&x, 0, 1, 1).shape(), (0, 5));
        let empty = Matrix::zeros(0, 0);
        assert_eq!(sign_sketch(&empty, 8, 1, 1).shape(), (8, 0));
    }

    proptest! {
        // Satellite (3c): the sketch kernel is bitwise invariant to the
        // thread count at 1/2/8 threads, for arbitrary shapes and seeds.
        #[test]
        fn thread_invariant_at_1_2_8(
            d in 1usize..48,
            n in 1usize..96,
            s in 1usize..80,
            seed in 0u64..u64::MAX,
        ) {
            let x = filled(d, n);
            let serial = sign_sketch(&x, s, seed, 1);
            for threads in [2usize, 8] {
                let par = sign_sketch(&x, s, seed, threads);
                prop_assert_eq!(par.as_slice(), serial.as_slice());
            }
        }
    }
}
