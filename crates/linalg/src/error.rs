//! Error type shared by the linear-algebra kernels.

use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape (or leading dimension) the operation required.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
    },
    /// Rows of different lengths were supplied to a constructor.
    RaggedRows,
    /// The matrix is singular (or numerically singular) for the requested
    /// factorization or solve.
    Singular,
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside the routine's domain (e.g. `k` larger than the
    /// number of columns for a truncated factorization).
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            LinalgError::RaggedRows => write!(f, "rows have different lengths"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
