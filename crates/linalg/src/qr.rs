//! Householder QR factorization.
//!
//! Used for orthonormal-basis extraction (thin `Q`), least-squares solves,
//! and the orthogonalization step of random-subspace generation.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector;

/// Compact Householder QR of an `m x n` matrix (requires `m >= n` for the
/// thin factors exposed here).
#[must_use = "dropping a QR factorization discards the work"]
pub struct Qr {
    /// Householder vectors stored below the diagonal; `R` on and above it.
    factors: Matrix,
    /// `tau[k]` is the scalar of the k-th Householder reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (consumed) as `a = Q R`.
    pub fn new(a: Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument("QR requires rows >= cols"));
        }
        let mut f = a;
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the reflector annihilating f[k+1.., k].
            let alpha = f[(k, k)];
            let mut norm_x_sq = 0.0;
            for i in k + 1..m {
                norm_x_sq += f[(i, k)] * f[(i, k)];
            }
            if norm_x_sq == 0.0 && alpha >= 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let beta = -(alpha.signum()) * (alpha * alpha + norm_x_sq).sqrt();
            tau[k] = (beta - alpha) / beta;
            let scale = 1.0 / (alpha - beta);
            for i in k + 1..m {
                f[(i, k)] *= scale;
            }
            f[(k, k)] = beta;
            // Apply (I - tau v v^T) to the trailing columns.
            for j in k + 1..n {
                let mut w = f[(k, j)];
                for i in k + 1..m {
                    w += f[(i, k)] * f[(i, j)];
                }
                w *= tau[k];
                f[(k, j)] -= w;
                for i in k + 1..m {
                    let vik = f[(i, k)];
                    f[(i, j)] -= w * vik;
                }
            }
        }
        Ok(Self { factors: f, tau })
    }

    /// The upper-triangular `n x n` factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.factors.cols();
        let mut r = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                r[(i, j)] = self.factors[(i, j)];
            }
        }
        r
    }

    /// The thin `m x n` orthonormal factor `Q`.
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        // Accumulate reflectors from the last to the first.
        for k in (0..n).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut w = q[(k, j)];
                for i in k + 1..m {
                    w += self.factors[(i, k)] * q[(i, j)];
                }
                w *= self.tau[k];
                q[(k, j)] -= w;
                for i in k + 1..m {
                    let vik = self.factors[(i, k)];
                    q[(i, j)] -= w * vik;
                }
            }
        }
        q
    }

    /// Applies `Q^T` to a vector of length `m`, in place.
    pub fn apply_qt(&self, x: &mut [f64]) -> Result<()> {
        let (m, n) = self.factors.shape();
        if x.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, 1),
                got: (x.len(), 1),
            });
        }
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut w = x[k];
            for i in k + 1..m {
                w += self.factors[(i, k)] * x[i];
            }
            w *= self.tau[k];
            x[k] -= w;
            for i in k + 1..m {
                x[i] -= w * self.factors[(i, k)];
            }
        }
        Ok(())
    }

    /// Solves the least-squares problem `min ||a x - b||_2` using the stored
    /// factorization. Returns an error when `R` is numerically singular.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.factors.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, 1),
                got: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y)?;
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.factors[(i, j)] * x[j];
            }
            let d = self.factors[(i, i)];
            if d.abs() < 1e-14 * self.factors.max_abs().max(1.0) {
                return Err(LinalgError::Singular);
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

/// Returns an orthonormal basis for the column span of `a`, dropping
/// numerically dependent columns (rank-revealing via column norms of the
/// Gram-Schmidt residuals).
///
/// This is the workhorse behind "estimate the basis of
/// `span({x_i}_{i in T})`" when the cluster rank is *not* known a priori; the
/// paper's truncated-SVD basis estimate lives in [`crate::svd`].
pub fn orthonormal_basis(a: &Matrix, tol: f64) -> Result<Matrix> {
    let (m, n) = a.shape();
    let mut basis: Vec<Vec<f64>> = Vec::new();
    for j in 0..n {
        let mut v = a.col(j).to_vec();
        // Two rounds of modified Gram-Schmidt for numerical safety.
        for _ in 0..2 {
            for b in &basis {
                let c = vector::dot(b, &v);
                vector::axpy(-c, b, &mut v);
            }
        }
        let norm = vector::norm2(&v);
        if norm > tol {
            vector::scale(&mut v, 1.0 / norm);
            vector::debug_assert_finite(&v, "orthonormal_basis column");
            basis.push(v);
        }
        if basis.len() == m {
            break;
        }
    }
    let refs: Vec<&[f64]> = basis.iter().map(|b| b.as_slice()).collect();
    Matrix::from_columns(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::new(a.clone()).unwrap();
        let q = qr.thin_q();
        let r = qr.r();
        let qr_prod = q.matmul(&r).unwrap();
        assert!(qr_prod.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn thin_q_is_orthonormal() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[-1.0, 0.0, 2.0],
        ])
        .unwrap();
        let q = Qr::new(a).unwrap().thin_q();
        let qtq = q.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(qtq[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let r = Qr::new(a).unwrap().r();
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined fit of y = 2x + 1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = Qr::new(a).unwrap().solve_least_squares(&b).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 1.0, 1e-12);
    }

    #[test]
    fn least_squares_with_residual() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        let b = [1.0, 2.0, 6.0];
        let x = Qr::new(a).unwrap().solve_least_squares(&b).unwrap();
        assert_close(x[0], 3.0, 1e-12); // the mean minimizes the residual
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        assert!(Qr::new(Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn singular_r_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn orthonormal_basis_drops_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 1.0]]).unwrap();
        let b = orthonormal_basis(&a, 1e-10).unwrap();
        assert_eq!(b.cols(), 2);
        // Columns are orthonormal.
        let g = b.gram();
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 1.0).abs() < 1e-12);
        assert!(g[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn orthonormal_basis_of_empty_matrix_is_empty() {
        let b = orthonormal_basis(&Matrix::zeros(3, 0), 1e-10).unwrap();
        assert_eq!(b.cols(), 0);
    }
}
