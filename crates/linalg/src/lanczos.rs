//! Lanczos iteration for the smallest eigenpairs of a symmetric matrix.
//!
//! Spectral clustering only needs the `k` smallest eigenvectors of the
//! (dense, PSD) normalized Laplacian; for the pooled-sample graphs of large
//! federated runs (`N` in the thousands) the full `tred2`/`tql2` path costs
//! `O(N^3)` while Lanczos costs `O(m N^2)` for a Krylov dimension `m` far
//! below `N`.
//!
//! The production entry points ([`lanczos_smallest`] /
//! [`lanczos_smallest_op`]) route to the **thick-restart block Lanczos**
//! solver in [`crate::thick_restart`] — block expansion tuned to multi-vector
//! operator products ([`SymOp::apply_block`]), selective reorthogonalization
//! via the ω-recurrence, and restart that retains converged and
//! nearly-converged Ritz vectors. The original **lock-and-restart deflated**
//! solver is kept as [`deflated_lanczos_smallest_op`]: it is the measured
//! baseline in the perf harness head-to-head, and documents the failure mode
//! (degenerate-cluster misses, restart-bound wall clock) the thick-restart
//! solver exists to fix.
//!
//! The legacy iteration reaches the *smallest* eigenvalues with a recurrence
//! that converges to extremes by running on `B = sigma I - A`, `sigma` a
//! Gershgorin upper bound on `A`'s spectrum.

use crate::eigh::{eigh, SymmetricEig};
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::thick_restart::{self, ThickRestartOptions};
use crate::vector;

/// A symmetric linear operator — everything the Lanczos iteration actually
/// touches. Implemented by dense [`Matrix`] here and by the CSR matrix in
/// `fedsc-sparse`, so the spectral stage can consume sparse Laplacians
/// without densifying.
pub trait SymOp {
    /// Operator dimension `n` (the operator is `n x n`).
    fn dim(&self) -> usize;

    /// `A x` for a length-`dim` vector.
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// `A X` for `ncols` vectors stored **interleaved**: `x[i * ncols + j]`
    /// is row `i` of vector `j`, and the result uses the same layout. This
    /// is the block solver's hot call: implementations amortize one pass
    /// over the operator's data across all `ncols` vectors (the CSR impl
    /// traverses the matrix once and fans row ranges out over the
    /// persistent pool). `threads` is a parallelism hint; implementations
    /// must return bitwise-identical results for every value of it.
    ///
    /// The default de-interleaves and calls [`SymOp::apply`] per vector —
    /// correct for any operator, with no traversal amortization.
    fn apply_block(&self, x: &[f64], ncols: usize, threads: usize) -> Result<Vec<f64>> {
        let _ = threads;
        let n = self.dim();
        if ncols == 0 {
            return Ok(vec![]);
        }
        if x.len() != n * ncols {
            return Err(LinalgError::ShapeMismatch {
                expected: (n * ncols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; n * ncols];
        let mut col = vec![0.0; n];
        for j in 0..ncols {
            for i in 0..n {
                col[i] = x[i * ncols + j];
            }
            let aj = self.apply(&col)?;
            for i in 0..n {
                y[i * ncols + j] = aj[i];
            }
        }
        Ok(y)
    }

    /// `(sigma, scale)`: a Gershgorin upper bound on the spectrum
    /// (`max_i (a_ii + sum_{j != i} |a_ij|)`) and the largest absolute
    /// entry (for residual tolerances).
    fn gershgorin(&self) -> (f64, f64);
}

impl SymOp for Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec(x)
    }

    fn apply_block(&self, x: &[f64], ncols: usize, threads: usize) -> Result<Vec<f64>> {
        let n = self.rows();
        if ncols == 0 {
            return Ok(vec![]);
        }
        if x.len() != n * ncols {
            return Err(LinalgError::ShapeMismatch {
                expected: (n * ncols, 1),
                got: (x.len(), 1),
            });
        }
        // Marshal into a column-major panel and use the blocked matmul
        // kernel: one pass over `self` per register block instead of
        // `ncols` full matvec traversals.
        let mut xm = Matrix::zeros(n, ncols);
        for j in 0..ncols {
            let c = xm.col_mut(j);
            for i in 0..n {
                c[i] = x[i * ncols + j];
            }
        }
        let ym = self.matmul_threaded(&xm, threads.max(1))?;
        let mut y = vec![0.0; n * ncols];
        for j in 0..ncols {
            let c = ym.col(j);
            for i in 0..n {
                y[i * ncols + j] = c[i];
            }
        }
        Ok(y)
    }

    fn gershgorin(&self) -> (f64, f64) {
        let n = self.rows();
        let mut sigma = f64::NEG_INFINITY;
        let mut scale = 0.0f64;
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = self[(i, j)];
                row_sum += if i == j { v } else { v.abs() };
                scale = scale.max(v.abs());
            }
            sigma = sigma.max(row_sum);
        }
        (sigma, scale)
    }
}

/// Computes the `k` smallest eigenpairs of symmetric `a`. Returns
/// eigenvalues ascending.
///
/// Routes to the thick-restart block Lanczos solver
/// ([`crate::thick_restart::thick_restart_smallest`]); `extra` bounds the
/// retained basis dimension (`m = k + extra`, capped by the matrix size);
/// 40–60 is ample for Laplacian spectra.
pub fn lanczos_smallest(a: &Matrix, k: usize, extra: usize) -> Result<SymmetricEig> {
    let (n, nc) = a.shape();
    if n != nc {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            got: (n, nc),
        });
    }
    lanczos_smallest_op(a, k, extra)
}

/// [`lanczos_smallest`] over any [`SymOp`] — the matrix-free entry point
/// the CSR spectral path uses.
pub fn lanczos_smallest_op<A: SymOp + ?Sized>(
    a: &A,
    k: usize,
    extra: usize,
) -> Result<SymmetricEig> {
    let opts = ThickRestartOptions {
        max_basis: k.saturating_add(extra),
        ..ThickRestartOptions::default()
    };
    thick_restart::thick_restart_smallest(a, k, &opts)
}

/// The pre-PR-10 **lock-and-restart deflated** Lanczos solver, kept as the
/// measured baseline for the `spectral_sparse` head-to-head bench rows (and
/// as a second, independent implementation the tests can cross-check).
///
/// Runs Lanczos with full two-pass reorthogonalization every step, locks
/// Ritz pairs whose true residual `||A y - lambda y||` is below tolerance,
/// restarts with a fresh start vector deflated against everything locked,
/// and repeats until `k` pairs are locked. Known limitation (the reason it
/// was replaced): on disconnected Laplacians past the dense cutover the
/// restart budget can run out before every copy of the degenerate zero
/// eigenvalue is dug out, silently locking near-zero bulk Ritz values
/// instead.
pub fn deflated_lanczos_smallest_op<A: SymOp + ?Sized>(
    a: &A,
    k: usize,
    extra: usize,
) -> Result<SymmetricEig> {
    let n = a.dim();
    if k == 0 || n == 0 {
        return Ok(SymmetricEig {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(n, 0),
        });
    }
    let k = k.min(n);

    // Gershgorin bound: sigma >= lambda_max(A).
    let (mut sigma, scale) = a.gershgorin();
    if !sigma.is_finite() {
        return Err(LinalgError::InvalidArgument(
            "matrix entries must be finite",
        ));
    }
    sigma += 1.0;
    let resid_tol = 1e-6 * scale.max(1.0);

    let mut locked_vals: Vec<f64> = Vec::with_capacity(k);
    let mut locked_vecs: Vec<Vec<f64>> = Vec::with_capacity(k);
    let max_restarts = 4 * k + 8;
    let mut restart = 0usize;
    while locked_vals.len() < k && restart < max_restarts {
        let remaining = k - locked_vals.len();
        let room = n - locked_vecs.len();
        if room == 0 {
            break;
        }
        let m = (remaining + extra).min(room).max(1);
        let (thetas, ritz) = lanczos_run(a, sigma, m, &locked_vecs, restart)?;
        // Lock converged Ritz pairs (true residual check), best first. Each
        // restart must make progress, so if nothing converged we lock the
        // single most-converged pair anyway — this matches what a plain
        // Lanczos caller would have received.
        let mut any = false;
        let mut best: Option<(f64, f64, Vec<f64>)> = None; // (resid, val, vec)
                                                           // Only the top `remaining` Ritz pairs of B are candidates for the
                                                           // still-missing smallest eigenvalues of A. Lock the *converged
                                                           // prefix* only: locking a converged pair past an unconverged smaller
                                                           // one would let bulk eigenvalues steal slots from slow-converging
                                                           // copies of the degenerate cluster.
        for (theta, y) in thetas.into_iter().zip(ritz).take(remaining) {
            if locked_vals.len() >= k {
                break;
            }
            let lambda = sigma - theta;
            let ay = a.apply(&y)?;
            crate::thick_restart::MATVECS.inc();
            let resid = ay
                .iter()
                .zip(&y)
                .map(|(&av, &yv)| (av - lambda * yv).abs())
                .fold(0.0f64, f64::max);
            if resid <= resid_tol {
                lock(&mut locked_vals, &mut locked_vecs, lambda, y);
                any = true;
            } else {
                best = Some((resid, lambda, y));
                break;
            }
        }
        if !any {
            // Stagnation guard: no converged prefix — lock the best
            // available estimate of the smallest remaining eigenpair so
            // every restart makes progress.
            if let Some((_, lambda, y)) = best {
                lock(&mut locked_vals, &mut locked_vecs, lambda, y);
            } else {
                break;
            }
        }
        restart += 1;
    }

    // Sort ascending and truncate to k.
    let mut order: Vec<usize> = (0..locked_vals.len()).collect();
    order.sort_by(|&i, &j| locked_vals[i].total_cmp(&locked_vals[j]));
    order.truncate(k);
    let eigenvalues: Vec<f64> = order.iter().map(|&i| locked_vals[i]).collect();
    let cols: Vec<&[f64]> = order.iter().map(|&i| locked_vecs[i].as_slice()).collect();
    let eigenvectors = Matrix::from_columns(&cols)?;
    Ok(SymmetricEig {
        eigenvalues,
        eigenvectors,
    })
}

/// Re-orthogonalizes a candidate eigenvector against the locked set and
/// appends it (guards against duplicates slipping through numerically).
fn lock(vals: &mut Vec<f64>, vecs: &mut Vec<Vec<f64>>, lambda: f64, mut y: Vec<f64>) {
    for v in vecs.iter() {
        let c = vector::dot(v, &y);
        vector::axpy(-c, v, &mut y);
    }
    if vector::normalize(&mut y, 1e-8) > 1e-8 {
        vals.push(lambda);
        vecs.push(y);
    }
}

/// One Lanczos run on `B = sigma I - A`, deflated against `locked`.
/// Returns the Ritz values of `B` (descending, i.e. best candidates for
/// `A`'s smallest first) and their Ritz vectors.
fn lanczos_run<A: SymOp + ?Sized>(
    a: &A,
    sigma: f64,
    m: usize,
    locked: &[Vec<f64>],
    restart: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = a.dim();
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alpha: Vec<f64> = Vec::with_capacity(m);
    let mut beta: Vec<f64> = Vec::with_capacity(m);

    let mut v0 = start_vector(n, restart);
    deflate(&mut v0, locked, &q);
    if vector::normalize(&mut v0, 1e-12) <= 1e-12 {
        return Ok((vec![], vec![]));
    }
    q.push(v0);

    for j in 0..m {
        let qj = &q[j];
        let aq = a.apply(qj)?;
        crate::thick_restart::MATVECS.inc();
        let mut w: Vec<f64> = qj.iter().zip(&aq).map(|(&x, &ax)| sigma * x - ax).collect();
        let aj = vector::dot(&w, qj);
        alpha.push(aj);
        // Full reorthogonalization against the Krylov basis and the locked
        // vectors (twice for numerical safety).
        for _ in 0..2 {
            deflate(&mut w, locked, &q);
        }
        if j + 1 == m {
            break;
        }
        let bnorm = vector::norm2(&w);
        if bnorm <= 1e-12 {
            // Krylov space exhausted (exact invariant subspace): restart
            // inside the run with a fresh deflated direction, recorded as a
            // zero coupling in T.
            let mut fresh = start_vector(n, restart + j + 1);
            deflate(&mut fresh, locked, &q);
            if vector::normalize(&mut fresh, 1e-10) <= 1e-10 {
                break;
            }
            beta.push(0.0);
            q.push(fresh);
            continue;
        }
        vector::scale(&mut w, 1.0 / bnorm);
        beta.push(bnorm);
        q.push(w);
    }

    let mm = alpha.len();
    if mm == 0 {
        return Ok((vec![], vec![]));
    }
    let mut t = Matrix::zeros(mm, mm);
    for i in 0..mm {
        t[(i, i)] = alpha[i];
        if i + 1 < mm {
            t[(i, i + 1)] = beta[i];
            t[(i + 1, i)] = beta[i];
        }
    }
    let teig = eigh(&t)?;
    // Top of B's spectrum = bottom of A's; report all Ritz pairs, best
    // (largest theta) first — the caller decides what to lock.
    let mut thetas = Vec::with_capacity(mm);
    let mut ritz = Vec::with_capacity(mm);
    for idx in (0..mm).rev() {
        let s = teig.eigenvectors.col(idx);
        let mut y = vec![0.0; n];
        for (row, &si) in q.iter().zip(s) {
            vector::axpy(si, row, &mut y);
        }
        if vector::normalize(&mut y, 1e-12) <= 1e-12 {
            continue;
        }
        thetas.push(teig.eigenvalues[idx]);
        ritz.push(y);
    }
    Ok((thetas, ritz))
}

/// Deterministic pseudo-random start vector varying by `salt` (keeps the
/// whole solver RNG-free and runs reproducible). Shared with the
/// thick-restart solver so both draw from the same stream shape.
pub(crate) fn start_vector(n: usize, salt: usize) -> Vec<f64> {
    let mut state = (salt as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(0x2545f491);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

/// Orthogonalizes `w` against the locked vectors and the Krylov basis.
fn deflate(w: &mut [f64], locked: &[Vec<f64>], q: &[Vec<f64>]) {
    for v in locked.iter().chain(q.iter()) {
        let c = vector::dot(v, w);
        if c != 0.0 {
            vector::axpy(-c, v, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_dense_eig_on_random_matrix() {
        let a = random_symmetric(60, 42);
        let dense = eigh(&a).unwrap();
        let lz = lanczos_smallest(&a, 5, 45).unwrap();
        for i in 0..5 {
            assert!(
                (dense.eigenvalues[i] - lz.eigenvalues[i]).abs() < 1e-7,
                "eigenvalue {i}: {} vs {}",
                dense.eigenvalues[i],
                lz.eigenvalues[i]
            );
        }
        for i in 0..5 {
            let v = lz.eigenvectors.col(i);
            let av = a.matvec(v).unwrap();
            let r: f64 = av
                .iter()
                .zip(v)
                .map(|(&x, &y)| (x - lz.eigenvalues[i] * y).abs())
                .fold(0.0, f64::max);
            assert!(r < 1e-6, "residual {r}");
        }
    }

    #[test]
    fn finds_all_copies_of_degenerate_zero() {
        // Block-diagonal Laplacian of FIVE components: eigenvalue 0 with
        // multiplicity 5 — the case plain Lanczos cannot handle.
        let blocks = 5;
        let bs = 4;
        let n = blocks * bs;
        let mut a = Matrix::zeros(n, n);
        for b in 0..blocks {
            let off = b * bs;
            for i in 0..bs {
                for j in 0..bs {
                    a[(off + i, off + j)] = if i == j { (bs - 1) as f64 } else { -1.0 };
                }
            }
        }
        let lz = lanczos_smallest(&a, blocks + 1, 10).unwrap();
        for i in 0..blocks {
            assert!(
                lz.eigenvalues[i].abs() < 1e-8,
                "eigenvalue {i} = {}",
                lz.eigenvalues[i]
            );
        }
        assert!((lz.eigenvalues[blocks] - bs as f64).abs() < 1e-7);
    }

    #[test]
    fn near_degenerate_cluster_is_fully_resolved() {
        // Diagonal with a tight cluster near zero plus a bulk: all cluster
        // members must be found.
        let n = 300;
        let mut a = Matrix::zeros(n, n);
        for i in 0..20 {
            a[(i, i)] = 1e-4 * (i as f64 + 1.0);
        }
        for i in 20..n {
            a[(i, i)] = 1.0 + 0.01 * i as f64;
        }
        let lz = lanczos_smallest(&a, 20, 40).unwrap();
        for i in 0..20 {
            let expect = 1e-4 * (i as f64 + 1.0);
            // Stagnation-guard locks may carry a few 1e-5 of error; what
            // matters is that every copy is resolved within half the 1e-4
            // cluster spacing.
            assert!(
                (lz.eigenvalues[i] - expect).abs() < 5e-5,
                "eigenvalue {i}: {} vs {expect}",
                lz.eigenvalues[i]
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(40, 7);
        let lz = lanczos_smallest(&a, 4, 36).unwrap();
        let g = lz.eigenvectors.gram();
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-7, "G[{i},{j}] = {}", g[(i, j)]);
            }
        }
    }

    #[test]
    fn k_zero_and_empty() {
        let a = Matrix::identity(3);
        assert!(lanczos_smallest(&a, 0, 10).unwrap().eigenvalues.is_empty());
        let e = lanczos_smallest(&Matrix::zeros(0, 0), 2, 10).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn k_equal_n_degenerates_gracefully() {
        let a = random_symmetric(10, 3);
        let lz = lanczos_smallest(&a, 10, 0).unwrap();
        let dense = eigh(&a).unwrap();
        for i in 0..10 {
            assert!((dense.eigenvalues[i] - lz.eigenvalues[i]).abs() < 1e-6);
        }
    }
}
