//! Shared parallelism for the numerical kernels: a **persistent worker
//! pool**.
//!
//! Every parallel loop in the workspace — the blocked matrix kernels here in
//! `linalg`, the per-column Lasso fan-out in `sparse`/`subspace`, the
//! per-partition SVDs in `core`, and the per-device fan-out in `federated` —
//! funnels through this module, so there is exactly one place that spawns
//! threads and one ownership rule to reason about (see DESIGN.md §9:
//! the device fan-out owns `threads`, kernels own `kernel_threads`, and
//! neither nests inside the other's workers beyond that product).
//!
//! ## Pool design
//!
//! Earlier revisions spawned fresh scoped threads on every call, which made
//! many-small-call workloads (the per-point Lasso sweep issues hundreds of
//! `par_map`s) pay thread-creation latency each time and produced *negative*
//! parallel speedups end to end. The pool here is lazily initialized and
//! **persistent**:
//!
//! * Workers are spawned on first demand, parked on a condvar when idle, and
//!   never exit; `pool.workers_spawned` is therefore a high-water mark
//!   bounded by the largest `threads` any call requested (minus the caller,
//!   who always participates), not a per-call churn count.
//! * A worker that runs out of claimable tickets **spins briefly before
//!   parking** ([`SPIN_POLLS`] polls of a publish epoch): workloads that
//!   issue bursts of back-to-back parallel calls (the per-point Lasso sweep,
//!   the blocked kernels) would otherwise pay a futex wake on every call,
//!   which BENCH_PR6 measured at milliseconds of added latency per small
//!   job. An idle pool still parks — the spin is bounded and the park path
//!   re-scans the queue under the lock, so no wakeup can be lost.
//! * Requested thread counts are capped at [`default_threads`] (available
//!   parallelism): a helper beyond the core count can only time-slice
//!   against the caller, so on a saturated (or single-core) machine the
//!   call degrades to a smaller fan-out — or straight to the inline path —
//!   instead of paying wake latency for negative-value helpers. Results are
//!   unaffected (per-index arithmetic is thread-count independent).
//! * Fan-outs smaller than [`MIN_INLINE_ITEMS`] run inline on the caller
//!   ([`par_map`] / [`par_map_with`] only): publishing a job costs more
//!   than computing a handful of cheap items. Coarse fan-outs whose items
//!   are individually expensive — the per-device rounds, the per-partition
//!   SVDs — use [`par_map_heavy`], which always engages the pool.
//! * A call with `threads = t` publishes one **job** — a type-erased
//!   reference to its loop body — with `t - 1` helper tickets on a shared
//!   queue, runs the body on the calling thread, then cancels any tickets no
//!   worker claimed and waits for claimed ones to drain. The caller always
//!   makes progress by itself, so a busy pool degrades to sequential
//!   execution instead of deadlocking (this also makes nested calls —
//!   device fan-out over kernel fan-out — safe: the inner caller never
//!   blocks on a worker that might be waiting on it).
//! * The job body borrows the caller's stack. That borrow is sound because
//!   the caller does not return until every claimed ticket has finished
//!   running (`running == 0`), and cancellation removes unclaimed tickets
//!   under the same lock workers claim through.
//!
//! Three primitives:
//!
//! * [`par_map`] / [`par_map_timed`] — map `f` over `0..count` with an
//!   atomic work-stealing queue. Results come back **in index order**, and
//!   each index is computed by exactly one participant with thread-count-
//!   independent arithmetic, so seeded callers stay bit-reproducible.
//! * [`par_map_with`] — [`par_map`] with per-participant scratch state
//!   (`make_state` runs once per participating thread): the warm-start hook
//!   batch Lasso drivers use to reuse solver workspaces across a device's
//!   `N` per-point problems instead of reallocating in every solve.
//! * [`par_chunks_mut`] — split a flat buffer into contiguous chunks (the
//!   column panels of a column-major matrix) and process each chunk on
//!   exactly one participant; in-place, allocation-free result collection.
//!
//! Worker panics are caught, the **first** payload is preserved, and it is
//! re-raised on the calling thread after every participant has finished —
//! the same contract `crossbeam::thread::scope` gives, without the
//! dependency (this crate sits below `fedsc-federated` in the graph, which
//! is what lets `sparse`/`subspace`/`core` use the pool without a
//! dependency cycle).
//!
//! Timing goes through `fedsc_obs` ([`Stopwatch`]) — the workspace's only
//! sanctioned wall-clock access (`cargo xtask check` rule 3) — and the pool
//! reports itself to the metrics registry: `pool.tasks` (indices executed),
//! `pool.tasks_inline` (indices executed on the caller because
//! `threads == 1` or the fan-out was below [`MIN_INLINE_ITEMS`], i.e. no
//! job was ever published), `pool.steals` (tasks a
//! participant executed beyond its fair share of the queue), `pool.busy_ns`
//! (per-participant loop wall time, summed), and `pool.workers_spawned`
//! (persistent workers ever created — bounded by the configured thread
//! count, not by call volume).

use fedsc_obs::{LazyCounter, Stopwatch};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Indices executed by [`par_map`] / chunks written by [`par_chunks_mut`].
static POOL_TASKS: LazyCounter = LazyCounter::new("pool.tasks");
/// Indices executed inline on the caller because `threads == 1` or the
/// fan-out was below [`MIN_INLINE_ITEMS`] (no job was published at all).
static POOL_TASKS_INLINE: LazyCounter = LazyCounter::new("pool.tasks_inline");
/// Tasks executed beyond a participant's fair share `ceil(count / threads)`
/// — the number of successful steals from slower participants' shares.
static POOL_STEALS: LazyCounter = LazyCounter::new("pool.steals");
/// Summed per-participant busy wall time (claim loop + task execution), ns.
static POOL_BUSY_NS: LazyCounter = LazyCounter::new("pool.busy_ns");
/// Persistent worker threads ever spawned (high-water mark, not churn).
static POOL_WORKERS: LazyCounter = LazyCounter::new("pool.workers_spawned");

/// Default worker count: available parallelism, floor 1.
pub fn default_threads() -> usize {
    // Cached: `available_parallelism` costs a syscall plus cgroup-quota
    // file reads on Linux (~17 us), and the inline-dispatch path calls
    // this per fan-out — uncached it multiplied `pool_overhead`'s
    // per-call cost ~400x. The pool is process-global and never resizes,
    // so a process-lifetime snapshot is the consistent choice anyway.
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Fan-outs smaller than this run inline on the caller in [`par_map`] /
/// [`par_map_with`]: publishing a job and waking a helper costs tens of
/// microseconds even when the pool is warm, which dwarfs a handful of
/// cheap per-item bodies (BENCH_PR6's `pool_overhead` measured 5.1 ms per
/// 32-item job at 2 threads against 15 µs inline). Coarse fan-outs with
/// individually-expensive items bypass the threshold via
/// [`par_map_heavy`].
pub const MIN_INLINE_ITEMS: usize = 128;

/// How many times an out-of-work worker polls the publish epoch before
/// parking on the condvar. Each poll is a load plus a `spin_loop` hint, so
/// the spin window is a few microseconds — enough to bridge the gap
/// between back-to-back parallel calls, short enough that an idle pool
/// parks almost immediately.
const SPIN_POLLS: usize = 4096;

/// Upper bound of the adaptive spin window. A worker that keeps finding
/// work inside its spin window doubles the window (up to this cap) and a
/// worker woken from a park re-arms straight to the cap — BENCH_PR7's
/// `pool_wake` scenario showed the first post-idle job paying the full
/// park/unpark round trip (17 µs → 2.5 ms); staying hot through a burst
/// amortizes that wake across the whole burst. A worker that spins out
/// resets to [`SPIN_POLLS`], so an idle pool still parks quickly.
const MAX_SPIN_POLLS: usize = 8 * SPIN_POLLS;

/// Indices claimed per `fetch_add` in the fan-out loops. Claiming blocks
/// instead of single indices cuts contention on the shared claim counter by
/// 8x and makes each participant's result-slot writes mostly contiguous, so
/// participants stop invalidating each other's cache lines through the
/// `Slots` vector (the false-sharing component of BENCH_PR7's `lasso_batch`
/// 2-thread regression). Small enough that a 128-item fan-out (the
/// [`MIN_INLINE_ITEMS`] floor) still splits into 16 stealable blocks.
const CLAIM_BLOCK: usize = 8;

/// A cache-line-isolated atomic claim counter. 128-byte alignment keeps the
/// hot `fetch_add` line out of the adjacent-line prefetcher's reach of any
/// neighboring shared state (the slots vector, the job latch).
#[repr(align(128))]
struct PaddedCounter(AtomicUsize);

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Type-erased pointer to a job body borrowed from the submitting stack.
///
/// Sent to persistent workers even though the pointee is not `'static`.
// SAFETY: `Job::wait` blocks the submitting call until `tickets == 0` and
// `running == 0`, so no worker dereferences the pointer after the borrow
// ends; claims and cancellation are serialized through `Job::state`.
#[allow(unsafe_code)]
struct BodyPtr(*const (dyn Fn() + Sync));
#[allow(unsafe_code)]
// SAFETY: see `BodyPtr` — lifetime is enforced by the job completion latch.
unsafe impl Send for BodyPtr {}
#[allow(unsafe_code)]
// SAFETY: the pointee is `Sync`, so shared `&` access from workers is sound.
unsafe impl Sync for BodyPtr {}

/// Mutable job bookkeeping, guarded by `Job::state`.
struct JobState {
    /// Helper invitations not yet claimed by a worker.
    tickets: usize,
    /// Workers currently executing the body.
    running: usize,
    /// First panic payload raised by any participant.
    panic: Option<PanicPayload>,
}

/// One published parallel call: a body plus its completion latch.
struct Job {
    body: BodyPtr,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    fn new(body: *const (dyn Fn() + Sync), tickets: usize) -> Self {
        Job {
            body: BodyPtr(body),
            state: Mutex::new(JobState {
                tickets,
                running: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs the body once on the current thread, recording the first panic.
    #[allow(unsafe_code)]
    fn run(&self) {
        // SAFETY: a ticket for this job was claimed (or the caller is
        // running its own body), so the submitting stack frame is still
        // alive — it cannot return until this thread reports completion.
        let body = unsafe { &*self.body.0 };
        let result = catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = result {
            let mut st = self.lock();
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
    }

    /// Cancels unclaimed tickets, waits for claimed ones to finish, and
    /// returns the first recorded panic payload.
    fn wait(&self) -> Option<PanicPayload> {
        let mut st = self.lock();
        st.tickets = 0;
        while st.running > 0 {
            st = self
                .done
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.panic.take()
    }
}

/// The process-global pool: a job queue, a worker wakeup, and spawn
/// bookkeeping.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    /// Persistent workers spawned so far (high-water mark).
    spawned: Mutex<usize>,
    /// Workers currently parked on `work_ready` (advisory, for spawn
    /// decisions only).
    idle: AtomicUsize,
    /// Bumped on every job publish; out-of-work workers poll it lock-free
    /// while spinning, so a burst of small jobs never pays a futex wake.
    epoch: AtomicUsize,
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        spawned: Mutex::new(0),
        idle: AtomicUsize::new(0),
        epoch: AtomicUsize::new(0),
    })
}

/// The persistent worker loop: claim a ticket, run the body, report, and
/// when out of work spin briefly on the publish epoch before parking.
fn worker_loop() {
    let shared = pool();
    // Adaptive spin window: doubles (up to [`MAX_SPIN_POLLS`]) every time a
    // publish lands inside it, re-arms to the cap after a park/unpark round
    // trip (the burst has clearly started — stay hot for the rest of it),
    // and resets to [`SPIN_POLLS`] when a full window expires unused.
    let mut spin_window = SPIN_POLLS;
    loop {
        let job: Arc<Job> = {
            let mut q = shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // Set once a full epoch-poll window expired without a publish;
            // the next failed claim pass parks instead of spinning again.
            let mut spun_out = false;
            'claim: loop {
                // Claim a ticket from the oldest job that still has one;
                // drained jobs are pruned as we pass them.
                let mut claimed = None;
                while let Some(front) = q.front() {
                    let mut st = front.lock();
                    if st.tickets > 0 {
                        st.tickets -= 1;
                        st.running += 1;
                        drop(st);
                        claimed = Some(Arc::clone(front));
                        break;
                    }
                    drop(st);
                    q.pop_front();
                }
                if let Some(job) = claimed {
                    break 'claim job;
                }
                if spun_out {
                    // Lost-wakeup safety: this wait happens while holding
                    // the queue lock after an empty claim pass, and the
                    // publisher pushes under the same lock before
                    // notifying — a publish between our scan and the wait
                    // is observed by the post-wake re-scan.
                    // ORDERING: Relaxed — `idle` is an advisory gauge for
                    // spawn decisions; the queue mutex orders all job data.
                    shared.idle.fetch_add(1, Ordering::Relaxed);
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    // ORDERING: Relaxed — see the matching `fetch_add`.
                    shared.idle.fetch_sub(1, Ordering::Relaxed);
                    spun_out = false;
                    // Re-arm after wake: the park/unpark latency was just
                    // paid once; a wide window keeps this worker hot for
                    // the burst that woke it.
                    spin_window = MAX_SPIN_POLLS;
                    continue 'claim;
                }
                // Nothing claimable: release the lock and watch the
                // publish epoch for a bounded window, so the next job in a
                // burst is claimed without a park/unpark round trip.
                // ORDERING: Acquire — pairs with the Release bump in
                // `run_on_pool`, so observing a new epoch also lets the
                // re-locked claim pass observe the pushed job.
                let seen = shared.epoch.load(Ordering::Acquire);
                drop(q);
                let mut polls = 0;
                while polls < spin_window {
                    // ORDERING: Acquire — see `seen` above.
                    if shared.epoch.load(Ordering::Acquire) != seen {
                        break;
                    }
                    std::hint::spin_loop();
                    polls += 1;
                }
                spun_out = polls >= spin_window;
                spin_window = if spun_out {
                    SPIN_POLLS
                } else {
                    (spin_window * 2).min(MAX_SPIN_POLLS)
                };
                q = shared
                    .queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        job.run();
        let mut st = job.lock();
        st.running -= 1;
        if st.running == 0 && st.tickets == 0 {
            job.done.notify_all();
        }
    }
}

/// Ensures at least `min` persistent workers exist (never shrinks; spawn
/// failures degrade gracefully to fewer helpers).
fn ensure_workers(min: usize) {
    let shared = pool();
    let mut spawned = shared
        .spawned
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    while *spawned < min {
        let builder = std::thread::Builder::new().name(format!("fedsc-par-{}", *spawned));
        if builder.spawn(worker_loop).is_err() {
            break;
        }
        *spawned += 1;
        POOL_WORKERS.inc();
    }
}

/// Publishes `body` with `helpers` pool tickets, runs it on the calling
/// thread too, waits for every claimed ticket, and re-raises the first
/// panic (original payload) on the caller.
#[allow(unsafe_code)]
fn run_on_pool(helpers: usize, body: &(dyn Fn() + Sync)) {
    // SAFETY: the lifetime is erased only for transport to pool workers;
    // `Job::wait` pins this stack frame until every claimed ticket has
    // finished running, so no worker touches `body` after it returns.
    let erased: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let job = Arc::new(Job::new(erased as *const (dyn Fn() + Sync), helpers));
    {
        let shared = pool();
        ensure_workers(helpers.min(default_threads().saturating_sub(1)).max(1));
        let mut q = shared
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        q.push_back(Arc::clone(&job));
        drop(q);
        // ORDERING: Release — pairs with the Acquire epoch polls in
        // `worker_loop`: a spinning worker that observes the bump is
        // guaranteed to observe the push above once it re-locks the queue.
        shared.epoch.fetch_add(1, Ordering::Release);
        shared.work_ready.notify_all();
    }
    // The caller is always a participant: if every worker is busy (or none
    // could be spawned), the call still completes sequentially.
    job.run();
    let payload = job.wait();
    // Prune this job from the queue in case no worker walked past it.
    {
        let mut q = pool()
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Write-once result slots indexed by the work queue.
///
/// The atomic queue in [`par_map`] hands each index in `0..count` to exactly
/// one participant, so every `UnsafeCell` is written by at most one thread,
/// and none is read until the job latch has drained every participant.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: disjoint-by-construction writes (one claimed index per slot) and
// no reads before the owning call joins every participant.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(count: usize) -> Self {
        Self((0..count).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Stores `value` at `i`. Caller must hold the unique claim on `i`.
    #[allow(unsafe_code)]
    fn put(&self, i: usize, value: T) {
        // SAFETY: `i` was claimed exactly once from the atomic queue, so no
        // other thread writes this cell, and readers wait for the join.
        unsafe { *self.0[i].get() = Some(value) };
    }
}

/// Maps `f` over `0..count` on `threads` participants (the caller plus
/// `threads - 1` pool workers; atomic work stealing), returning results in
/// index order.
///
/// Each index is computed exactly once with the same arithmetic regardless
/// of `threads`, so results are bit-identical across thread counts; callers
/// needing reproducible randomness derive per-index RNGs from a base seed.
pub fn par_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(count, threads, || (), move |(), i| f(i))
}

/// [`par_map`] with per-participant scratch state.
///
/// `make_state` runs once on every participating thread (including the
/// caller) before it claims its first index; `f` receives that thread's
/// state mutably alongside each index. This is the warm-start hook for
/// batch solvers: the state carries reusable scratch buffers, and because
/// each index's computation must not depend on *which* indices the state
/// already served, results remain bit-identical across thread counts —
/// callers are responsible for fully re-initializing per-solve values
/// (cheap) while reusing allocations (the expensive part).
pub fn par_map_with<S, T, I, F>(count: usize, threads: usize, make_state: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    par_map_with_inner(count, threads, MIN_INLINE_ITEMS, make_state, f)
}

/// [`par_map`] for coarse fan-outs whose items are individually expensive —
/// the per-device federated rounds and the per-partition local SVDs.
///
/// Ignores the [`MIN_INLINE_ITEMS`] inline threshold and always engages the
/// pool when `threads > 1`: a round of four device fits is exactly the shape
/// the threshold would wrongly serialize.
pub fn par_map_heavy<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with_inner(count, threads, 0, || (), move |(), i| f(i))
}

/// Shared body of [`par_map_with`] / [`par_map_heavy`]: fan-outs smaller
/// than `inline_below` run inline on the caller without publishing a job.
fn par_map_with_inner<S, T, I, F>(
    count: usize,
    threads: usize,
    inline_below: usize,
    make_state: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    // Cap at the machine's parallelism: helpers beyond the core count can
    // only time-slice against the caller (on the 1-core bench container the
    // uncapped 2-thread `pool_wake` path cost 147x the inline path), so the
    // surplus request degrades to the inline/smaller fan-out instead.
    let threads = threads.max(1).min(count.max(1)).min(default_threads());
    if count == 0 {
        return Vec::new();
    }
    if threads == 1 || count < inline_below {
        POOL_TASKS.add(count as u64);
        POOL_TASKS_INLINE.add(count as u64);
        let mut state = make_state();
        return (0..count).map(|i| f(&mut state, i)).collect();
    }
    let next = PaddedCounter(AtomicUsize::new(0));
    let slots = Slots::new(count);
    // Fair share per participant; anything executed past it was stolen from
    // a slower participant's share of the queue.
    let fair = (count as u64).div_ceil(threads as u64);
    run_on_pool(threads - 1, &|| {
        let sw = Stopwatch::start();
        let mut executed = 0u64;
        let mut state = make_state();
        loop {
            // ORDERING: Relaxed — the counter only hands out unique
            // index blocks; the slot writes it guards are published to the
            // caller by the job completion latch, not by this claim.
            let start = next.0.fetch_add(CLAIM_BLOCK, Ordering::Relaxed);
            if start >= count {
                break;
            }
            for i in start..(start + CLAIM_BLOCK).min(count) {
                slots.put(i, f(&mut state, i));
                executed += 1;
            }
        }
        POOL_TASKS.add(executed);
        POOL_STEALS.add(executed.saturating_sub(fair));
        POOL_BUSY_NS.add(sw.elapsed_ns());
    });
    // INVARIANT: run_on_pool returned without re-raising a panic, so every
    // index in 0..count was claimed exactly once and its slot written.
    slots
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every index processed"))
        .collect()
}

/// [`par_map_heavy`] that also reports each item's wall time (via the
/// `fedsc_obs` stopwatch, so this crate never touches the clock directly).
///
/// Built on the heavy variant because its only callers are the per-device
/// federated fan-outs, whose handful of items are each worth milliseconds —
/// the [`MIN_INLINE_ITEMS`] threshold must not serialize them.
pub fn par_map_timed<T, F>(count: usize, threads: usize, f: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_heavy(count, threads, |i| {
        let sw = Stopwatch::start();
        let r = f(i);
        (r, sw.elapsed())
    })
}

/// Base pointer of an in-place chunk fan-out, shared across participants.
// SAFETY: participants derive disjoint subslices from it — every chunk
// index is claimed exactly once from an atomic queue, and chunk ranges
// never overlap; the caller's `&mut` borrow outlives the job (see
// `run_on_pool`).
#[allow(unsafe_code)]
struct ChunkBase(*mut f64);
#[allow(unsafe_code)]
// SAFETY: see `ChunkBase` — disjointness plus the job completion latch.
unsafe impl Send for ChunkBase {}
#[allow(unsafe_code)]
// SAFETY: see `ChunkBase`.
unsafe impl Sync for ChunkBase {}

impl ChunkBase {
    /// The shared base pointer (method access keeps closures capturing the
    /// `Sync` wrapper rather than the raw pointer field).
    fn ptr(&self) -> *mut f64 {
        self.0
    }
}

/// Splits `data` into contiguous `chunk_len`-sized chunks (`chunks_mut`
/// semantics: the last chunk may be shorter) and calls `f(chunk_index,
/// chunk)` for each, claiming chunks from an atomic queue across `threads`
/// participants (the caller plus `threads - 1` pool workers).
///
/// This is the in-place fan-out for the blocked matrix kernels: a chunk is a
/// column panel of a column-major output, every panel is written by exactly
/// one participant, and the per-panel arithmetic never depends on the thread
/// count — so threaded kernels produce bit-identical buffers to `threads =
/// 1`.
#[allow(unsafe_code)]
pub fn par_chunks_mut<F>(data: &mut [f64], chunk_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() || chunk_len == 0 {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    // Same parallelism cap as `par_map_with_inner`: surplus helpers on a
    // saturated machine only add wake/contention latency.
    let threads = threads.max(1).min(n_chunks).min(default_threads());
    if threads == 1 {
        POOL_TASKS.add(n_chunks as u64);
        POOL_TASKS_INLINE.add(n_chunks as u64);
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }
    let len = data.len();
    let base = ChunkBase(data.as_mut_ptr());
    let next = PaddedCounter(AtomicUsize::new(0));
    let fair = (n_chunks as u64).div_ceil(threads as u64);
    run_on_pool(threads - 1, &|| {
        let sw = Stopwatch::start();
        let mut written = 0u64;
        loop {
            // ORDERING: Relaxed — unique chunk claims only; the chunk
            // writes are published to the caller by the job completion
            // latch, not by this counter.
            let c = next.0.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `c` was claimed exactly once, chunk ranges are
            // disjoint by construction, and the caller's `&mut data` borrow
            // is pinned until the job latch drains (see `ChunkBase`).
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(c, chunk);
            written += 1;
        }
        POOL_TASKS.add(written);
        POOL_STEALS.add(written.saturating_sub(fair));
        POOL_BUSY_NS.add(sw.elapsed_ns());
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_results_in_index_order() {
        for threads in [1, 2, 8] {
            let r = par_map(33, threads, |i| i * 7 + 1);
            assert_eq!(r, (0..33).map(|i| i * 7 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_oversubscribed() {
        assert!(par_map(0, 8, |i| i).is_empty());
        assert_eq!(par_map(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn par_map_panic_preserves_payload() {
        // `par_map_heavy` so the 16-item job actually goes through the
        // pool's catch/re-raise path instead of the inline fast path.
        let caught = std::panic::catch_unwind(|| {
            par_map_heavy(16, 4, |i| {
                if i == 9 {
                    panic!("slot 9 exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "slot 9 exploded");

        // The inline path must propagate panics too.
        let caught = std::panic::catch_unwind(|| {
            par_map(16, 4, |i| {
                if i == 9 {
                    panic!("inline slot 9 exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "inline slot 9 exploded");
    }

    #[test]
    fn par_map_with_reuses_state_per_participant() {
        // Each participant's state counts how many indices it served; the
        // counts must sum to the item count, and every result must be
        // correct regardless of which participant computed it.
        for threads in [1, 2, 4] {
            let served = AtomicUsize::new(0);
            let r = par_map_with(
                29,
                threads,
                || 0usize,
                |state, i| {
                    *state += 1;
                    served.fetch_add(1, Ordering::Relaxed);
                    i * 3
                },
            );
            assert_eq!(r, (0..29).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(served.load(Ordering::Relaxed), 29, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_timed_reports_durations() {
        let r = par_map_timed(4, 2, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i
        });
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|(_, d)| *d >= Duration::from_millis(2)));
        assert_eq!(
            r.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0.0f64; 23];
            par_chunks_mut(&mut data, 5, threads, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v += (c + 1) as f64;
                }
            });
            let expected: Vec<f64> = (0..23).map(|i| (i / 5 + 1) as f64).collect();
            assert_eq!(data, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_and_degenerate() {
        let mut empty: Vec<f64> = Vec::new();
        par_chunks_mut(&mut empty, 4, 4, |_, _| panic!("must not run"));
        let mut data = vec![1.0f64; 3];
        par_chunks_mut(&mut data, 0, 4, |_, _| panic!("must not run"));
        assert_eq!(data, vec![1.0; 3]);
    }

    #[test]
    fn par_chunks_mut_panic_preserves_payload() {
        let caught = std::panic::catch_unwind(|| {
            let mut data = vec![0.0f64; 64];
            par_chunks_mut(&mut data, 4, 4, |c, _| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 7 exploded");
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // Device-over-kernel nesting: an outer fan-out whose bodies issue
        // inner fan-outs must terminate even when the pool is saturated,
        // because every caller participates in its own job. Heavy variants
        // so both layers really publish jobs.
        let r = par_map_heavy(4, 4, |i| {
            let inner = par_map_heavy(8, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(r, expected);
    }

    #[test]
    fn repeated_calls_do_not_spawn_per_call() {
        // The no-churn regression: hundreds of parallel calls at a fixed
        // thread count may grow the pool by at most `threads - 1` workers
        // (concurrently-running tests may have grown it already, so assert
        // on the delta, not the absolute count).
        let before = POOL_WORKERS.get();
        for _ in 0..200 {
            let r = par_map_heavy(16, 2, |i| i + 1);
            assert_eq!(r.len(), 16);
        }
        let delta = POOL_WORKERS.get() - before;
        assert!(delta <= 1, "200 calls at 2 threads spawned {delta} workers");
    }

    #[test]
    fn workers_spawned_bounded_by_thread_count() {
        // `pool.workers_spawned` is a high-water mark: after any number of
        // calls at `threads = t`, the pool has spawned at most `t - 1`
        // workers on behalf of those calls.
        let before = POOL_WORKERS.get();
        for _ in 0..50 {
            par_map_heavy(32, 4, |i| i * 2);
            let mut buf = vec![0.0f64; 64];
            par_chunks_mut(&mut buf, 8, 4, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1.0;
                }
            });
        }
        let delta = POOL_WORKERS.get() - before;
        assert!(delta <= 3, "calls at 4 threads spawned {delta} workers");
    }

    #[test]
    fn small_fan_out_runs_inline_on_caller() {
        // Below MIN_INLINE_ITEMS, par_map must compute every item on the
        // calling thread — no job publish, no handoff to pool workers.
        let caller = std::thread::current().id();
        let ids = par_map(MIN_INLINE_ITEMS - 1, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
        // At or above the threshold the call is eligible for the pool;
        // results must stay in index order either way.
        let r = par_map(MIN_INLINE_ITEMS + 5, 4, |i| i * 2);
        assert_eq!(
            r,
            (0..MIN_INLINE_ITEMS + 5).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn burst_of_small_jobs_stays_correct() {
        // Back-to-back publishes hit the workers' spin window (the
        // BENCH_PR6 pathology): every job in the burst must still hand
        // each index to exactly one participant.
        for round in 0..300 {
            let r = par_map_heavy(8, 2, move |i| round * 100 + i);
            assert_eq!(r, (0..8).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
