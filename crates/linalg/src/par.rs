//! Shared work-stealing parallelism for the numerical kernels.
//!
//! Every parallel loop in the workspace — the blocked matrix kernels here in
//! `linalg`, the per-column Lasso fan-out in `sparse`/`subspace`, the
//! per-partition SVDs in `core`, and the per-device fan-out in `federated` —
//! funnels through this module, so there is exactly one place that spawns
//! threads and one ownership rule to reason about (see DESIGN.md §9:
//! the device fan-out owns `threads`, kernels own `kernel_threads`, and
//! neither nests inside the other's workers beyond that product).
//!
//! Two primitives:
//!
//! * [`par_map`] / [`par_map_timed`] — map `f` over `0..count` with an
//!   atomic work-stealing queue. Results come back **in index order**, and
//!   each index is computed by exactly one worker with thread-count-
//!   independent arithmetic, so seeded callers stay bit-reproducible.
//! * [`par_chunks_mut`] — split a flat buffer into contiguous chunks (the
//!   columns of a column-major matrix) and process disjoint chunk ranges on
//!   separate workers; in-place, allocation-free result collection.
//!
//! Worker panics are caught, the **first** payload is preserved, and it is
//! re-raised on the calling thread after every worker has parked — the same
//! contract `crossbeam::thread::scope` gives, without the dependency (this
//! crate sits below `fedsc-federated` in the graph, which is what lets
//! `sparse`/`subspace`/`core` use the pool without a dependency cycle).
//!
//! Timing goes through `fedsc_obs` ([`Stopwatch`]) — the workspace's only
//! sanctioned wall-clock access (`cargo xtask check` rule 3) — and the pool
//! reports itself to the metrics registry: `pool.tasks` (indices executed),
//! `pool.steals` (tasks a worker executed beyond its fair share of the
//! queue, the work-stealing imbalance), `pool.busy_ns` (per-worker loop
//! wall time, summed), and `pool.workers_spawned`.

use fedsc_obs::{LazyCounter, Stopwatch};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Indices executed by [`par_map`] / chunks written by [`par_chunks_mut`].
static POOL_TASKS: LazyCounter = LazyCounter::new("pool.tasks");
/// Tasks executed beyond a worker's fair share `ceil(count / threads)` —
/// the number of successful steals from slower workers's shares.
static POOL_STEALS: LazyCounter = LazyCounter::new("pool.steals");
/// Summed per-worker busy wall time (claim loop + task execution), ns.
static POOL_BUSY_NS: LazyCounter = LazyCounter::new("pool.busy_ns");
/// Worker threads spawned across all parallel calls.
static POOL_WORKERS: LazyCounter = LazyCounter::new("pool.workers_spawned");

/// Default worker count: available parallelism, floor 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Write-once result slots indexed by the work queue.
///
/// The atomic queue in [`par_map`] hands each index in `0..count` to exactly
/// one worker, so every `UnsafeCell` is written by at most one thread, and
/// none is read until the scope has joined all workers.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: disjoint-by-construction writes (one claimed index per slot) and
// no reads before the owning scope joins every worker.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(count: usize) -> Self {
        Self((0..count).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Stores `value` at `i`. Caller must hold the unique claim on `i`.
    #[allow(unsafe_code)]
    fn put(&self, i: usize, value: T) {
        // SAFETY: `i` was claimed exactly once from the atomic queue, so no
        // other thread writes this cell, and readers wait for the join.
        unsafe { *self.0[i].get() = Some(value) };
    }
}

/// Spawns `threads` scoped workers running `body`, joins them all, and
/// re-raises the first worker panic (original payload) on the caller.
/// `stop` is set as soon as any worker panics so the others can bail early.
fn run_workers<F>(threads: usize, stop: &AtomicBool, body: F)
where
    F: Fn() + Sync,
{
    POOL_WORKERS.add(threads as u64);
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(&body)) {
                    stop.store(true, Ordering::SeqCst);
                    let mut guard = first_panic
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if guard.is_none() {
                        *guard = Some(payload);
                    }
                }
            });
        }
    });
    let payload = first_panic
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Maps `f` over `0..count` on `threads` workers (atomic work stealing),
/// returning results in index order.
///
/// Each index is computed exactly once with the same arithmetic regardless
/// of `threads`, so results are bit-identical across thread counts; callers
/// needing reproducible randomness derive per-index RNGs from a base seed.
pub fn par_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    if count == 0 {
        return Vec::new();
    }
    if threads == 1 {
        POOL_TASKS.add(count as u64);
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots = Slots::new(count);
    // Fair share per worker; anything executed past it was stolen from a
    // slower worker's share of the queue.
    let fair = (count as u64).div_ceil(threads as u64);
    run_workers(threads, &stop, || {
        let sw = Stopwatch::start();
        let mut executed = 0u64;
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            slots.put(i, f(i));
            executed += 1;
        }
        POOL_TASKS.add(executed);
        POOL_STEALS.add(executed.saturating_sub(fair));
        POOL_BUSY_NS.add(sw.elapsed_ns());
    });
    // INVARIANT: run_workers returned without re-raising a panic, so every
    // index in 0..count was claimed exactly once and its slot written.
    slots
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every index processed"))
        .collect()
}

/// [`par_map`] that also reports each item's wall time (via the
/// `fedsc_obs` stopwatch, so this crate never touches the clock directly).
pub fn par_map_timed<T, F>(count: usize, threads: usize, f: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map(count, threads, |i| {
        let sw = Stopwatch::start();
        let r = f(i);
        (r, sw.elapsed())
    })
}

/// Splits `data` into contiguous `chunk_len`-sized chunks (`chunks_mut`
/// semantics: the last chunk may be shorter) and calls `f(chunk_index,
/// chunk)` for each, distributing contiguous chunk *ranges* across
/// `threads` workers.
///
/// This is the in-place fan-out for the blocked matrix kernels: a chunk is a
/// column panel of a column-major output, every panel is written by exactly
/// one worker, and the per-panel arithmetic never depends on the thread
/// count — so threaded kernels produce bit-identical buffers to `threads =
/// 1`. Static (not stealing) distribution: panel costs are uniform in those
/// kernels, and static ranges need no synchronization at all.
pub fn par_chunks_mut<F>(data: &mut [f64], chunk_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() || chunk_len == 0 {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.max(1).min(n_chunks);
    if threads == 1 {
        POOL_TASKS.add(n_chunks as u64);
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }
    // Balanced contiguous chunk ranges: the first `rem` workers take one
    // extra chunk.
    let base = n_chunks / threads;
    let rem = n_chunks % threads;
    POOL_WORKERS.add(threads as u64);
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start_chunk = 0usize;
        for w in 0..threads {
            let take_chunks = base + usize::from(w < rem);
            let take_len = (take_chunks * chunk_len).min(rest.len());
            let (span, tail) = rest.split_at_mut(take_len);
            rest = tail;
            let first_panic = &first_panic;
            let f = &f;
            scope.spawn(move || {
                let run = AssertUnwindSafe(|| {
                    let sw = Stopwatch::start();
                    let mut written = 0u64;
                    for (off, chunk) in span.chunks_mut(chunk_len).enumerate() {
                        f(start_chunk + off, chunk);
                        written += 1;
                    }
                    POOL_TASKS.add(written);
                    POOL_BUSY_NS.add(sw.elapsed_ns());
                });
                if let Err(payload) = catch_unwind(run) {
                    let mut guard = first_panic
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if guard.is_none() {
                        *guard = Some(payload);
                    }
                }
            });
            start_chunk += take_chunks;
        }
    });
    let payload = first_panic
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_results_in_index_order() {
        for threads in [1, 2, 8] {
            let r = par_map(33, threads, |i| i * 7 + 1);
            assert_eq!(r, (0..33).map(|i| i * 7 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_oversubscribed() {
        assert!(par_map(0, 8, |i| i).is_empty());
        assert_eq!(par_map(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn par_map_panic_preserves_payload() {
        let caught = std::panic::catch_unwind(|| {
            par_map(16, 4, |i| {
                if i == 9 {
                    panic!("slot 9 exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "slot 9 exploded");
    }

    #[test]
    fn par_map_timed_reports_durations() {
        let r = par_map_timed(4, 2, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i
        });
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|(_, d)| *d >= Duration::from_millis(2)));
        assert_eq!(
            r.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0.0f64; 23];
            par_chunks_mut(&mut data, 5, threads, |c, chunk| {
                for v in chunk.iter_mut() {
                    *v += (c + 1) as f64;
                }
            });
            let expected: Vec<f64> = (0..23).map(|i| (i / 5 + 1) as f64).collect();
            assert_eq!(data, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_and_degenerate() {
        let mut empty: Vec<f64> = Vec::new();
        par_chunks_mut(&mut empty, 4, 4, |_, _| panic!("must not run"));
        let mut data = vec![1.0f64; 3];
        par_chunks_mut(&mut data, 0, 4, |_, _| panic!("must not run"));
        assert_eq!(data, vec![1.0; 3]);
    }

    #[test]
    fn par_chunks_mut_panic_preserves_payload() {
        let caught = std::panic::catch_unwind(|| {
            let mut data = vec![0.0f64; 64];
            par_chunks_mut(&mut data, 4, 4, |c, _| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 7 exploded");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
