//! Symmetric eigendecomposition.
//!
//! The classic two-stage dense path: Householder tridiagonalization
//! (`tred2`) followed by the implicit-shift QL iteration (`tql2`), both with
//! eigenvector accumulation. This is the solver behind every spectral step in
//! the workspace — normalized spectral clustering, the eigengap heuristic,
//! and the CONN connectivity metric.
//!
//! Eigenvalues are returned in **ascending** order, which is the order
//! spectral clustering consumes them in (the `k` smallest eigenvectors of the
//! normalized Laplacian span the cluster-indicator space).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(w) V^T` of a symmetric matrix.
#[derive(Debug, Clone)]
#[must_use = "dropping an eigendecomposition discards the factorization work"]
pub struct SymmetricEig {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as columns, matching `eigenvalues` order.
    pub eigenvectors: Matrix,
}

/// Maximum implicit-QL iterations per eigenvalue before reporting failure.
const MAX_QL_ITERS: usize = 50;

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle of `a` is read; the strict upper triangle is
/// assumed to mirror it. Returns an error for non-square input or when the
/// QL iteration fails to converge (which for symmetric input essentially
/// never happens in practice).
pub fn eigh(a: &Matrix) -> Result<SymmetricEig> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (m, m),
            got: (m, n),
        });
    }
    if n == 0 {
        return Ok(SymmetricEig {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let mut v = a.clone();
    let mut d = vec![0.0; n]; // diagonal of the tridiagonal form
    let mut e = vec![0.0; n]; // sub-diagonal
    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;
    sort_ascending(&mut d, &mut v);
    Ok(SymmetricEig {
        eigenvalues: d,
        eigenvectors: v,
    })
}

/// Computes only the `k` smallest eigenpairs.
///
/// Selects the backend by size: dense `tred2`/`tql2` for small matrices or
/// near-full requests, Lanczos (see [`crate::lanczos`]) when the matrix is
/// large and `k` is a small fraction of it — the spectral-clustering hot
/// path at federated scale.
pub fn k_smallest(a: &Matrix, k: usize) -> Result<SymmetricEig> {
    let n = a.rows();
    if lanczos_beats_dense(n, k) {
        return crate::lanczos::lanczos_smallest(a, k, k + 40);
    }
    let full = eigh(a)?;
    let k = k.min(full.eigenvalues.len());
    let cols: Vec<usize> = (0..k).collect();
    Ok(SymmetricEig {
        eigenvalues: full.eigenvalues[..k].to_vec(),
        eigenvectors: full.eigenvectors.select_columns(&cols),
    })
}

/// Shared dense-vs-Lanczos cutover: `true` when the thick-restart Lanczos
/// path (see [`crate::thick_restart`]) is expected to beat a full dense
/// `tred2`/`tql2` factorization for the `k` smallest eigenpairs of an
/// `n × n` symmetric operator.
///
/// The thresholds were retuned from measurement after the thick-restart
/// rewrite (see DESIGN.md §13): dense eigh is O(n³) with a small constant,
/// the iterative path is roughly O(restarts · m · nnz + m²n), so the
/// crossover depends on how small `k` is relative to `n`. On the bench
/// instances (block affinities, k = #clusters) the iterative path wins from
/// a few hundred rows whenever `k` stays under ~n/6; we keep a margin and
/// require `n > 400` and `k·6 < n`. Both `eigh::k_smallest` and the sparse
/// spectral pipeline in `fedsc-clustering` consult this single predicate so
/// the two layers can never disagree about which backend ran.
#[must_use]
pub fn lanczos_beats_dense(n: usize, k: usize) -> bool {
    n > 400 && k.saturating_mul(6) < n
}

fn sort_ascending(d: &mut [f64], v: &mut Matrix) {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let already_sorted = order.iter().enumerate().all(|(i, &o)| i == o);
    if already_sorted {
        return;
    }
    let sorted_d: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let sorted_v = v.select_columns(&order);
    d.copy_from_slice(&sorted_d);
    *v = sorted_v;
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transform in `v` (EISPACK/JAMA `tred2`).
fn tred2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for j in 0..n {
        d[j] = v[(n - 1, j)];
    }

    // Householder reduction to tridiagonal form.
    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for dk in d.iter().take(i) {
            scale += dk.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        } else {
            // Generate the Householder vector.
            for dk in d.iter_mut().take(i) {
                *dk /= scale;
                h += *dk * *dk;
            }
            let mut f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for ej in e.iter_mut().take(i) {
                *ej = 0.0;
            }

            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                f = d[j];
                v[(j, i)] = f;
                g = e[j] + v[(j, j)] * f;
                for k in j + 1..i {
                    g += v[(k, j)] * d[k];
                    e[k] += v[(k, j)] * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                f = d[j];
                g = e[j];
                for k in j..i {
                    let upd = f * e[k] + g * d[k];
                    v[(k, j)] -= upd;
                }
                d[j] = v[(i - 1, j)];
                v[(i, j)] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate transformations.
    for i in 0..n.saturating_sub(1) {
        v[(n - 1, i)] = v[(i, i)];
        v[(i, i)] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v[(k, i + 1)] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v[(k, i + 1)] * v[(k, j)];
                }
                for k in 0..=i {
                    let dk = d[k];
                    v[(k, j)] -= g * dk;
                }
            }
        }
        for k in 0..=i {
            v[(k, i + 1)] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[(n - 1, j)];
        v[(n - 1, j)] = 0.0;
    }
    v[(n - 1, n - 1)] = 1.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on the tridiagonal form, accumulating
/// eigenvectors (EISPACK `tql2`).
fn tql2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0f64;
    let mut tst1 = 0.0f64;
    let eps = f64::EPSILON;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m == n {
            m = n - 1;
        }

        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                if iter > MAX_QL_ITERS {
                    return Err(LinalgError::NoConvergence {
                        routine: "tql2",
                        iterations: MAX_QL_ITERS,
                    });
                }
                // Compute implicit shift.
                let mut g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for i in l + 2..n {
                    d[i] -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    g = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);

                    // Accumulate the rotation into the eigenvector matrix.
                    for k in 0..n {
                        h = v[(k, i + 1)];
                        v[(k, i + 1)] = s * v[(k, i)] + c * h;
                        v[(k, i)] = c * v[(k, i)] - s * h;
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;

                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, eig: &SymmetricEig) -> f64 {
        // max_i || A v_i - w_i v_i ||
        let mut worst = 0.0f64;
        for (i, &w) in eig.eigenvalues.iter().enumerate() {
            let v = eig.eigenvectors.col(i);
            let av = a.matvec(v).unwrap();
            let r: f64 = av
                .iter()
                .zip(v)
                .map(|(&avk, &vk)| (avk - w * vk).abs())
                .fold(0.0, f64::max);
            worst = worst.max(r);
        }
        worst
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        let eig = eigh(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_hand_checked() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = eigh(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &eig) < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap();
        let eig = eigh(&a).unwrap();
        let g = eig.eigenvectors.gram();
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - expect).abs() < 1e-10,
                    "G[{i},{j}] = {}",
                    g[(i, j)]
                );
            }
        }
        assert!(residual(&a, &eig) < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 5.0, -1.0], &[3.0, -1.0, 0.0]]).unwrap();
        let eig = eigh(&a).unwrap();
        let trace = 1.0 + 5.0 + 0.0;
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn laplacian_of_two_components_has_two_zero_eigenvalues() {
        // Path graph on {0,1} plus isolated pair {2,3}: Laplacian blocks.
        let a = Matrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0],
            &[-1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, -1.0],
            &[0.0, 0.0, -1.0, 1.0],
        ])
        .unwrap();
        let eig = eigh(&a).unwrap();
        assert!(eig.eigenvalues[0].abs() < 1e-12);
        assert!(eig.eigenvalues[1].abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn k_smallest_truncates() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        let eig = k_smallest(&a, 2).unwrap();
        assert_eq!(eig.eigenvalues.len(), 2);
        assert_eq!(eig.eigenvectors.cols(), 2);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let eig = eigh(&Matrix::zeros(0, 0)).unwrap();
        assert!(eig.eigenvalues.is_empty());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let eig = eigh(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![7.0]);
        assert!((eig.eigenvectors[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(eigh(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn moderately_large_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix; checks residual and
        // orthogonality at n = 40.
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = eigh(&a).unwrap();
        assert!(residual(&a, &eig) < 1e-9);
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
