//! Dense column-major matrix type used throughout the workspace.
//!
//! Data matrices in subspace clustering are naturally column-oriented
//! (`X = [x_1, ..., x_N]` with one column per data point), so the storage is
//! column-major: column `j` occupies the contiguous range
//! `data[j * rows .. (j + 1) * rows]`. Contiguous columns make the hot kernels
//! (per-point sparse regression, Gram products, basis extraction) cache
//! friendly and allow borrowing a column as a plain slice.

use crate::aligned::AlignedBuf;
use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Output-column block width for `matmul` (one block of contiguous output
/// columns is one unit of parallel work).
const BLOCK_J: usize = 64;
/// Inner-dimension panel width for `matmul`: a panel of `self` columns is
/// streamed once per output block.
const BLOCK_K: usize = 128;
/// Column-tile width for the pairwise-dot kernels (`syrk`, `tr_matmul`).
const BLOCK_TILE: usize = 32;
/// Row-panel height for the pairwise-dot kernels: a `BLOCK_TILE x
/// BLOCK_ROWS` tile of each operand (~64 KiB the pair) stays cache-resident
/// across a whole tile of dot products.
const BLOCK_ROWS: usize = 256;
/// Flop count below which the kernels stay single-threaded: spawning a
/// scoped pool costs more than it saves on small products.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Worker count a kernel should actually use for a product of `flops`
/// multiply-adds.
fn effective_threads(threads: usize, flops: usize) -> usize {
    if flops < PAR_MIN_FLOPS {
        1
    } else {
        threads.max(1)
    }
}

/// A dense, column-major, `f64` matrix.
///
/// ```
/// use fedsc_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
/// assert_eq!(a.col(1), &[2.0, 4.0]); // columns are contiguous
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Cache-line-aligned column-major storage (see [`crate::aligned`]):
    /// the buffer base sits on a 64-byte boundary so the 8-wide unrolled
    /// kernels stream whole cache lines from the first element.
    data: AlignedBuf,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: AlignedBuf::zeroed(rows * cols),
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: AlignedBuf::filled(rows * cols, value),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a column-major data buffer.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: AlignedBuf::from_slice(&data),
        })
    }

    /// Builds a matrix from a slice of rows (row-major convenience, used
    /// heavily in tests where literal matrices are written row by row).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::RaggedRows);
        }
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        Ok(m)
    }

    /// Builds a matrix whose columns are the given slices.
    pub fn from_columns(cols: &[&[f64]]) -> Result<Self> {
        let c = cols.len();
        let r = cols.first().map_or(0, |col| col.len());
        if cols.iter().any(|col| col.len() != r) {
            return Err(LinalgError::RaggedRows);
        }
        let mut m = Self::zeros(r, c);
        for (j, col) in cols.iter().enumerate() {
            m.col_mut(j).copy_from_slice(col);
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when either dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrows column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copies row `i` into a new vector (rows are strided, so this allocates).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Iterator over columns as slices.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.rows.max(1)).take(self.cols)
    }

    /// Returns a new matrix containing the selected columns, in order.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(self.rows, indices.len());
        for (dst, &src) in indices.iter().enumerate() {
            m.col_mut(dst).copy_from_slice(self.col(src));
        }
        m
    }

    /// Horizontally concatenates matrices that share a row count.
    pub fn hcat(parts: &[&Matrix]) -> Result<Matrix> {
        if parts.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let rows = parts[0].rows;
        if parts.iter().any(|p| p.rows != rows) {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, 0),
                got: (parts.iter().map(|p| p.rows).max().unwrap_or(0), 0),
            });
        }
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut m = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for p in parts {
            m.data[offset..offset + p.data.len()].copy_from_slice(&p.data);
            offset += p.data.len();
        }
        Ok(m)
    }

    /// Transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            let col = self.col(j);
            for (i, &v) in col.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_threaded(rhs, 1)
    }

    /// Cache-blocked matrix-matrix product `self * rhs`, fanned out over at
    /// most `threads` workers for large instances.
    ///
    /// jik order with k-panel × j-block tiling: a panel of `self` columns is
    /// reused across a block of output columns while it is still hot, and
    /// the inner axpy is the 4-wide unrolled [`crate::vector::axpy`]. Every
    /// output element accumulates over `k` in ascending order regardless of
    /// blocking or thread count, so the result is bit-identical to the naive
    /// kernel and to `threads = 1`.
    pub fn matmul_threaded(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 0),
                got: (rhs.rows, rhs.cols),
            });
        }
        let (m, k_dim, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 || k_dim == 0 {
            return Ok(out);
        }
        let threads = effective_threads(threads, m * k_dim * n);
        crate::par::par_chunks_mut(&mut out.data, m * BLOCK_J, threads, |jb, chunk| {
            let j0 = jb * BLOCK_J;
            for k0 in (0..k_dim).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(k_dim);
                for (jo, ocol) in chunk.chunks_mut(m).enumerate() {
                    let rcol = rhs.col(j0 + jo);
                    for (k, &rv) in rcol[k0..k1].iter().enumerate() {
                        if rv == 0.0 {
                            continue;
                        }
                        crate::vector::axpy(rv, self.col(k0 + k), ocol);
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (k, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let col = self.col(k);
            for (yo, &c) in y.iter_mut().zip(col) {
                *yo += xv * c;
            }
        }
        Ok(y)
    }

    /// Transposed matrix-vector product `self^T * x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (j, yo) in y.iter_mut().enumerate() {
            let col = self.col(j);
            *yo = crate::vector::dot(col, x);
        }
        Ok(y)
    }

    /// Gram matrix `self^T * self` (symmetric, computed on the upper triangle
    /// and mirrored). Delegates to the blocked [`Matrix::syrk`].
    pub fn gram(&self) -> Matrix {
        self.gram_threaded(1)
    }

    /// [`Matrix::gram`] fanned out over at most `threads` workers.
    pub fn gram_threaded(&self, threads: usize) -> Matrix {
        self.syrk_threaded(threads)
    }

    /// Symmetric rank-k update `self^T * self` (syrk): the Gram matrix
    /// computed as a sum of row-panel outer contributions
    /// `G += A_p^T A_p` instead of one long dot product per column pair.
    pub fn syrk(&self) -> Matrix {
        self.syrk_threaded(1)
    }

    /// Cache-blocked [`Matrix::syrk`] on at most `threads` workers.
    ///
    /// Only the upper triangle is computed (tiles `ib <= jb` of column
    /// pairs, accumulated row panel by row panel so both column segments
    /// stay in cache across the whole tile), then mirrored. Rows advance
    /// four at a time through the register-blocked [`crate::vector::dot4`]
    /// so each panel of `self[:, j]` is loaded once per four outputs. Each
    /// entry's panel accumulation depends only on its `(i, j)` position and
    /// the tile bounds — never on the thread count — so results are
    /// bit-identical across `threads`.
    pub fn syrk_threaded(&self, threads: usize) -> Matrix {
        let (d, n) = (self.rows, self.cols);
        let mut g = Matrix::zeros(n, n);
        if n == 0 {
            return g;
        }
        let threads = effective_threads(threads, d * n * n / 2);
        crate::par::par_chunks_mut(&mut g.data, n * BLOCK_TILE, threads, |jb, chunk| {
            let j0 = jb * BLOCK_TILE;
            let j_count = chunk.len() / n.max(1);
            let j_max = j0 + j_count; // exclusive
            for i0 in (0..j_max).step_by(BLOCK_TILE) {
                for k0 in (0..d.max(1)).step_by(BLOCK_ROWS) {
                    let k1 = (k0 + BLOCK_ROWS).min(d);
                    for (jo, gcol) in chunk.chunks_mut(n).enumerate() {
                        let j = j0 + jo;
                        let aj = &self.col(j)[k0..k1];
                        let i_end = (i0 + BLOCK_TILE).min(j + 1);
                        let mut i = i0;
                        while i + 4 <= i_end {
                            let quad = crate::vector::dot4(
                                &self.col(i)[k0..k1],
                                &self.col(i + 1)[k0..k1],
                                &self.col(i + 2)[k0..k1],
                                &self.col(i + 3)[k0..k1],
                                aj,
                            );
                            gcol[i] += quad[0];
                            gcol[i + 1] += quad[1];
                            gcol[i + 2] += quad[2];
                            gcol[i + 3] += quad[3];
                            i += 4;
                        }
                        while i < i_end {
                            gcol[i] += crate::vector::dot(&self.col(i)[k0..k1], aj);
                            i += 1;
                        }
                    }
                }
            }
        });
        // Mirror the upper triangle down (cheap O(n^2) pass).
        for j in 0..n {
            for i in 0..j {
                g.data[i * n + j] = g.data[j * n + i];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                got: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += b;
        }
        Ok(out)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                got: rhs.shape(),
            });
        }
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= b;
        }
        Ok(out)
    }

    /// Normalizes every column to unit Euclidean norm in place. Columns with
    /// norm below `eps` are left untouched (they carry no direction).
    pub fn normalize_columns(&mut self, eps: f64) {
        for j in 0..self.cols {
            let col = self.col_mut(j);
            let n = crate::vector::norm2(col);
            if n > eps {
                for v in col {
                    *v /= n;
                }
            }
        }
    }

    /// `self^T * rhs`.
    pub fn tr_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.tr_matmul_threaded(rhs, 1)
    }

    /// Cache-blocked `self^T * rhs` on at most `threads` workers.
    ///
    /// Same tiling as [`Matrix::syrk_threaded`] without the triangular
    /// structure: `out(i, j) = <self[:, i], rhs[:, j]>` accumulated over row
    /// panels so a tile of `self` columns is reused across a block of `rhs`
    /// columns, four output rows at a time through the register-blocked
    /// [`crate::vector::dot4`]. Bit-identical across thread counts (each
    /// entry is computed by one worker with a fixed panel order).
    pub fn tr_matmul_threaded(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 0),
                got: (rhs.rows, rhs.cols),
            });
        }
        let (d, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let threads = effective_threads(threads, d * m * n);
        crate::par::par_chunks_mut(&mut out.data, m * BLOCK_TILE, threads, |jb, chunk| {
            let j0 = jb * BLOCK_TILE;
            for i0 in (0..m).step_by(BLOCK_TILE) {
                let i1 = (i0 + BLOCK_TILE).min(m);
                for k0 in (0..d.max(1)).step_by(BLOCK_ROWS) {
                    let k1 = (k0 + BLOCK_ROWS).min(d);
                    for (jo, ocol) in chunk.chunks_mut(m).enumerate() {
                        let rcol = &rhs.col(j0 + jo)[k0..k1];
                        let mut i = i0;
                        while i + 4 <= i1 {
                            let quad = crate::vector::dot4(
                                &self.col(i)[k0..k1],
                                &self.col(i + 1)[k0..k1],
                                &self.col(i + 2)[k0..k1],
                                &self.col(i + 3)[k0..k1],
                                rcol,
                            );
                            ocol[i] += quad[0];
                            ocol[i + 1] += quad[1];
                            ocol[i + 2] += quad[2];
                            ocol[i + 3] += quad[3];
                            i += 4;
                        }
                        while i < i1 {
                            ocol[i] += crate::vector::dot(&self.col(i)[k0..k1], rcol);
                            i += 1;
                        }
                    }
                }
            }
        });
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        let max_cols = 8.min(self.cols);
        for i in 0..max_rows {
            write!(f, "  ")?;
            for j in 0..max_cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            if max_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if max_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_entries() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips_indices() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.col(1), &[2.0, 5.0]);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn from_col_major_validates_length() {
        assert!(Matrix::from_col_major(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.0, 3.0, 1.0]]).unwrap();
        let x = [2.0, 1.0, -1.0];
        assert_eq!(a.matvec(&x).unwrap(), vec![-1.0, 2.0]);
        let y = [1.0, 2.0];
        assert_eq!(a.tr_matvec(&y).unwrap(), vec![1.0, 5.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g[(0, 0)], 2.0);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 1.0);
    }

    #[test]
    fn select_columns_picks_in_order() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let s = a.select_columns(&[2, 0]);
        assert_eq!(s.col(0), &[3.0, 6.0]);
        assert_eq!(s.col(1), &[1.0, 4.0]);
    }

    #[test]
    fn hcat_concatenates() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let c = Matrix::hcat(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.col(2), &[4.0, 6.0]);
    }

    #[test]
    fn hcat_rejects_row_mismatch() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(Matrix::hcat(&[&a, &b]).is_err());
    }

    #[test]
    fn normalize_columns_produces_unit_columns() {
        let mut a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]).unwrap();
        a.normalize_columns(1e-12);
        assert!((crate::vector::norm2(a.col(0)) - 1.0).abs() < 1e-12);
        // Zero column untouched.
        assert_eq!(a.col(1), &[0.0, 0.0]);
    }

    #[test]
    fn tr_matmul_matches_transpose_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(a.tr_matmul(&b).unwrap(), a.transpose().matmul(&b).unwrap());
    }

    #[test]
    fn fro_norm_and_max_abs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }
}
