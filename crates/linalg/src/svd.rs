//! Singular value decomposition.
//!
//! Two backends are provided:
//!
//! * [`svd_gram`] — thin SVD via the eigendecomposition of the smaller Gram
//!   matrix. For the tall-skinny matrices this workspace decomposes (ambient
//!   dimension up to ~3500, at most a few hundred points per local cluster)
//!   this is dramatically cheaper than bidiagonalization and accurate enough
//!   for basis estimation (relative error ~ sqrt(machine eps) on the smallest
//!   singular values, which basis extraction never consumes).
//! * [`svd_jacobi`] — one-sided Jacobi SVD; slower but accurate to machine
//!   precision for all singular values. Used as the cross-check oracle in
//!   tests and available for ablation benches.
//!
//! [`truncated_svd`] implements the paper's footnote 3: local subspace bases
//! are estimated with a *truncated* SVD to keep the per-device cost low.

use crate::eigh::eigh;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector;

/// Thin SVD `A = U diag(s) V^T` with singular values in **descending** order.
#[derive(Debug, Clone)]
#[must_use = "dropping an SVD discards the factorization work"]
pub struct Svd {
    /// Left singular vectors (`rows x k`).
    pub u: Matrix,
    /// Singular values, descending, length `k = min(rows, cols)` (or the
    /// requested truncation).
    pub s: Vec<f64>,
    /// Right singular vectors (`cols x k`).
    pub v: Matrix,
}

impl Svd {
    /// Numerical rank: number of singular values above
    /// `tol * max(s) * max(rows, cols)`-style threshold. `tol` defaults to a
    /// scaled machine epsilon when `None`.
    pub fn rank(&self, tol: Option<f64>) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        let t = tol.unwrap_or(f64::EPSILON * self.s.len().max(1) as f64 * 16.0) * smax;
        self.s.iter().take_while(|&&x| x > t).count()
    }

    /// Reconstructs `U diag(s) V^T` (testing helper).
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for (j, &sv) in self.s.iter().enumerate() {
            for x in us.col_mut(j) {
                *x *= sv;
            }
        }
        // INVARIANT: `us` is rows x k and `v^T` is k x cols by construction.
        us.matmul(&self.v.transpose())
            .expect("shapes agree by construction")
    }
}

/// Thin SVD via the smaller Gram matrix.
///
/// When `rows >= cols`, forms `A^T A` (cols x cols), eigendecomposes it to
/// get `V` and `s^2`, and recovers `U = A V diag(1/s)`. When `rows < cols`
/// the roles are swapped. Zero singular directions get zero-padded singular
/// vectors (they never contribute to a basis).
pub fn svd_gram(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m >= n {
        let g = a.gram(); // n x n
        let eig = eigh(&g)?;
        let k = n;
        // eigh returns ascending; we want descending singular values.
        let mut s = Vec::with_capacity(k);
        let order: Vec<usize> = (0..k).rev().collect();
        let v = eig.eigenvectors.select_columns(&order);
        for &i in &order {
            s.push(eig.eigenvalues[i].max(0.0).sqrt());
        }
        let mut u = a.matmul(&v)?;
        for (j, &sv) in s.iter().enumerate() {
            let col = u.col_mut(j);
            if sv > f64::EPSILON * 16.0 {
                vector::scale(col, 1.0 / sv);
            } else {
                col.fill(0.0);
            }
        }
        Ok(Svd { u, s, v })
    } else {
        let at = a.transpose();
        let sw = svd_gram(&at)?;
        Ok(Svd {
            u: sw.v,
            s: sw.s,
            v: sw.u,
        })
    }
}

/// One-sided Jacobi SVD (Hestenes): orthogonalizes the columns of a working
/// copy by plane rotations until all pairs are numerically orthogonal.
pub fn svd_jacobi(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m < n {
        let sw = svd_jacobi(&a.transpose())?;
        return Ok(Svd {
            u: sw.v,
            s: sw.s,
            v: sw.u,
        });
    }
    if n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    let max_sweeps = 60;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                let (cp, cq) = split_two_cols(&mut u, p, q, m);
                let alpha = vector::dot(cp, cp);
                let beta = vector::dot(cq, cq);
                let gamma = vector::dot(cp, cq);
                if alpha * beta == 0.0 {
                    continue;
                }
                let ortho = gamma.abs() / (alpha * beta).sqrt();
                off = off.max(ortho);
                if ortho <= eps {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = cp[i];
                    let uq = cq[i];
                    cp[i] = c * up - s * uq;
                    cq[i] = s * up + c * uq;
                }
                let (vp, vq) = split_two_cols(&mut v, p, q, n);
                for i in 0..n {
                    let a0 = vp[i];
                    let b0 = vq[i];
                    vp[i] = c * a0 - s * b0;
                    vq[i] = s * a0 + c * b0;
                }
            }
        }
        if off <= eps * 4.0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            routine: "svd_jacobi",
            iterations: max_sweeps,
        });
    }
    // Column norms of the rotated U are the singular values.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|j| (vector::norm2(u.col(j)), j)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let order: Vec<usize> = pairs.iter().map(|&(_, j)| j).collect();
    let s: Vec<f64> = pairs.iter().map(|&(sv, _)| sv).collect();
    let mut u = u.select_columns(&order);
    let v = v.select_columns(&order);
    for (j, &sv) in s.iter().enumerate() {
        let col = u.col_mut(j);
        if sv > 0.0 {
            vector::scale(col, 1.0 / sv);
        }
    }
    Ok(Svd { u, s, v })
}

/// Borrows two distinct columns of `m` mutably.
fn split_two_cols(m: &mut Matrix, p: usize, q: usize, rows: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q);
    let data = m.as_mut_slice();
    let (head, tail) = data.split_at_mut(q * rows);
    (&mut head[p * rows..p * rows + rows], &mut tail[..rows])
}

/// Truncated SVD keeping the top `k` singular triplets (paper footnote 3:
/// "we use truncate SVD instead of standard SVD to reduce the computational
/// complexity"). Returns an error when `k` exceeds `min(rows, cols)`.
pub fn truncated_svd(a: &Matrix, k: usize) -> Result<Svd> {
    let kmax = a.rows().min(a.cols());
    if k > kmax {
        return Err(LinalgError::InvalidArgument(
            "truncation k exceeds min(rows, cols)",
        ));
    }
    let full = svd_gram(a)?;
    crate::vector::debug_assert_finite(&full.s, "truncated_svd singular values");
    let cols: Vec<usize> = (0..k).collect();
    Ok(Svd {
        u: full.u.select_columns(&cols),
        s: full.s[..k].to_vec(),
        v: full.v.select_columns(&cols),
    })
}

/// Orthonormal basis of the dominant `dim`-dimensional column space of `a`
/// (the first `dim` left singular vectors). This is exactly the paper's
/// `U_{d_t}^{(z)}` basis estimate for a local cluster.
pub fn dominant_basis(a: &Matrix, dim: usize) -> Result<Matrix> {
    let k = dim.min(a.rows().min(a.cols()));
    Ok(truncated_svd(a, k)?.u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_test_matrix() -> Matrix {
        Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]).unwrap()
    }

    #[test]
    fn gram_svd_singular_values_of_diagonal() {
        let svd = svd_gram(&diag_test_matrix()).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn gram_svd_reconstructs() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[-1.0, 0.0, 2.0],
            &[3.0, 1.0, 1.0],
            &[0.0, -2.0, 1.0],
        ])
        .unwrap();
        let svd = svd_gram(&a).unwrap();
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn jacobi_svd_reconstructs_to_machine_precision() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[-1.0, 0.0, 2.0],
            &[3.0, 1.0, 1.0],
            &[0.0, -2.0, 1.0],
        ])
        .unwrap();
        let svd = svd_jacobi(&a).unwrap();
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-12);
        // U and V orthonormal.
        let utu = svd.u.gram();
        let vtv = svd.v.gram();
        for i in 0..3 {
            for j in 0..3 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((utu[(i, j)] - e).abs() < 1e-12);
                assert!((vtv[(i, j)] - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_and_jacobi_agree_on_singular_values() {
        let a = Matrix::from_rows(&[
            &[2.0, 0.0, 1.0, 3.0],
            &[0.0, 1.0, -1.0, 1.0],
            &[1.0, 1.0, 1.0, 0.0],
        ])
        .unwrap();
        let g = svd_gram(&a).unwrap();
        let j = svd_jacobi(&a).unwrap();
        for (x, y) in g.s.iter().zip(&j.s) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn wide_matrix_is_handled() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 2.0], &[0.0, 3.0, 0.0, 0.0]]).unwrap();
        let svd = svd_gram(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (4, 2));
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn rank_detects_deficiency() {
        // Two identical columns -> rank 1.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let svd = svd_gram(&a).unwrap();
        assert_eq!(svd.rank(Some(1e-8)), 1);
    }

    #[test]
    fn truncated_svd_keeps_top_k() {
        let a = diag_test_matrix();
        let t = truncated_svd(&a, 1).unwrap();
        assert_eq!(t.s.len(), 1);
        assert!((t.s[0] - 4.0).abs() < 1e-10);
        assert_eq!(t.u.cols(), 1);
        assert!(truncated_svd(&a, 5).is_err());
    }

    #[test]
    fn dominant_basis_spans_column_space() {
        // Columns live in span{e1, e2}.
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, -1.0, 0.5], &[0.0, 0.0, 0.0]]).unwrap();
        let b = dominant_basis(&a, 2).unwrap();
        assert_eq!(b.shape(), (3, 2));
        // Third coordinate of the basis must vanish.
        assert!(b.row(2).iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn empty_matrix() {
        let svd = svd_gram(&Matrix::zeros(0, 0)).unwrap();
        assert!(svd.s.is_empty());
    }
}
