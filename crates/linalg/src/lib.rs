//! # fedsc-linalg
//!
//! Dense linear-algebra substrate for the Fed-SC reproduction.
//!
//! Subspace clustering leans on a handful of numerical kernels that general
//! Rust array crates don't provide out of the box — symmetric
//! eigendecomposition for spectral clustering and eigengap estimation, thin
//! and truncated SVD for subspace-basis extraction, principal angles for the
//! theory's affinity measure — so this crate implements them from scratch:
//!
//! * [`matrix::Matrix`] — column-major dense matrix (data sets are columns
//!   of points) with cache-blocked, optionally threaded product kernels.
//! * [`vector`] — slice-level kernels (dot, norms, axpy, soft-thresholding).
//! * [`par`] — the shared work-stealing pool every parallel loop in the
//!   workspace (kernels, per-column solver fan-outs, device fan-out) runs
//!   on.
//! * [`qr`] — Householder QR, least squares, rank-revealing orthonormal
//!   bases.
//! * [`eigh`] — symmetric eigendecomposition (tred2/tql2), ascending order.
//! * [`lanczos`] — the `SymOp` operator abstraction (single and blocked
//!   applies) plus the legacy lock-and-restart Lanczos baseline.
//! * [`thick_restart`] — thick-restart block Lanczos, the production
//!   solver for the k smallest eigenpairs of large (sparse) symmetric
//!   operators: blocked operator applies, ω-recurrence selective
//!   reorthogonalization, kernel-aware seeding.
//! * [`svd`] — thin SVD via Gram eigendecomposition, one-sided Jacobi SVD,
//!   truncated SVD for the paper's basis estimates.
//! * [`solve`] — LU and Cholesky direct solvers.
//! * [`random`] — Gaussian/Stiefel sampling, including the paper's Eq. (5)
//!   uniform-on-subspace sampler.
//! * [`sketch`] — seeded Johnson–Lindenstrauss sign sketch for candidate
//!   pre-selection in the subquadratic SSC pipeline.
//! * [`angles`] — principal angles and the paper's Definition 5 subspace
//!   affinity.

#![warn(missing_docs)]
// Indexed loops over matrix dimensions are the idiom in numerical kernels
// (parallel indexing of several buffers); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod aligned;
pub mod angles;
pub mod eigh;
pub mod error;
pub mod lanczos;
pub mod matrix;
pub mod par;
pub mod qr;
pub mod random;
pub mod sketch;
pub mod solve;
pub mod svd;
pub mod thick_restart;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
