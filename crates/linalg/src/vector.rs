//! Free functions on `&[f64]` vectors.
//!
//! Slices rather than a wrapper type keep these kernels usable on matrix
//! columns (which borrow as `&[f64]`) without copies.

/// Debug-build check that every entry is finite — catches NaN/inf escaping
/// a numerical kernel at the boundary where it is still attributable.
/// Compiles to nothing in release builds.
#[inline]
pub fn debug_assert_finite(x: &[f64], context: &str) {
    debug_assert!(
        x.iter().all(|v| v.is_finite()),
        "{context}: non-finite value in slice of length {}",
        x.len()
    );
}

/// Dot product. Panics in debug builds when lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Eight-lane unrolled accumulation: one full cache line of each operand
    // per iteration, no loop-carried dependence between lanes, so the
    // autovectorizer can keep two 4-wide (or four 2-wide) FMA chains in
    // flight. Also more numerically stable than a single running sum.
    let mut acc = [0.0f64; 8];
    let chunks = a.len() / 8;
    for k in 0..chunks {
        let i = k * 8;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        acc[4] += a[i + 4] * b[i + 4];
        acc[5] += a[i + 5] * b[i + 5];
        acc[6] += a[i + 6] * b[i + 6];
        acc[7] += a[i + 7] * b[i + 7];
    }
    let mut tail = 0.0;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    (acc[0] + acc[4]) + (acc[1] + acc[5]) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Four simultaneous dot products against one shared right-hand side:
/// `[<a0, b>, <a1, b>, <a2, b>, <a3, b>]`.
///
/// The pairwise-dot matrix kernels (`syrk`, `tr_matmul`) call this on four
/// consecutive output rows so every load of `b` is reused four times —
/// the classic register-blocking trick, worth ~2x on Gram products where
/// the panel of `b` is the bandwidth bottleneck. Each stream accumulates
/// in two independent lanes; results depend only on the operands, never on
/// blocking or thread count.
#[inline]
pub fn dot4(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], b: &[f64]) -> [f64; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len()
    );
    let mut acc = [0.0f64; 8];
    let chunks = b.len() / 2;
    for k in 0..chunks {
        let i = k * 2;
        let (b0, b1) = (b[i], b[i + 1]);
        acc[0] += a0[i] * b0;
        acc[1] += a0[i + 1] * b1;
        acc[2] += a1[i] * b0;
        acc[3] += a1[i + 1] * b1;
        acc[4] += a2[i] * b0;
        acc[5] += a2[i + 1] * b1;
        acc[6] += a3[i] * b0;
        acc[7] += a3[i + 1] * b1;
    }
    if b.len() % 2 == 1 {
        let i = b.len() - 1;
        let bv = b[i];
        acc[0] += a0[i] * bv;
        acc[2] += a1[i] * bv;
        acc[4] += a2[i] * bv;
        acc[6] += a3[i] * bv;
    }
    [
        acc[0] + acc[1],
        acc[2] + acc[3],
        acc[4] + acc[5],
        acc[6] + acc[7],
    ]
}

/// Euclidean norm with overflow-safe scaling for large entries.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    let max = a.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let mut s = 0.0;
    for &v in a {
        let t = v / max;
        s += t * t;
    }
    max * s.sqrt()
}

/// `l1` norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `l-inf` norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`.
///
/// 4-wide unrolled: each lane updates independent elements, so the unroll
/// changes no result, and the missing loop-carried dependence lets the
/// autovectorizer emit SIMD fused multiply-adds for the blocked matrix
/// kernels and the Lasso panel sweeps whose inner loop this is. Measured
/// against an 8-wide variant on the `lasso_batch` scenario the narrower
/// unroll wins (~20%): panel updates are mostly 50-300 elements, where the
/// longer scalar tail and register pressure of 8 lanes cost more than the
/// extra in-flight FMAs buy. [`dot`] keeps the 8-wide form — reductions
/// hide the tail in independent accumulators.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = k * 4;
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
    }
    for i in chunks * 4..x.len() {
        y[i] += alpha * x[i];
    }
}

/// Scales `x` in place.
#[inline]
pub fn scale(x: &mut [f64], s: f64) {
    for v in x {
        *v *= s;
    }
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. Leaves `x` untouched (and returns the norm) when it is below `eps`.
pub fn normalize(x: &mut [f64], eps: f64) -> f64 {
    let n = norm2(x);
    if n > eps {
        scale(x, 1.0 / n);
    }
    n
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Absolute cosine similarity `|<a, b>| / (|a| |b|)`; zero when either norm
/// vanishes. This is the spherical-distance kernel TSC thresholds.
pub fn abs_cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).abs().min(1.0)
}

/// Soft-threshold operator `sign(v) * max(|v| - t, 0)` — the proximal map of
/// the `l1` norm, used by every Lasso-style solver in the workspace.
#[inline]
pub fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot4_matches_four_dots() {
        for len in [0usize, 1, 2, 7, 8, 13] {
            let mk = |s: usize| -> Vec<f64> {
                (0..len)
                    .map(|i| ((i * 13 + s * 5 + 1) % 9) as f64 - 4.0)
                    .collect()
            };
            let (a0, a1, a2, a3, b) = (mk(0), mk(1), mk(2), mk(3), mk(4));
            let got = dot4(&a0, &a1, &a2, &a3, &b);
            for (s, a) in [&a0, &a1, &a2, &a3].into_iter().enumerate() {
                let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
                assert!((got[s] - naive).abs() < 1e-12, "len {len} stream {s}");
            }
        }
    }

    #[test]
    fn norm2_is_scale_safe() {
        let a = [3e200, 4e200];
        assert!((norm2(&a) - 5e200).abs() / 5e200 < 1e-12);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norms_hand_checked() {
        let a = [1.0, -2.0, 2.0];
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm_inf(&a), 2.0);
        assert_eq!(norm2(&a), 3.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_returns_original_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x, 1e-12);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z, 1e-12), 0.0);
    }

    #[test]
    fn abs_cosine_bounds_and_orthogonality() {
        assert_eq!(abs_cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert!((abs_cosine(&[1.0, 1.0], &[-2.0, -2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(abs_cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn dist2_sq_hand_checked() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
