//! Free functions on `&[f64]` vectors.
//!
//! Slices rather than a wrapper type keep these kernels usable on matrix
//! columns (which borrow as `&[f64]`) without copies.

/// Debug-build check that every entry is finite — catches NaN/inf escaping
/// a numerical kernel at the boundary where it is still attributable.
/// Compiles to nothing in release builds.
#[inline]
pub fn debug_assert_finite(x: &[f64], context: &str) {
    debug_assert!(
        x.iter().all(|v| v.is_finite()),
        "{context}: non-finite value in slice of length {}",
        x.len()
    );
}

/// Dot product. Panics in debug builds when lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-lane unrolled accumulation: measurably faster than a naive fold
    // for the long (n up to ~3500) vectors this workspace works with, and
    // more numerically stable than a single running sum.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for k in 0..chunks {
        let i = k * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean norm with overflow-safe scaling for large entries.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    let max = a.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let mut s = 0.0;
    for &v in a {
        let t = v / max;
        s += t * t;
    }
    max * s.sqrt()
}

/// `l1` norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `l-inf` norm.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`.
///
/// 4-wide unrolled like [`dot`]: each lane updates independent elements, so
/// the unroll changes no result, and the missing loop-carried dependence
/// lets the autovectorizer emit SIMD adds for the blocked matrix kernels
/// whose inner loop this is.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = k * 4;
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
    }
    for i in chunks * 4..x.len() {
        y[i] += alpha * x[i];
    }
}

/// Scales `x` in place.
#[inline]
pub fn scale(x: &mut [f64], s: f64) {
    for v in x {
        *v *= s;
    }
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. Leaves `x` untouched (and returns the norm) when it is below `eps`.
pub fn normalize(x: &mut [f64], eps: f64) -> f64 {
    let n = norm2(x);
    if n > eps {
        scale(x, 1.0 / n);
    }
    n
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Absolute cosine similarity `|<a, b>| / (|a| |b|)`; zero when either norm
/// vanishes. This is the spherical-distance kernel TSC thresholds.
pub fn abs_cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).abs().min(1.0)
}

/// Soft-threshold operator `sign(v) * max(|v| - t, 0)` — the proximal map of
/// the `l1` norm, used by every Lasso-style solver in the workspace.
#[inline]
pub fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn norm2_is_scale_safe() {
        let a = [3e200, 4e200];
        assert!((norm2(&a) - 5e200).abs() / 5e200 < 1e-12);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norms_hand_checked() {
        let a = [1.0, -2.0, 2.0];
        assert_eq!(norm1(&a), 5.0);
        assert_eq!(norm_inf(&a), 2.0);
        assert_eq!(norm2(&a), 3.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_returns_original_norm() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x, 1e-12);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = [0.0, 0.0];
        assert_eq!(normalize(&mut z, 1e-12), 0.0);
    }

    #[test]
    fn abs_cosine_bounds_and_orthogonality() {
        assert_eq!(abs_cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert!((abs_cosine(&[1.0, 1.0], &[-2.0, -2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(abs_cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn dist2_sq_hand_checked() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
