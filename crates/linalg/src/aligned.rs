//! Cache-line-aligned storage for matrix buffers.
//!
//! `Vec<f64>` only guarantees 8-byte alignment, so a column-major buffer can
//! straddle cache lines at its base and force the 8-wide unrolled kernels in
//! [`crate::vector`] onto split loads. [`AlignedBuf`] allocates on 64-byte
//! boundaries instead: the buffer base — and every column of a matrix whose
//! row count is a multiple of 8 — starts exactly on a cache line.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::mem::size_of;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line size on the targets this workspace runs on (x86-64, aarch64).
const ALIGN: usize = 64;

/// A fixed-length, cache-line-aligned `f64` buffer.
///
/// Fixed length because matrices never grow in place; everything else is
/// plain-slice behavior via `Deref`/`DerefMut`, so kernel code is untouched
/// by the storage swap.
pub struct AlignedBuf {
    ptr: NonNull<f64>,
    len: usize,
}

#[allow(unsafe_code)]
// SAFETY: the buffer exclusively owns its allocation of plain `f64`s —
// moving or sharing it across threads moves/shares only POD data.
unsafe impl Send for AlignedBuf {}
#[allow(unsafe_code)]
// SAFETY: see `Send`; `&AlignedBuf` only exposes `&[f64]`.
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn layout(len: usize) -> Layout {
        // INVARIANT: ALIGN is a power of two and any `len` small enough to
        // allocate keeps `len * 8` rounded up to ALIGN below `isize::MAX`,
        // so the layout constructor cannot fail before the allocator would.
        Layout::from_size_align(len * size_of::<f64>(), ALIGN).expect("aligned buffer layout")
    }

    /// Allocates a zero-filled buffer of `len` entries.
    #[allow(unsafe_code)]
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `layout` has non-zero size, and the all-zero byte pattern
        // is a valid `f64` (positive zero).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f64>()) else {
            handle_alloc_error(layout);
        };
        Self { ptr, len }
    }

    /// Allocates a buffer of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        let mut buf = Self::zeroed(len);
        buf.fill(value);
        buf
    }

    /// Allocates a buffer holding a copy of `src`.
    pub fn from_slice(src: &[f64]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.copy_from_slice(src);
        buf
    }
}

impl Drop for AlignedBuf {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: `ptr` came from `alloc_zeroed` with this exact layout
            // and is deallocated exactly once (fixed length, unique owner).
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];

    #[inline]
    #[allow(unsafe_code)]
    fn deref(&self) -> &[f64] {
        // SAFETY: `ptr` points at `len` initialized `f64`s (or dangles,
        // suitably aligned, when `len == 0`).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    #[allow(unsafe_code)]
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: see `Deref`; `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let b = AlignedBuf::zeroed(37);
        assert_eq!(b.len(), 37);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn from_slice_round_trips() {
        let src: Vec<f64> = (0..19).map(|i| i as f64 * 0.5).collect();
        let b = AlignedBuf::from_slice(&src);
        assert_eq!(&b[..], &src[..]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn filled_and_mutation() {
        let mut b = AlignedBuf::filled(8, 2.5);
        assert!(b.iter().all(|&v| v == 2.5));
        b[3] = -1.0;
        assert_eq!(b[3], -1.0);
    }

    #[test]
    fn empty_buffer_is_safe() {
        let b = AlignedBuf::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(&b[..], &[] as &[f64]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
