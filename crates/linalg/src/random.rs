//! Random linear-algebra primitives: Gaussian vectors, unit-sphere samples,
//! and random orthonormal subspace bases.
//!
//! Gaussian variates come from a Box–Muller transform on top of `rand`'s
//! uniform source, so no distribution crate is needed. Everything is generic
//! over `rand::Rng`, and all experiment code seeds `StdRng` explicitly so
//! runs are reproducible.

use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::vector;
use rand::Rng;

/// One standard-normal variate via Box–Muller.
///
/// Draws the uniform in `(0, 1]` so the logarithm is finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, 1)` entries.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

/// An `n`-dimensional standard-normal vector.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill_standard_normal(rng, &mut v);
    v
}

/// A `rows x cols` matrix with i.i.d. `N(0, 1)` entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    fill_standard_normal(rng, m.as_mut_slice());
    m
}

/// A point drawn uniformly from the unit sphere in `R^n` (normalize a
/// Gaussian; rejection-free and exactly uniform).
pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    loop {
        let mut v = gaussian_vector(rng, n);
        if vector::normalize(&mut v, 1e-300) > 0.0 {
            return v;
        }
        // Astronomically unlikely all-zero draw: resample.
    }
}

/// A uniformly random `d`-dimensional orthonormal basis in `R^n`
/// (`n x d` matrix with orthonormal columns), obtained as the thin `Q` of a
/// Gaussian matrix — the Haar measure on the Stiefel manifold.
///
/// This is exactly the paper's synthetic-data generator: "randomly generate
/// `L` subspaces each of the same dimension `d` by drawing i.i.d. orthonormal
/// basis matrices".
pub fn random_orthonormal_basis<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Matrix {
    assert!(
        d <= n,
        "subspace dimension {d} exceeds ambient dimension {n}"
    );
    let g = gaussian_matrix(rng, n, d);
    // INVARIANT: QR needs rows >= cols; `d <= n` is asserted above.
    let q = Qr::new(g).expect("n >= d checked above").thin_q();
    debug_assert_eq!(q.shape(), (n, d));
    q
}

/// The paper's Eq. (5): a sample distributed uniformly on the unit sphere of
/// the subspace spanned by the orthonormal basis `u` — draw
/// `alpha ~ N(0, I_d)` and return `u alpha / ||u alpha||_2`.
pub fn sample_on_subspace<R: Rng + ?Sized>(rng: &mut R, u: &Matrix) -> Vec<f64> {
    let d = u.cols();
    loop {
        let alpha = gaussian_vector(rng, d);
        // INVARIANT: `alpha` is drawn with length `u.cols()` two lines up.
        let mut theta = u.matvec(&alpha).expect("alpha length matches basis cols");
        if vector::normalize(&mut theta, 1e-300) > 0.0 {
            return theta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_sphere_has_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = unit_sphere(&mut rng, 11);
            assert!((vector::norm2(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_sphere_is_roughly_isotropic() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5_000;
        let mut mean = [0.0f64; 4];
        for _ in 0..n {
            let v = unit_sphere(&mut rng, 4);
            for (m, &x) in mean.iter_mut().zip(&v) {
                *m += x;
            }
        }
        for m in mean {
            assert!((m / n as f64).abs() < 0.05);
        }
    }

    #[test]
    fn random_basis_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(42);
        let b = random_orthonormal_basis(&mut rng, 20, 5);
        assert_eq!(b.shape(), (20, 5));
        let g = b.gram();
        for i in 0..5 {
            for j in 0..5 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds ambient dimension")]
    fn random_basis_rejects_d_above_n() {
        let mut rng = StdRng::seed_from_u64(0);
        random_orthonormal_basis(&mut rng, 3, 4);
    }

    #[test]
    fn subspace_sample_lies_in_span_with_unit_norm() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = random_orthonormal_basis(&mut rng, 10, 3);
        for _ in 0..20 {
            let theta = sample_on_subspace(&mut rng, &u);
            assert!((vector::norm2(&theta) - 1.0).abs() < 1e-12);
            // Projection onto span(U) must reproduce theta: ||U U^T t - t|| ~ 0.
            let coeffs = u.tr_matvec(&theta).unwrap();
            let proj = u.matvec(&coeffs).unwrap();
            let err: f64 = proj
                .iter()
                .zip(&theta)
                .map(|(p, t)| (p - t).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = {
            let mut rng = StdRng::seed_from_u64(123);
            gaussian_vector(&mut rng, 8)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(123);
            gaussian_vector(&mut rng, 8)
        };
        assert_eq!(a, b);
    }
}
