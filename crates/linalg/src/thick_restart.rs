//! Thick-restart **block** Lanczos for the `k` smallest eigenpairs.
//!
//! This is the production sparse-spectral solver behind
//! [`lanczos_smallest`](crate::lanczos::lanczos_smallest). Compared to the
//! legacy lock-and-restart deflation
//! ([`deflated_lanczos_smallest_op`](crate::lanczos::deflated_lanczos_smallest_op))
//! it changes three things, each aimed at the CSR Laplacian workload:
//!
//! 1. **Block expansion.** The basis grows `b` vectors at a time through
//!    [`SymOp::apply_block`], so one traversal of the operator's data is
//!    amortized across `b` matvecs (an SpMM for the CSR impl, a blocked
//!    matmul for dense). A width-`b` block also converges all `b` copies of
//!    a `b`-fold (near-)degenerate eigenvalue in a single pass — the case
//!    that forced the legacy solver into one full restart per copy.
//! 2. **Selective reorthogonalization.** Instead of two full Gram–Schmidt
//!    passes against the whole basis on every step, the solver tracks a
//!    per-block bound on orthogonality loss with Simon's ω-recurrence and
//!    only runs a full pass when the bound crosses `sqrt(ε)` — the
//!    semi-orthogonality threshold below which Ritz values are provably
//!    unaffected at the working tolerance.
//! 3. **Thick restarting.** When the basis hits `m_max`, the `l` smallest
//!    Ritz pairs (converged *and* nearly-converged) are retained together
//!    with the residual block, giving an exact compressed factorization
//!    `A Q = Q H + residual` to continue from — no information from prior
//!    restarts is thrown away.
//!
//! The solver also accepts **seed vectors** ([`ThickRestartOptions::seeds`]):
//! the spectral pipeline passes the per-component indicator vectors
//! `D^{1/2} 1_c`, which are *exact* kernel vectors of the normalized
//! Laplacian, so the degenerate zero eigenvalue of disconnected graphs is
//! captured by construction instead of hoped-for by iteration.
//!
//! Everything is deterministic (xorshift start vectors, no RNG) and
//! bitwise thread-invariant: `threads` only flows into kernels that are
//! themselves thread-invariant (`matmul_threaded`, the CSR SpMM).

use crate::eigh::{eigh, SymmetricEig};
use crate::error::{LinalgError, Result};
use crate::lanczos::{start_vector, SymOp};
use crate::matrix::Matrix;
use crate::vector;
use fedsc_obs::LazyCounter;

/// Thick restarts taken (one per basis rebuild after a Rayleigh–Ritz pass
/// that left unconverged wanted pairs).
pub(crate) static RESTARTS: LazyCounter = LazyCounter::new("spectral.restarts");
/// Operator applications, counted per *vector* (an `apply_block` of width
/// `b` adds `b`), so legacy and block solvers are directly comparable.
pub(crate) static MATVECS: LazyCounter = LazyCounter::new("spectral.matvecs");
/// Full reorthogonalization passes triggered by the ω-recurrence (or forced
/// by rank repair / full-space mode). The selective-reorth win is this
/// staying far below the step count.
pub(crate) static REORTH_PASSES: LazyCounter = LazyCounter::new("spectral.reorth_passes");
/// Ritz pairs accepted by the final true-residual verification.
pub(crate) static RITZ_LOCKED: LazyCounter = LazyCounter::new("spectral.ritz_locked");

/// `sqrt(f64::EPSILON)` — Simon's semi-orthogonality threshold.
const SQRT_EPS: f64 = 1.490_116_119_384_765_6e-8;
/// Default block width; multi-vector operator kernels amortize one data
/// traversal across this many vectors.
const DEFAULT_BLOCK: usize = 8;
/// Default restart budget. Each restart is one full basis expansion, so
/// this bounds total work at roughly `max_restarts * m_max` matvecs.
const DEFAULT_MAX_RESTARTS: usize = 120;

/// Tuning knobs for [`thick_restart_smallest`]. `0` / `0.0` / empty mean
/// "pick the documented default".
#[derive(Debug, Clone)]
pub struct ThickRestartOptions {
    /// Block width `b` (default 8, clamped to `[1, n]`; widened to the seed
    /// count so all seeds form the first block).
    pub block: usize,
    /// Retained basis bound `m_max` (default `k + max(4b, 32)`, raised to at
    /// least `k + b`, rounded up to a block multiple, capped at `n`).
    pub max_basis: usize,
    /// Restart budget (default 120). On exhaustion the best available
    /// Ritz pairs are returned (matching the legacy solver's permissive
    /// contract) rather than erroring.
    pub max_restarts: usize,
    /// Convergence tolerance on the residual `||A y - θ y||` (default
    /// `1e-6 * scale.max(1.0)` with `scale` the largest absolute entry —
    /// the legacy solver's locking tolerance).
    pub tol: f64,
    /// Optional start vectors (length `n` each) folded into the first
    /// block — e.g. exact kernel vectors of a disconnected Laplacian.
    /// Orthonormalized on entry; degenerate seeds are dropped; at most `k`
    /// are used.
    pub seeds: Vec<Vec<f64>>,
    /// Parallelism hint forwarded to [`SymOp::apply_block`] and the dense
    /// Ritz-vector assembly. Results are bitwise identical for every value.
    pub threads: usize,
}

impl Default for ThickRestartOptions {
    fn default() -> Self {
        Self {
            block: 0,
            max_basis: 0,
            max_restarts: 0,
            tol: 0.0,
            seeds: Vec::new(),
            threads: 1,
        }
    }
}

/// Computes the `k` smallest eigenpairs of the symmetric operator `a` by
/// thick-restart block Lanczos. Eigenvalues ascending; eigenvectors
/// orthonormal columns.
pub fn thick_restart_smallest<A: SymOp + ?Sized>(
    a: &A,
    k: usize,
    opts: &ThickRestartOptions,
) -> Result<SymmetricEig> {
    let n = a.dim();
    if k == 0 || n == 0 {
        return Ok(SymmetricEig {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(n, 0),
        });
    }
    let k = k.min(n);

    // Register the stage's telemetry up front: a seeded solve can converge
    // with zero restarts / reorth passes, and consumers (the bench metrics
    // contract) expect the keys to exist even at zero.
    RESTARTS.add(0);
    MATVECS.add(0);
    REORTH_PASSES.add(0);
    RITZ_LOCKED.add(0);

    let (sigma, scale) = a.gershgorin();
    if !sigma.is_finite() || !scale.is_finite() {
        return Err(LinalgError::InvalidArgument(
            "matrix entries must be finite",
        ));
    }
    let anorm = sigma.abs().max(scale).max(1.0);
    let tol = if opts.tol > 0.0 {
        opts.tol
    } else {
        1e-6 * scale.max(1.0)
    };
    let max_restarts = if opts.max_restarts > 0 {
        opts.max_restarts
    } else {
        DEFAULT_MAX_RESTARTS
    };

    let mut solver = Solver {
        a,
        n,
        k,
        threads: opts.threads.max(1),
        anorm,
        b_eff: 0,
        full_reorth: false,
        m_max: 0,
        q: Vec::new(),
        h: Matrix::zeros(0, 0),
        blocks: Vec::new(),
        omega: Vec::new(),
        omega_prev: Vec::new(),
        beta_hi_prev: 0.0,
        reorth_next: false,
        salt: 0,
        probe_collapse: false,
    };

    // Seeds form the front of the first block: orthonormalize, drop
    // degenerate ones, cap at k (more seeds than wanted pairs add nothing).
    let mut init: Vec<Vec<f64>> = Vec::new();
    for s in opts.seeds.iter().take(k) {
        if s.len() != n {
            return Err(LinalgError::InvalidArgument(
                "seed vector length must equal the operator dimension",
            ));
        }
        let mut v = s.clone();
        for _ in 0..2 {
            for b in &init {
                let c = vector::dot(b, &v);
                if c != 0.0 {
                    vector::axpy(-c, b, &mut v);
                }
            }
        }
        if vector::normalize(&mut v, 1e-8) > 1e-8 {
            init.push(v);
        }
    }

    let b_raw = if opts.block > 0 {
        opts.block
    } else {
        DEFAULT_BLOCK
    };
    let init_len = init.len();
    let b_eff = b_raw.max(init_len).clamp(1, n);
    let mut m_max = if opts.max_basis > 0 {
        opts.max_basis
    } else {
        k + (4 * b_eff).max(32)
    };
    m_max = m_max.max(k + b_eff);
    // Round up to a block multiple so expansion fills the basis exactly.
    m_max = b_eff * m_max.div_ceil(b_eff);
    if m_max >= n {
        // Full-space regime: the basis saturates R^n, where rank decisions
        // must see the whole basis — force full reorthogonalization.
        m_max = n;
        solver.full_reorth = true;
    }
    solver.b_eff = b_eff;
    solver.m_max = m_max;
    solver.h = Matrix::zeros(m_max, m_max);
    solver.q = init;
    while solver.q.len() < b_eff.min(m_max) {
        match solver.fresh_vector(&[]) {
            Some(v) => solver.q.push(v),
            None => break,
        }
    }
    if solver.q.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "could not construct a start block",
        ));
    }
    let w0 = solver.q.len();
    solver.blocks.push((0, w0));
    solver.omega = vec![f64::EPSILON];
    solver.omega_prev = vec![f64::EPSILON];

    let inner_tol = 0.5 * tol;
    // Kernel-capture fast path: when the seeds already span k directions
    // (e.g. one indicator vector per component of a k-component graph),
    // run Rayleigh–Ritz on the seed block alone before growing the basis
    // to m_max — exact seeds converge right there, and the full expansion
    // happens only when the seeds were not enough. Without this check a
    // wide seed block inflates m_max and the solver would pay a full
    // expansion for an answer it was handed at the start.
    let seeded_check = init_len >= k;
    for attempt in 0..=max_restarts {
        let (fp, fr) = if attempt == 0 && seeded_check {
            solver.probe_collapse = true;
            let step = solver.block_step();
            solver.probe_collapse = false;
            step?
        } else {
            solver.expand()?
        };
        let m = solver.q.len();
        let mut hm = Matrix::zeros(m, m);
        for j in 0..m {
            for i in 0..m {
                hm[(i, j)] = solver.h[(i, j)];
            }
        }
        let he = eigh(&hm)?;

        // Residual estimates: for Ritz pair (θ_i, s_i) the residual factors
        // through the frontier block, ||A y_i - θ_i y_i|| = ||R s_i[F]||.
        // INVARIANT: `blocks` is seeded non-empty at construction and every
        // restart/append keeps at least one entry, so `last()` never fails.
        let (f0, fwidth) = *solver
            .blocks
            .last()
            .expect("basis always holds at least one block");
        let mut resid = vec![0.0f64; m];
        if !fp.is_empty() {
            for (i, r) in resid.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for row in &fr {
                    let mut c = 0.0f64;
                    for (s, &rv) in row.iter().enumerate().take(fwidth) {
                        c += rv * he.eigenvectors[(f0 + s, i)];
                    }
                    acc += c * c;
                }
                *r = acc.sqrt();
            }
        }
        let nconv = (0..k.min(m)).filter(|&i| resid[i] <= inner_tol).count();

        let exhausted = fp.is_empty();
        if nconv >= k || exhausted || attempt == max_restarts {
            let (evals, y) = solver.ritz_vectors(&he, k)?;
            // True-residual verification: one block apply over the k
            // candidates; accept on the legacy ∞-norm contract.
            let mut x = vec![0.0; n * k];
            for (j, _) in evals.iter().enumerate() {
                let col = y.col(j);
                for i in 0..n {
                    x[i * k + j] = col[i];
                }
            }
            let ay = a.apply_block(&x, k, solver.threads)?;
            MATVECS.add(k as u64);
            let mut passed = 0usize;
            let mut all_ok = true;
            for (j, &ev) in evals.iter().enumerate() {
                let col = y.col(j);
                let mut worst = 0.0f64;
                for i in 0..n {
                    worst = worst.max((ay[i * k + j] - ev * col[i]).abs());
                }
                if worst <= tol {
                    passed += 1;
                } else {
                    all_ok = false;
                }
            }
            if all_ok || exhausted || attempt == max_restarts {
                RITZ_LOCKED.add(passed as u64);
                return Ok(SymmetricEig {
                    eigenvalues: evals,
                    eigenvectors: y,
                });
            }
        }

        RESTARTS.inc();
        solver.restart(&he, fp, fr)?;
    }
    // INVARIANT: the `attempt == max_restarts` arm above returns
    // unconditionally, so control cannot fall out of the loop.
    unreachable!("loop returns on its final attempt")
}

/// A frontier factor `(P, R)`: `P` is a column block continuing the basis,
/// `R` the coupling rows `H[new, cur]` that tie it to the current block.
type BlockFactor = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Expansion / restart state. `q` is the orthonormal basis, `h` the
/// projected operator (`H = Q^T A Q` on all recurrence-known entries),
/// `blocks` the contiguous block structure of `q` (after a restart the
/// kept Ritz prefix is the pseudo-block `(0, l)`).
struct Solver<'a, A: SymOp + ?Sized> {
    a: &'a A,
    n: usize,
    k: usize,
    threads: usize,
    anorm: f64,
    b_eff: usize,
    full_reorth: bool,
    m_max: usize,
    q: Vec<Vec<f64>>,
    h: Matrix,
    blocks: Vec<(usize, usize)>,
    /// ω-recurrence state: `omega[t]` bounds the inner products between the
    /// *latest* block and block `t`; `omega_prev` the same for the
    /// previous block.
    omega: Vec<f64>,
    omega_prev: Vec<f64>,
    /// `||B_{j-1}||_F` of the previous coupling block, feeding the
    /// recurrence.
    beta_hi_prev: f64,
    /// Simon's rule: after a triggered full pass, reorthogonalize the next
    /// step too.
    reorth_next: bool,
    /// Deterministic-start-vector counter (never reused, so replacement
    /// vectors differ from every earlier one).
    salt: usize,
    /// True only during the kernel-seeded first pass, where a collapsed
    /// residual block is provably the global optimum (see `block_step`).
    probe_collapse: bool,
}

impl<A: SymOp + ?Sized> Solver<'_, A> {
    /// A deterministic pseudo-random vector orthonormalized against the
    /// whole basis plus `extra`; `None` once the span is exhausted.
    fn fresh_vector(&mut self, extra: &[Vec<f64>]) -> Option<Vec<f64>> {
        for _ in 0..4 {
            self.salt += 1;
            let mut v = start_vector(self.n, self.salt);
            for _ in 0..2 {
                for b in self.q.iter().chain(extra.iter()) {
                    let c = vector::dot(b, &v);
                    if c != 0.0 {
                        vector::axpy(-c, b, &mut v);
                    }
                }
            }
            if vector::normalize(&mut v, 1e-8) > 1e-8 {
                return Some(v);
            }
        }
        None
    }

    /// One block step on the *last* block `C`: applies the operator, fills
    /// `H`'s diagonal block, forms the residual
    /// `Z = A C - C A_j - C_prev B^T`, reorthogonalizes (locally always;
    /// fully when the ω-recurrence demands it) and QR-factors
    /// `Z = P R`. Returns `(P, R)` — the caller appends it or uses it as
    /// the frontier residual factor. Rank-deficient columns are repaired
    /// with fresh fully-deflated directions (zero coupling row, which is
    /// exact to rounding because the repair vector is orthogonal to the
    /// whole basis) or dropped once the span is exhausted.
    fn block_step(&mut self) -> Result<BlockFactor> {
        // INVARIANT: `blocks` is seeded non-empty at construction and every
        // restart/append keeps at least one entry, so `last()` never fails.
        let (c0, w) = *self
            .blocks
            .last()
            .expect("basis always holds at least one block");
        let n = self.n;

        // One operator traversal for the whole block.
        let mut x = vec![0.0; n * w];
        for s in 0..w {
            let col = &self.q[c0 + s];
            for (i, &ci) in col.iter().enumerate() {
                x[i * w + s] = ci;
            }
        }
        let ac = self.a.apply_block(&x, w, self.threads)?;
        MATVECS.add(w as u64);
        let mut z: Vec<Vec<f64>> = (0..w)
            .map(|s| (0..n).map(|i| ac[i * w + s]).collect())
            .collect();

        // Diagonal block A_j = C^T (A C), filled symmetrically.
        for s in 0..w {
            for t in 0..=s {
                let v = vector::dot(&self.q[c0 + t], &z[s]);
                self.h[(c0 + t, c0 + s)] = v;
                self.h[(c0 + s, c0 + t)] = v;
            }
        }

        // Three-term block recurrence + one local reorthogonalization pass
        // against prev ∪ current (coefficients are rounding-level there, so
        // they are discarded rather than folded into H).
        let prev = if self.blocks.len() >= 2 {
            Some(self.blocks[self.blocks.len() - 2])
        } else {
            None
        };
        for s in 0..w {
            let zs = &mut z[s];
            for t in 0..w {
                let c = self.h[(c0 + t, c0 + s)];
                if c != 0.0 {
                    vector::axpy(-c, &self.q[c0 + t], zs);
                }
            }
            if let Some((p0, pw)) = prev {
                for t in 0..pw {
                    let c = self.h[(c0 + s, p0 + t)];
                    if c != 0.0 {
                        vector::axpy(-c, &self.q[p0 + t], zs);
                    }
                }
            }
            let lo = prev.map_or(c0, |(p0, _)| p0);
            for t in lo..c0 + w {
                let c = vector::dot(&self.q[t], zs);
                if c != 0.0 {
                    vector::axpy(-c, &self.q[t], zs);
                }
            }
        }

        // Modified Gram–Schmidt QR with rank repair.
        let rank_tol = 1e-11 * self.anorm;

        // Seeded-probe short-circuit: on the kernel-seeded first pass
        // (`probe_collapse`, set only when the seeds already span the k
        // requested directions), a residual block at rounding level means
        // the seed span is A-invariant — and since the seeds are kernel
        // vectors of a PSD operator, its k smallest Ritz pairs are the
        // global optimum. Repairing all w deficient columns (each fresh
        // vector deflated against the full basis — the single most
        // expensive non-apply step) buys nothing: hand back one fresh
        // probe direction with an exact zero coupling row and let the
        // caller's true-residual verification accept. Everywhere else the
        // full-width repair below must run: a collapsed random-start block
        // also spans an invariant subspace, but possibly the *wrong* one
        // (two-eigenvalue operators saturate span{v, Av} instantly), and
        // injecting w fresh directions per collapse is what digs out the
        // remaining copies of a degenerate eigenvalue fast enough.
        if self.probe_collapse
            && self.q.len() >= self.k
            && z.iter().all(|zs| vector::norm2(zs) <= rank_tol)
        {
            return match self.fresh_vector(&[]) {
                Some(f) => Ok((vec![f], vec![vec![0.0; w]])),
                // The whole space is spanned — genuine exhaustion.
                None => Ok((Vec::new(), Vec::new())),
            };
        }

        let mut p: Vec<Vec<f64>> = Vec::new();
        let mut r: Vec<Vec<f64>> = Vec::new();
        let mut beta_lo = f64::INFINITY;
        let mut repaired = false;
        for s in 0..w {
            let mut zs = std::mem::take(&mut z[s]);
            for (t, pt) in p.iter().enumerate() {
                let c = vector::dot(pt, &zs);
                r[t][s] = c;
                if c != 0.0 {
                    vector::axpy(-c, pt, &mut zs);
                }
            }
            let nrm = vector::norm2(&zs);
            if nrm > rank_tol {
                vector::scale(&mut zs, 1.0 / nrm);
                let mut row = vec![0.0; w];
                row[s] = nrm;
                r.push(row);
                p.push(zs);
                beta_lo = beta_lo.min(nrm);
            } else if let Some(fresh) = self.fresh_vector(&p) {
                r.push(vec![0.0; w]);
                p.push(fresh);
                repaired = true;
            }
            // else: span exhausted — drop the column.
        }
        let beta_hi = r
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();

        // ω-recurrence update (Simon): bound the new block's inner products
        // with every block at least two steps back; prev and self are
        // locally orthogonalized, hence at ε.
        let eps = f64::EPSILON;
        let nb = self.blocks.len();
        let blo = if beta_lo.is_finite() {
            beta_lo.max(eps * self.anorm)
        } else {
            eps * self.anorm
        };
        let mut omega_new = vec![eps; nb + 1];
        let mut trigger = false;
        for t in 0..nb.saturating_sub(1) {
            let est = (2.0 * self.anorm * self.omega[t]
                + self.beta_hi_prev * self.omega_prev[t]
                + eps * self.anorm * (w as f64).sqrt())
                / blo;
            let est = est.clamp(eps, 1.0);
            omega_new[t] = est;
            if est > SQRT_EPS {
                trigger = true;
            }
        }

        if !p.is_empty() && (trigger || self.reorth_next || repaired || self.full_reorth) {
            REORTH_PASSES.inc();
            let mut kept: Vec<Vec<f64>> = Vec::with_capacity(p.len());
            let mut kept_rows: Vec<Vec<f64>> = Vec::with_capacity(r.len());
            for (mut v, row) in p.into_iter().zip(r) {
                for b in self.q.iter().chain(kept.iter()) {
                    let c = vector::dot(b, &v);
                    if c != 0.0 {
                        vector::axpy(-c, b, &mut v);
                    }
                }
                let nrm = vector::norm2(&v);
                if nrm > 0.5 {
                    vector::scale(&mut v, 1.0 / nrm);
                    kept.push(v);
                    kept_rows.push(row);
                } else if let Some(fresh) = self.fresh_vector(&kept) {
                    // The column collapsed onto the existing basis: its
                    // claimed couplings are stale, so the replacement
                    // carries a zero row.
                    kept.push(fresh);
                    kept_rows.push(vec![0.0; w]);
                }
                // else: drop — the span is exhausted.
            }
            p = kept;
            r = kept_rows;
            for o in omega_new.iter_mut() {
                *o = eps;
            }
            self.reorth_next = trigger && !self.full_reorth;
        } else {
            self.reorth_next = false;
        }

        self.omega_prev = std::mem::replace(&mut self.omega, omega_new);
        self.omega_prev.push(eps);
        self.beta_hi_prev = beta_hi;
        Ok((p, r))
    }

    /// Appends `(P, R)` as a new block: basis vectors plus the coupling
    /// rows `H[new, cur] = R`.
    fn append_block(&mut self, p: Vec<Vec<f64>>, r: Vec<Vec<f64>>) {
        let m = self.q.len();
        // INVARIANT: `blocks` is seeded non-empty at construction and every
        // restart/append keeps at least one entry, so `last()` never fails.
        let (c0, _) = *self
            .blocks
            .last()
            .expect("basis always holds at least one block");
        let wnew = p.len();
        for (t, (pt, row)) in p.into_iter().zip(r).enumerate() {
            for (s, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    self.h[(m + t, c0 + s)] = v;
                    self.h[(c0 + s, m + t)] = v;
                }
            }
            self.q.push(pt);
        }
        self.blocks.push((m, wnew));
    }

    /// Grows the basis to `m_max` and returns the frontier residual factor
    /// `(P, R)` (empty when the Krylov space is exhausted — every Ritz
    /// residual is then at rounding level).
    fn expand(&mut self) -> Result<BlockFactor> {
        loop {
            let m = self.q.len();
            if m >= self.m_max {
                return self.block_step();
            }
            let (mut p, mut r) = self.block_step()?;
            if p.is_empty() {
                return Ok((p, r));
            }
            let room = self.m_max - m;
            if p.len() > room {
                if m >= self.k {
                    // Enough basis for Rayleigh–Ritz: use (P, R) as the
                    // frontier instead of truncating it (truncation drops
                    // residual rows, which would bias the estimates).
                    return Ok((p, r));
                }
                p.truncate(room);
                r.truncate(room);
            }
            self.append_block(p, r);
        }
    }

    /// Assembles the first `k` Ritz vectors `Y = Q S_k` and polishes them
    /// to orthonormality (one MGS sweep — `S` is orthonormal and `Q`
    /// semi-orthogonal, so corrections are rounding-level).
    fn ritz_vectors(&self, he: &SymmetricEig, k: usize) -> Result<(Vec<f64>, Matrix)> {
        let m = self.q.len();
        let kk = k.min(m);
        let qrefs: Vec<&[f64]> = self.q.iter().map(|v| v.as_slice()).collect();
        let qmat = Matrix::from_columns(&qrefs)?;
        let mut smat = Matrix::zeros(m, kk);
        for j in 0..kk {
            for i in 0..m {
                smat[(i, j)] = he.eigenvectors[(i, j)];
            }
        }
        let y = qmat.matmul_threaded(&smat, self.threads)?;
        let mut cols: Vec<Vec<f64>> = (0..kk).map(|j| y.col(j).to_vec()).collect();
        for j in 0..kk {
            let (done, rest) = cols.split_at_mut(j);
            let v = &mut rest[0];
            for d in done.iter() {
                let c = vector::dot(d, v);
                if c != 0.0 {
                    vector::axpy(-c, d, v);
                }
            }
            vector::normalize(v, 1e-300);
        }
        let colrefs: Vec<&[f64]> = cols.iter().map(|v| v.as_slice()).collect();
        Ok((
            he.eigenvalues[..kk].to_vec(),
            Matrix::from_columns(&colrefs)?,
        ))
    }

    /// Thick restart: retain the `l` smallest Ritz pairs plus the frontier
    /// block. The new basis is `[Y_l | P]` with
    /// `H = [[Θ, B^T], [B, ·]]`, `B = R S_l` restricted to the frontier
    /// rows — an exact compressed factorization, so no accuracy is lost
    /// across the restart. The frontier block is padded back to full
    /// width with fresh fully-deflated vectors (zero coupling).
    fn restart(&mut self, he: &SymmetricEig, fp: Vec<Vec<f64>>, fr: Vec<Vec<f64>>) -> Result<()> {
        let m = self.q.len();
        // INVARIANT: `blocks` is seeded non-empty at construction and every
        // restart/append keeps at least one entry, so `last()` never fails.
        let (f0, fwidth) = *self
            .blocks
            .last()
            .expect("basis always holds at least one block");
        let l = (self.k + self.b_eff)
            .min(self.m_max.saturating_sub(self.b_eff))
            .min(m)
            .max(1);

        let qrefs: Vec<&[f64]> = self.q.iter().map(|v| v.as_slice()).collect();
        let qmat = Matrix::from_columns(&qrefs)?;
        let mut smat = Matrix::zeros(m, l);
        for j in 0..l {
            for i in 0..m {
                smat[(i, j)] = he.eigenvectors[(i, j)];
            }
        }
        let y = qmat.matmul_threaded(&smat, self.threads)?;

        let wf = fp.len();
        let mut coupling = vec![vec![0.0f64; l]; wf];
        for (t, row) in fr.iter().enumerate() {
            for (j, slot) in coupling[t].iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (s, &rv) in row.iter().enumerate().take(fwidth) {
                    acc += rv * he.eigenvectors[(f0 + s, j)];
                }
                *slot = acc;
            }
        }

        self.q.clear();
        for j in 0..l {
            self.q.push(y.col(j).to_vec());
        }
        self.h = Matrix::zeros(self.m_max, self.m_max);
        for (j, &ev) in he.eigenvalues.iter().enumerate().take(l) {
            self.h[(j, j)] = ev;
        }
        for (t, row) in coupling.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                self.h[(l + t, j)] = v;
                self.h[(j, l + t)] = v;
            }
        }
        for v in fp {
            self.q.push(v);
        }
        let target = (l + self.b_eff).min(self.m_max);
        while self.q.len() < target {
            match self.fresh_vector(&[]) {
                Some(v) => self.q.push(v),
                None => break,
            }
        }
        let w1 = self.q.len() - l;
        if w1 == 0 {
            return Err(LinalgError::InvalidArgument(
                "thick restart could not form a frontier block",
            ));
        }
        self.blocks = vec![(0, l), (l, w1)];
        self.omega = vec![f64::EPSILON, f64::EPSILON];
        self.omega_prev = vec![f64::EPSILON, f64::EPSILON];
        self.beta_hi_prev = fr
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();
        self.reorth_next = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    /// Block-diagonal unnormalized Laplacian of `blocks` complete graphs.
    fn component_laplacian(blocks: usize, bs: usize) -> Matrix {
        let n = blocks * bs;
        let mut a = Matrix::zeros(n, n);
        for b in 0..blocks {
            let off = b * bs;
            for i in 0..bs {
                for j in 0..bs {
                    a[(off + i, off + j)] = if i == j { (bs - 1) as f64 } else { -1.0 };
                }
            }
        }
        a
    }

    #[test]
    fn kernel_seeds_capture_degenerate_zero_first_pass() {
        // 7-fold zero eigenvalue, seeded with the exact component
        // indicators: every copy must come out, with restarts == 0 extra
        // work beyond one expansion (we only assert correctness here; the
        // counter deltas are exercised by the bench harness).
        let blocks = 7;
        let bs = 5;
        let a = component_laplacian(blocks, bs);
        let n = blocks * bs;
        let seeds: Vec<Vec<f64>> = (0..blocks)
            .map(|b| {
                let mut v = vec![0.0; n];
                for i in 0..bs {
                    v[b * bs + i] = 1.0;
                }
                v
            })
            .collect();
        let opts = ThickRestartOptions {
            seeds,
            ..ThickRestartOptions::default()
        };
        let out = thick_restart_smallest(&a, blocks + 2, &opts).unwrap();
        for i in 0..blocks {
            assert!(
                out.eigenvalues[i].abs() < 1e-8,
                "eigenvalue {i} = {}",
                out.eigenvalues[i]
            );
        }
        assert!((out.eigenvalues[blocks] - bs as f64).abs() < 1e-7);
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let a = random_symmetric(80, 11);
        let base = thick_restart_smallest(&a, 6, &ThickRestartOptions::default()).unwrap();
        for threads in [2usize, 4] {
            let opts = ThickRestartOptions {
                threads,
                ..ThickRestartOptions::default()
            };
            let out = thick_restart_smallest(&a, 6, &opts).unwrap();
            assert_eq!(out.eigenvalues.len(), base.eigenvalues.len());
            for (x, y) in out.eigenvalues.iter().zip(&base.eigenvalues) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for j in 0..6 {
                for (x, y) in out.eigenvectors.col(j).iter().zip(base.eigenvectors.col(j)) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn explicit_block_options_still_converge() {
        let a = random_symmetric(50, 99);
        let dense = eigh(&a).unwrap();
        for block in [1usize, 3, 16] {
            let opts = ThickRestartOptions {
                block,
                ..ThickRestartOptions::default()
            };
            let out = thick_restart_smallest(&a, 4, &opts).unwrap();
            for i in 0..4 {
                assert!(
                    (dense.eigenvalues[i] - out.eigenvalues[i]).abs() < 1e-7,
                    "block {block}, eigenvalue {i}: {} vs {}",
                    dense.eigenvalues[i],
                    out.eigenvalues[i]
                );
            }
        }
    }

    #[test]
    fn seed_validation_rejects_bad_length() {
        let a = Matrix::identity(6);
        let opts = ThickRestartOptions {
            seeds: vec![vec![1.0; 4]],
            ..ThickRestartOptions::default()
        };
        assert!(thick_restart_smallest(&a, 2, &opts).is_err());
    }
}
