//! Direct linear solvers: LU with partial pivoting and Cholesky.
//!
//! Used by the ADMM Lasso backend (factor-once, solve-many) and by ridge
//! sub-problems in the elastic-net solver.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU factorization with partial pivoting, `P A = L U`.
#[must_use = "dropping an LU factorization discards the work"]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot collapses to (numerical) zero.
    pub fn new(a: Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, m),
                got: (m, n),
            });
        }
        let mut lu = a;
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        for k in 0..n {
            // Pivot search in column k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-14 * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let f = lu[(i, k)] / pivot;
                lu[(i, k)] = f;
                if f != 0.0 {
                    for j in k + 1..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= f * u;
                    }
                }
            }
        }
        Ok(Self { lu, piv, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix. Only the lower triangle of the input is read.
#[must_use = "dropping a Cholesky factorization discards the work"]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`. Returns [`LinalgError::NotPositiveDefinite`] when a
    /// diagonal pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (m, m),
                got: (m, n),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// Solves `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = Lu::new(a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_needs_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(Lu::new(a).is_err());
    }

    #[test]
    fn lu_determinant() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        assert!((Lu::new(a).unwrap().det() + 6.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[8.0, 7.0]).unwrap();
        // A x = b check.
        assert!((4.0 * x[0] + 2.0 * x[1] - 8.0).abs() < 1e-12);
        assert!((2.0 * x[0] + 3.0 * x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[&[6.0, 3.0, 1.0], &[3.0, 4.0, 2.0], &[1.0, 2.0, 5.0]]).unwrap();
        let l = Cholesky::new(&a).unwrap().l().clone();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn solvers_reject_bad_rhs_length() {
        let a = Matrix::identity(3);
        assert!(Lu::new(a.clone()).unwrap().solve(&[1.0]).is_err());
        assert!(Cholesky::new(&a).unwrap().solve(&[1.0]).is_err());
    }
}
