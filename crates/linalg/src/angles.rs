//! Principal angles and the paper's subspace-affinity measure.
//!
//! Definition 5 of the paper:
//! `aff(S_k, S_l) = sqrt(cos^2 φ^(1) + ... + cos^2 φ^(d_k ∧ d_l))`
//! where `φ^(i)` are the canonical (principal) angles between the two
//! subspaces. With orthonormal bases `U_k`, `U_l`, the cosines of the
//! principal angles are the singular values of `U_k^T U_l`, so
//! `aff = ||U_k^T U_l||_F`.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::svd::svd_gram;

/// Cosines of the principal angles between two subspaces given orthonormal
/// bases (descending order). Values are clamped into `[0, 1]`.
pub fn principal_angle_cosines(u_k: &Matrix, u_l: &Matrix) -> Result<Vec<f64>> {
    let m = u_k.tr_matmul(u_l)?;
    let svd = svd_gram(&m)?;
    Ok(svd.s.iter().map(|&s| s.clamp(0.0, 1.0)).collect())
}

/// Principal angles in radians (ascending, since cosines are descending).
pub fn principal_angles(u_k: &Matrix, u_l: &Matrix) -> Result<Vec<f64>> {
    Ok(principal_angle_cosines(u_k, u_l)?
        .iter()
        .map(|c| c.acos())
        .collect())
}

/// The paper's affinity between subspaces (Definition 5):
/// `||U_k^T U_l||_F`, the root-sum-square of principal-angle cosines.
///
/// Ranges from `0` (orthogonal subspaces) to `sqrt(min(d_k, d_l))`
/// (one subspace contained in the other).
pub fn subspace_affinity(u_k: &Matrix, u_l: &Matrix) -> Result<f64> {
    let m = u_k.tr_matmul(u_l)?;
    Ok(m.fro_norm())
}

/// Normalized affinity `aff / sqrt(min(d_k, d_l))` in `[0, 1]` — the quantity
/// the paper's semi-random conditions bound (`aff / sqrt(d_k ∧ d_l)`).
pub fn normalized_affinity(u_k: &Matrix, u_l: &Matrix) -> Result<f64> {
    let d = u_k.cols().min(u_l.cols());
    if d == 0 {
        return Ok(0.0);
    }
    Ok(subspace_affinity(u_k, u_l)? / (d as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_orthonormal_basis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn axis_basis(n: usize, axes: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(n, axes.len());
        for (j, &a) in axes.iter().enumerate() {
            m[(a, j)] = 1.0;
        }
        m
    }

    #[test]
    fn orthogonal_subspaces_have_zero_affinity() {
        let u1 = axis_basis(6, &[0, 1]);
        let u2 = axis_basis(6, &[2, 3]);
        assert!(subspace_affinity(&u1, &u2).unwrap() < 1e-12);
        let cos = principal_angle_cosines(&u1, &u2).unwrap();
        assert!(cos.iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn identical_subspaces_have_maximal_affinity() {
        let u = axis_basis(5, &[0, 1, 2]);
        let aff = subspace_affinity(&u, &u).unwrap();
        assert!((aff - 3.0f64.sqrt()).abs() < 1e-12);
        assert!((normalized_affinity(&u, &u).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_direction_counts_once() {
        // span{e0, e1} vs span{e1, e2}: one zero angle, one right angle.
        let u1 = axis_basis(4, &[0, 1]);
        let u2 = axis_basis(4, &[1, 2]);
        let cos = principal_angle_cosines(&u1, &u2).unwrap();
        assert!((cos[0] - 1.0).abs() < 1e-12);
        assert!(cos[1].abs() < 1e-12);
        assert!((subspace_affinity(&u1, &u2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forty_five_degree_planes() {
        // Line at 45 degrees to e0 inside the (e0, e1) plane.
        let u1 = axis_basis(3, &[0]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let u2 = Matrix::from_columns(&[&[s, s, 0.0]]).unwrap();
        let cos = principal_angle_cosines(&u1, &u2).unwrap();
        assert!((cos[0] - s).abs() < 1e-12);
        let ang = principal_angles(&u1, &u2).unwrap();
        assert!((ang[0] - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn affinity_is_symmetric_and_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let u1 = random_orthonormal_basis(&mut rng, 12, 3);
            let u2 = random_orthonormal_basis(&mut rng, 12, 5);
            let a12 = subspace_affinity(&u1, &u2).unwrap();
            let a21 = subspace_affinity(&u2, &u1).unwrap();
            assert!((a12 - a21).abs() < 1e-10);
            assert!(a12 >= 0.0 && a12 <= 3.0f64.sqrt() + 1e-10);
            let na = normalized_affinity(&u1, &u2).unwrap();
            assert!((0.0..=1.0 + 1e-12).contains(&na));
        }
    }
}
