//! Property-based tests for the dense matrix algebra: the ring/transpose
//! identities every downstream kernel silently relies on.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_linalg::{vector, Matrix};
use proptest::prelude::*;

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_col_major(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_of_product((a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, k, n)| {
        (matrix(m..m + 1, k..k + 1), matrix(k..k + 1, n..n + 1))
    })) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.sub(&bt_at).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn matvec_agrees_with_matmul(a in matrix(1..6, 1..6)) {
        let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 - 1.5).collect();
        let xs = Matrix::from_col_major(a.cols(), 1, x.clone()).unwrap();
        let via_mm = a.matmul(&xs).unwrap();
        let via_mv = a.matvec(&x).unwrap();
        for (i, &v) in via_mv.iter().enumerate() {
            prop_assert!((via_mm[(i, 0)] - v).abs() < 1e-10);
        }
    }

    #[test]
    fn gram_equals_tr_matmul_self(a in matrix(1..6, 1..6)) {
        let g = a.gram();
        let explicit = a.tr_matmul(&a).unwrap();
        prop_assert!(g.sub(&explicit).unwrap().max_abs() < 1e-10);
        // Gram is PSD: x^T G x >= 0 for a probe vector.
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let gx = g.matvec(&x).unwrap();
        prop_assert!(vector::dot(&x, &gx) >= -1e-9);
    }

    #[test]
    fn add_sub_inverse(a in matrix(1..6, 1..6)) {
        let b = a.clone();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        prop_assert!(back.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn hcat_select_round_trip((a, b) in (1usize..5, 1usize..4, 1usize..4).prop_flat_map(|(r, c1, c2)| {
        (matrix(r..r + 1, c1..c1 + 1), matrix(r..r + 1, c2..c2 + 1))
    })) {
        let cat = Matrix::hcat(&[&a, &b]).unwrap();
        let left: Vec<usize> = (0..a.cols()).collect();
        let right: Vec<usize> = (a.cols()..a.cols() + b.cols()).collect();
        prop_assert_eq!(cat.select_columns(&left), a);
        prop_assert_eq!(cat.select_columns(&right), b);
    }

    #[test]
    fn norm_triangle_inequality((x, y) in (1usize..12).prop_flat_map(|n| {
        (proptest::collection::vec(-5.0f64..5.0, n), proptest::collection::vec(-5.0f64..5.0, n))
    })) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
        // Cauchy-Schwarz.
        prop_assert!(vector::dot(&x, &y).abs() <= vector::norm2(&x) * vector::norm2(&y) + 1e-9);
    }
}
