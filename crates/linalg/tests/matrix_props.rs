//! Property-based tests for the dense matrix algebra: the ring/transpose
//! identities every downstream kernel silently relies on.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_linalg::{vector, Matrix};
use proptest::prelude::*;

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_col_major(r, c, data).unwrap())
    })
}

/// Textbook ijk reference product, deliberately unblocked.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// Worst absolute entry difference; 0 for two empty matrices.
fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let mut worst = 0.0f64;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        worst = worst.max((x - y).abs());
    }
    worst
}

/// Deterministic filler large enough to cross every block boundary
/// (BLOCK_TILE = 32, BLOCK_J = 64, BLOCK_K = 128, BLOCK_ROWS = 256).
fn big(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for j in 0..cols {
        for i in 0..rows {
            m[(i, j)] = ((i * 31 + j * 7 + 3) % 17) as f64 * 0.25 - 2.0;
        }
    }
    m
}

#[test]
fn blocked_kernels_cross_block_boundaries() {
    // 300 rows > BLOCK_ROWS, 70/75 cols > BLOCK_TILE and > BLOCK_J is not
    // required (the last partial block is the interesting case anyway).
    let a = big(300, 70);
    let b = big(300, 75);
    let g = a.gram();
    let g_naive = naive_matmul(&a.transpose(), &a);
    assert!(
        max_abs_diff(&g, &g_naive) < 1e-7,
        "{}",
        max_abs_diff(&g, &g_naive)
    );
    let t = a.tr_matmul(&b).unwrap();
    let t_naive = naive_matmul(&a.transpose(), &b);
    assert!(max_abs_diff(&t, &t_naive) < 1e-7);
    let p = a.transpose().matmul(&b).unwrap();
    assert!(max_abs_diff(&p, &t_naive) < 1e-7);
    // Thread count never changes a bit, even across partial blocks.
    for threads in [2, 3, 8] {
        assert_eq!(a.gram_threaded(threads).as_slice(), g.as_slice());
        assert_eq!(
            a.tr_matmul_threaded(&b, threads).unwrap().as_slice(),
            t.as_slice()
        );
        assert_eq!(
            a.transpose()
                .matmul_threaded(&b, threads)
                .unwrap()
                .as_slice(),
            p.as_slice()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_of_product((a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, k, n)| {
        (matrix(m..m + 1, k..k + 1), matrix(k..k + 1, n..n + 1))
    })) {
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab_t.sub(&bt_at).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn matvec_agrees_with_matmul(a in matrix(1..6, 1..6)) {
        let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 - 1.5).collect();
        let xs = Matrix::from_col_major(a.cols(), 1, x.clone()).unwrap();
        let via_mm = a.matmul(&xs).unwrap();
        let via_mv = a.matvec(&x).unwrap();
        for (i, &v) in via_mv.iter().enumerate() {
            prop_assert!((via_mm[(i, 0)] - v).abs() < 1e-10);
        }
    }

    #[test]
    fn gram_equals_tr_matmul_self(a in matrix(1..6, 1..6)) {
        let g = a.gram();
        let explicit = a.tr_matmul(&a).unwrap();
        prop_assert!(g.sub(&explicit).unwrap().max_abs() < 1e-10);
        // Gram is PSD: x^T G x >= 0 for a probe vector.
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let gx = g.matvec(&x).unwrap();
        prop_assert!(vector::dot(&x, &gx) >= -1e-9);
    }

    #[test]
    fn add_sub_inverse(a in matrix(1..6, 1..6)) {
        let b = a.clone();
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        prop_assert!(back.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn hcat_select_round_trip((a, b) in (1usize..5, 1usize..4, 1usize..4).prop_flat_map(|(r, c1, c2)| {
        (matrix(r..r + 1, c1..c1 + 1), matrix(r..r + 1, c2..c2 + 1))
    })) {
        let cat = Matrix::hcat(&[&a, &b]).unwrap();
        let left: Vec<usize> = (0..a.cols()).collect();
        let right: Vec<usize> = (a.cols()..a.cols() + b.cols()).collect();
        prop_assert_eq!(cat.select_columns(&left), a);
        prop_assert_eq!(cat.select_columns(&right), b);
    }

    #[test]
    fn blocked_matmul_matches_naive((a, b) in (0usize..7, 0usize..7, 0usize..7).prop_flat_map(|(m, k, n)| {
        // Degenerate shapes on purpose: empty dimensions and 1-column
        // matrices must round-trip the blocked kernel too.
        (matrix(m..m + 1, k..k + 1), matrix(k..k + 1, n..n + 1))
    })) {
        let blocked = a.matmul(&b).unwrap();
        prop_assert!(max_abs_diff(&blocked, &naive_matmul(&a, &b)) < 1e-12);
        // Threading must not change a single bit.
        for threads in [2, 4] {
            let t = a.matmul_threaded(&b, threads).unwrap();
            prop_assert_eq!(t.as_slice(), blocked.as_slice());
        }
    }

    #[test]
    fn blocked_gram_and_syrk_match_naive(a in matrix(0..7, 0..7)) {
        let naive = naive_matmul(&a.transpose(), &a);
        let g = a.gram();
        let s = a.syrk();
        prop_assert!(max_abs_diff(&g, &naive) < 1e-12);
        prop_assert!(max_abs_diff(&s, &naive) < 1e-12);
        // gram IS syrk, and both are exactly symmetric by construction.
        prop_assert_eq!(g.as_slice(), s.as_slice());
        for i in 0..g.rows() {
            for j in 0..i {
                prop_assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
        for threads in [2, 4] {
            prop_assert_eq!(a.gram_threaded(threads).as_slice(), g.as_slice());
        }
    }

    #[test]
    fn blocked_tr_matmul_matches_naive((a, b) in (0usize..7, 0usize..6, 0usize..6).prop_flat_map(|(d, m, n)| {
        (matrix(d..d + 1, m..m + 1), matrix(d..d + 1, n..n + 1))
    })) {
        let blocked = a.tr_matmul(&b).unwrap();
        prop_assert!(max_abs_diff(&blocked, &naive_matmul(&a.transpose(), &b)) < 1e-12);
        for threads in [2, 4] {
            let t = a.tr_matmul_threaded(&b, threads).unwrap();
            prop_assert_eq!(t.as_slice(), blocked.as_slice());
        }
    }

    #[test]
    fn norm_triangle_inequality((x, y) in (1usize..12).prop_flat_map(|n| {
        (proptest::collection::vec(-5.0f64..5.0, n), proptest::collection::vec(-5.0f64..5.0, n))
    })) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
        // Cauchy-Schwarz.
        prop_assert!(vector::dot(&x, &y).abs() <= vector::norm2(&x) * vector::norm2(&y) + 1e-9);
    }
}
