//! Real-process hierarchical fleet over TCP: one `fedsc-server` root, two
//! `fedsc-agg` mid-tier aggregators, eight `fedsc-device` leaves — eleven
//! OS processes on 127.0.0.1.
//!
//! The round runs twice, telemetry off and telemetry on, and the test
//! pins the observability hard invariant from both sides:
//!
//! * **Bitwise-identical output** — every device's predictions match
//!   between the two runs; attaching trace contexts, clock syncs, and
//!   in-band metric envelopes must not perturb the clustering.
//! * **Byte-exact accounting** — each parent's uplink total grows by
//!   exactly its reported `envelope_bytes`, and its downlink total by
//!   exactly the 16-byte timed-handshake ack surplus per child
//!   connection. Nothing else moves.
//! * **One merged trace at the root** — the fleet trace carries a `pid`
//!   lane per process, passes the cross-process causality validator
//!   (every remote parent resolves, no child starts before its parent
//!   after clock-offset correction), and the fleet metrics snapshot
//!   contains work the root never did itself (the devices' local SSC).

use fedsc::demo::demo_hier_fixture;
use fedsc_clustering::clustering_accuracy;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_fedsc-server");
const AGG_BIN: &str = env!("CARGO_BIN_EXE_fedsc-agg");
const DEVICE_BIN: &str = env!("CARGO_BIN_EXE_fedsc-device");

const SEED: u64 = 7;
const DEVICES: usize = 8;
const AGGS: usize = 2;
const FAN: usize = DEVICES / AGGS;
const CLUSTERS: usize = 3;
/// A timed handshake ack carries 16 more payload bytes than a plain one;
/// frame overhead is identical, so that is the whole downlink surplus a
/// parent pays per syncing child connection.
const TIMED_ACK_SURPLUS: u64 = 16;

/// One completed fleet round's observable surface.
struct FleetRun {
    /// Per-device predictions, indexed by device id.
    predictions: Vec<Vec<usize>>,
    root_uplink: u64,
    root_downlink: u64,
    root_envelope: u64,
    agg_uplink: Vec<u64>,
    agg_downlink: Vec<u64>,
    agg_envelope: Vec<u64>,
}

/// Spawns a listener binary and scrapes its `listening <addr>` banner.
fn spawn_listener(bin: &str, args: &[String]) -> (Child, String) {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner from {bin}: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// Waits for a child, asserts success, and returns its full stdout.
fn finish(child: Child, who: &str) -> String {
    let out = child.wait_with_output().expect("child exits");
    assert!(
        out.status.success(),
        "{who} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the number following `key` on any line of `summary`
/// (`uplink_bytes 2464 downlink_bytes 448` style).
fn field(summary: &str, key: &str) -> u64 {
    for line in summary.lines() {
        let mut it = line.split_whitespace();
        while let Some(tok) = it.next() {
            if tok == key {
                let v = it.next().unwrap_or_else(|| panic!("{key} has no value"));
                return v.parse().unwrap_or_else(|_| panic!("bad {key}: {v}"));
            }
        }
    }
    panic!("no {key} in summary:\n{summary}");
}

/// First counter value for `name` in a metrics JSON export.
fn counter_in(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let pos = json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} missing in metrics:\n{json}"));
    json[pos + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

fn run_fleet(telemetry: bool, dir: &Path) -> FleetRun {
    let common = |extra: &mut Vec<String>| {
        extra.extend(["--clusters".into(), CLUSTERS.to_string()]);
        extra.extend(["--seed".into(), SEED.to_string()]);
        extra.push("--hier".into());
        if telemetry {
            extra.push("--telemetry".into());
        }
    };

    // Root sees the two aggregators as its fan-in of "devices".
    let mut root_args: Vec<String> = vec!["--devices".into(), AGGS.to_string()];
    common(&mut root_args);
    if telemetry {
        for (flag, file) in [
            ("--fleet-trace-out", "fleet-trace.json"),
            ("--fleet-metrics-out", "fleet-metrics.json"),
            ("--metrics-out", "root-metrics.json"),
        ] {
            root_args.push(flag.into());
            root_args.push(dir.join(file).to_str().expect("utf-8 path").into());
        }
    }
    let (root, root_addr) = spawn_listener(SERVER_BIN, &root_args);

    let aggs: Vec<(Child, String)> = (0..AGGS)
        .map(|p| {
            let mut args: Vec<String> = vec![
                "--addr".into(),
                root_addr.clone(),
                "--node".into(),
                p.to_string(),
                "--tier".into(),
                "0".into(),
                "--children".into(),
                FAN.to_string(),
                "--devices".into(),
                DEVICES.to_string(),
            ];
            common(&mut args);
            spawn_listener(AGG_BIN, &args)
        })
        .collect();

    let devices: Vec<Child> = (0..DEVICES)
        .map(|z| {
            let p = z / FAN;
            let mut args: Vec<String> = vec![
                "--addr".into(),
                aggs[p].1.clone(),
                "--device".into(),
                z.to_string(),
                "--link-id".into(),
                (z % FAN).to_string(),
                "--parent".into(),
                p.to_string(),
                "--devices".into(),
                DEVICES.to_string(),
            ];
            common(&mut args);
            Command::new(DEVICE_BIN)
                .args(&args)
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn fedsc-device")
        })
        .collect();

    let predictions: Vec<Vec<usize>> = devices
        .into_iter()
        .enumerate()
        .map(|(z, child)| {
            let stdout = finish(child, &format!("device {z}"));
            let line = stdout
                .lines()
                .find(|l| l.starts_with("device "))
                .unwrap_or_else(|| panic!("no predictions line in {stdout:?}"));
            let csv = line.rsplit(' ').next().expect("csv field");
            csv.split(',')
                .map(|t| t.parse().expect("prediction id"))
                .collect()
        })
        .collect();

    let mut agg_uplink = Vec::new();
    let mut agg_downlink = Vec::new();
    let mut agg_envelope = Vec::new();
    for (p, (child, _)) in aggs.into_iter().enumerate() {
        let summary = finish(child, &format!("agg {p}"));
        assert!(
            summary.contains(&format!("agg {p} reps ")),
            "agg {p} summary missing: {summary}"
        );
        agg_uplink.push(field(&summary, "uplink_bytes"));
        agg_downlink.push(field(&summary, "downlink_bytes"));
        agg_envelope.push(field(&summary, "envelope_bytes"));
    }

    let summary = finish(root, "root");
    assert!(
        summary.contains("excluded -"),
        "clean fleet run excluded children: {summary}"
    );
    FleetRun {
        predictions,
        root_uplink: field(&summary, "uplink_bytes"),
        root_downlink: field(&summary, "downlink_bytes"),
        root_envelope: field(&summary, "envelope_bytes"),
        agg_uplink,
        agg_downlink,
        agg_envelope,
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedsc-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn fleet_round_merges_telemetry_without_perturbing_the_clustering() {
    let dir = temp_dir();
    let off = run_fleet(false, &dir);
    let on = run_fleet(true, &dir);

    // ---- Bitwise identity: telemetry must not touch the labels. ----
    assert_eq!(
        on.predictions, off.predictions,
        "telemetry perturbed the clustering output"
    );
    // And the labels are good: the two-tier merge recovers the planted
    // subspaces on the shared fixture.
    let (fed, _cfg) = demo_hier_fixture(SEED, DEVICES, CLUSTERS);
    let global = fed.scatter_predictions(&on.predictions);
    let acc = clustering_accuracy(&fed.global_truth(), &global);
    assert!(acc > 90.0, "fleet accuracy {acc}%");

    // ---- Byte-exact accounting at every tier. ----
    assert_eq!(off.root_envelope, 0, "untraced run absorbed envelopes");
    assert!(off.agg_envelope.iter().all(|&e| e == 0));
    assert!(on.root_envelope > 0, "root absorbed no telemetry");
    assert_eq!(
        on.root_uplink,
        off.root_uplink + on.root_envelope,
        "root uplink delta is not the declared envelope bytes"
    );
    assert_eq!(
        on.root_downlink,
        off.root_downlink + TIMED_ACK_SURPLUS * AGGS as u64,
        "root downlink delta is not the timed-ack surplus"
    );
    for p in 0..AGGS {
        assert!(on.agg_envelope[p] > 0, "agg {p} absorbed no telemetry");
        assert_eq!(
            on.agg_uplink[p],
            off.agg_uplink[p] + on.agg_envelope[p],
            "agg {p} uplink delta is not the declared envelope bytes"
        );
        assert_eq!(
            on.agg_downlink[p],
            off.agg_downlink[p] + TIMED_ACK_SURPLUS * FAN as u64,
            "agg {p} downlink delta is not the timed-ack surplus"
        );
    }

    // ---- One merged trace at the root, causally consistent. ----
    let trace = std::fs::read_to_string(dir.join("fleet-trace.json")).expect("fleet trace");
    let (events, edges) =
        fedsc_obs::export::validate_cross_process(&trace).expect("cross-process validation");
    // Every process contributed at least one span…
    assert!(events > DEVICES + AGGS, "implausibly small fleet trace");
    // …and every uplink produced a resolved remote parent edge: one per
    // device at its aggregator, one per aggregator at the root.
    assert!(
        edges >= DEVICES + AGGS,
        "expected at least {} causal edges, got {edges}",
        DEVICES + AGGS
    );
    for lane in ["root", "agg-0", "agg-1"] {
        assert!(
            trace.contains(&format!("\"name\":\"{lane}\"")),
            "no {lane} lane"
        );
    }
    for z in 0..DEVICES {
        assert!(
            trace.contains(&format!("\"name\":\"device-{z}\"")),
            "no device-{z} lane"
        );
    }
    // Spans shipped from the leaves and the mid-tier survive the merge.
    for span in ["wire.local_output", "hier.agg_uplink", "wire.uplink"] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "no {span} span"
        );
    }

    // ---- Fleet metrics aggregate work the root never did. ----
    let fleet_metrics =
        std::fs::read_to_string(dir.join("fleet-metrics.json")).expect("fleet metrics");
    let root_metrics =
        std::fs::read_to_string(dir.join("root-metrics.json")).expect("root metrics");
    // The devices' local SSC sweeps arrive in-band; the root's own SSC
    // runs only over the forwarded representatives, so the merged count
    // must strictly exceed the root-local one.
    let (fleet_sweeps, root_sweeps) = (
        counter_in(&fleet_metrics, "lasso.sweeps"),
        counter_in(&root_metrics, "lasso.sweeps"),
    );
    assert!(
        fleet_sweeps > root_sweeps,
        "fleet lasso.sweeps {fleet_sweeps} <= root-local {root_sweeps}"
    );
    // Same for wire traffic: only the subtree dials TCP uplinks toward
    // the aggregators, and those counters merge upward.
    assert!(
        counter_in(&fleet_metrics, "transport.tcp.bytes_sent")
            > counter_in(&root_metrics, "transport.tcp.bytes_sent")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
