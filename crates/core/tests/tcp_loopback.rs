//! End-to-end loopback rounds with **real processes**: one `fedsc-server`
//! and Z `fedsc-device` children talking TCP on 127.0.0.1.
//!
//! Clean run: the reassembled predictions must be bit-identical to the
//! in-process `FedSc::run` on the same seeded fixture — the strongest
//! statement that the wire protocol, the frame codec, and the binaries
//! add nothing and lose nothing.
//!
//! Straggler run: one device is never started; the server must make
//! quorum, report the missing device as excluded, and still answer the
//! healthy ones.

use fedsc::demo::demo_fixture;
use fedsc::FedSc;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_fedsc-server");
const DEVICE_BIN: &str = env!("CARGO_BIN_EXE_fedsc-device");

/// Spawns the server and scrapes the `listening <addr>` line.
fn spawn_server(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(SERVER_BIN)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fedsc-server");
    let stdout = child.stdout.as_mut().expect("server stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

fn spawn_device(addr: &str, z: usize, devices: usize, seed: u64) -> Child {
    Command::new(DEVICE_BIN)
        .args([
            "--addr",
            addr,
            "--device",
            &z.to_string(),
            "--devices",
            &devices.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fedsc-device")
}

/// Waits for a device child and parses its `device <z> predictions <csv>`.
fn device_predictions(child: Child) -> Vec<usize> {
    let out = child.wait_with_output().expect("device exits");
    assert!(
        out.status.success(),
        "device failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("device "))
        .unwrap_or_else(|| panic!("no predictions line in {stdout:?}"));
    let csv = line.rsplit(' ').next().expect("csv field");
    csv.split(',')
        .map(|t| t.parse().expect("prediction id"))
        .collect()
}

#[test]
fn real_process_round_is_bit_identical_to_in_process_run() {
    let (seed, devices) = (7u64, 4usize);
    let (server, addr) = spawn_server(&["--devices", "4", "--seed", "7"]);
    let children: Vec<Child> = (0..devices)
        .map(|z| spawn_device(&addr, z, devices, seed))
        .collect();
    let per_device: Vec<Vec<usize>> = children.into_iter().map(device_predictions).collect();

    let out = server.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "server failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(
        summary.contains("excluded -"),
        "clean run excluded devices: {summary}"
    );
    // Framing makes the wire strictly heavier than the payloads; both
    // totals must be reported and nonzero.
    assert!(summary.contains("uplink_bytes "), "{summary}");

    // Bit-identity: reassemble the global labelling from the four separate
    // OS processes and compare with the single-process reference.
    let (fed, cfg) = demo_fixture(seed, devices, 3);
    let reference = FedSc::new(cfg).run(&fed).expect("reference run");
    assert_eq!(
        fed.scatter_predictions(&per_device),
        reference.predictions,
        "wire round drifted from FedSc::run"
    );
}

#[test]
fn killed_device_is_excluded_under_quorum() {
    let (seed, devices, dead) = (9u64, 4usize, 2usize);
    let (server, addr) = spawn_server(&[
        "--devices",
        "4",
        "--seed",
        "9",
        "--quorum",
        "3",
        "--deadline-ms",
        "4000",
    ]);
    // Device `dead` is never started — the straggler the policy must absorb.
    let children: Vec<(usize, Child)> = (0..devices)
        .filter(|&z| z != dead)
        .map(|z| (z, spawn_device(&addr, z, devices, seed)))
        .collect();

    let out = server.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "quorum round failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(
        summary
            .lines()
            .any(|l| l.trim() == format!("excluded {dead}")),
        "server did not report the killed device: {summary}"
    );

    // Healthy devices complete with a full labelling of their shards.
    let (fed, _cfg) = demo_fixture(seed, devices, 3);
    for (z, child) in children {
        let preds = device_predictions(child);
        assert_eq!(preds.len(), fed.devices[z].data.cols(), "device {z}");
    }
}

#[test]
fn server_trace_and_metrics_exports_cover_the_round() {
    let (seed, devices) = (13u64, 3usize);
    let dir = std::env::temp_dir().join(format!("fedsc-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.json");

    let (server, addr) = spawn_server(&[
        "--devices",
        "3",
        "--seed",
        "13",
        "--trace-out",
        trace_path.to_str().expect("utf-8 path"),
        "--metrics-out",
        metrics_path.to_str().expect("utf-8 path"),
    ]);
    let children: Vec<Child> = (0..devices)
        .map(|z| spawn_device(&addr, z, devices, seed))
        .collect();
    for child in children {
        let _ = device_predictions(child);
    }
    let out = server.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "server failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    let bytes_line = summary
        .lines()
        .find(|l| l.starts_with("uplink_bytes "))
        .expect("byte summary line");
    let fields: Vec<&str> = bytes_line.split_whitespace().collect();
    let uplink: u64 = fields[1].parse().expect("uplink total");
    let downlink: u64 = fields[3].parse().expect("downlink total");

    // The trace must be well-formed Chrome trace_event JSON covering all
    // three Fed-SC phases plus the per-device wire spans.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    fedsc_obs::export::validate_chrome_trace(&trace).expect("trace validates");
    for span in [
        "phase1.collect",
        "phase2.central",
        "phase3.broadcast",
        "wire.server_round",
        "wire.uplink",
        "wire.downlink",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "trace missing {span} span"
        );
    }

    // The metrics snapshot mirrors the byte totals the server printed —
    // TCP accounting is wire-true on both surfaces, so they agree exactly.
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    for (name, want) in [
        ("transport.tcp.bytes_received", uplink),
        ("transport.tcp.bytes_sent", downlink),
        ("wire.server_rounds", 1),
    ] {
        assert!(
            metrics.contains(&format!("\"{name}\":{want}")),
            "metrics missing {name}={want}:\n{metrics}"
        );
    }
    // Nothing was injected and nothing corrupted: fault/CRC counters are
    // either absent (never touched, so never registered) or zero.
    for name in [
        "transport.crc_rejects",
        "transport.fault.drop",
        "transport.fault.bit_flip",
        "transport.fault.truncate",
    ] {
        let key = format!("\"{name}\":");
        if let Some(pos) = metrics.find(&key) {
            assert!(
                metrics[pos + key.len()..].starts_with('0'),
                "clean run reported a nonzero {name}:\n{metrics}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
