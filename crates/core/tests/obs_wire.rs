//! Observability of the wire layer, asserted end-to-end:
//!
//! * TCP loopback byte accounting — the global `transport.tcp.*` counters
//!   must agree with the wire-true `WireRunOutput` byte totals, i.e. the
//!   metrics are the same numbers the protocol itself reports.
//! * Trace coverage — a traced round must emit spans for all three Fed-SC
//!   phases plus a `wire.device_round` span per device, and the exported
//!   Chrome trace must pass the `xtask validate-trace` validator.

use fedsc::demo::demo_fixture;
use fedsc::{run_round, RoundPolicy};
use fedsc_obs::metrics::snapshot;
use fedsc_transport::{InMemoryTransport, TcpTransport};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests in this binary: the metrics registry and the trace
/// recorder are process-global, so deltas are only exact when one round
/// runs at a time.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn counter(name: &str) -> u64 {
    snapshot().counters.get(name).copied().unwrap_or(0)
}

#[test]
fn tcp_loopback_byte_counters_match_wire_true_accounting() {
    let _g = guard();
    let (fed, cfg) = demo_fixture(21, 5, 3);
    let before = (
        counter("transport.tcp.bytes_sent"),
        counter("transport.tcp.bytes_received"),
    );
    let out = run_round(
        &fed,
        &cfg,
        &TcpTransport::loopback(),
        &RoundPolicy::default(),
    )
    .expect("tcp loopback round");
    assert!(out.excluded.is_empty(), "clean run excluded devices");

    let sent = counter("transport.tcp.bytes_sent") - before.0;
    let received = counter("transport.tcp.bytes_received") - before.1;
    let wire_true = (out.uplink_bytes + out.downlink_bytes) as u64;
    // Loopback loses nothing: every byte one side put on the socket was
    // read by the other, and both equal the server-observed totals
    // (handshake and framing overhead included on both sides).
    assert_eq!(sent, received);
    assert_eq!(sent, wire_true);
}

#[test]
fn traced_round_covers_all_three_phases_and_every_device() {
    let _g = guard();
    let devices = 6usize;
    let (fed, cfg) = demo_fixture(9, devices, 3);
    let rounds_before = counter("wire.device_rounds");

    fedsc_obs::trace::install_ring(1 << 14);
    let out = run_round(&fed, &cfg, &InMemoryTransport, &RoundPolicy::default())
        .expect("in-memory round");
    let events = fedsc_obs::trace::uninstall();
    assert!(out.excluded.is_empty(), "clean run excluded devices");

    // Server-side phase spans: Phase 1 collection window, Phase 2 central
    // clustering, Phase 3 label broadcast.
    for phase in ["phase1.collect", "phase2.central", "phase3.broadcast"] {
        assert!(
            events.iter().any(|e| e.cat == "fedsc" && e.name == phase),
            "missing span {phase}; got {:?}",
            events.iter().map(|e| e.name).collect::<Vec<_>>()
        );
    }
    // One wire.device_round span per device, and the metrics counter
    // agrees with the span count.
    let device_rounds = events
        .iter()
        .filter(|e| e.cat == "wire" && e.name == "wire.device_round")
        .count();
    assert_eq!(device_rounds, devices);
    assert_eq!(
        counter("wire.device_rounds") - rounds_before,
        devices as u64
    );
    // Per-device uplink/downlink spans inside the server round.
    for name in ["wire.uplink", "wire.downlink"] {
        let n = events
            .iter()
            .filter(|e| e.cat == "wire" && e.name == name)
            .count();
        assert_eq!(n, devices, "expected one {name} span per device");
    }

    // The exported trace must be loadable: well-formed Chrome trace_event
    // JSON with one entry per recorded span.
    let trace = fedsc_obs::export::chrome_trace_json(&events);
    let validated = fedsc_obs::export::validate_chrome_trace(&trace).expect("trace validates");
    assert_eq!(validated, events.len());
}
