//! Fed-SC configuration types.

use fedsc_federated::channel::ChannelConfig;
use fedsc_federated::privacy::DpConfig;
use fedsc_sparse::lasso::LassoOptions;

/// How a device estimates its local cluster count `r^(z)` (paper Remark 1:
/// eigengap on synthetic data, a fixed upper bound on the complex real
/// datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterCountPolicy {
    /// Largest spectral gap of the normalized Laplacian, optionally capped
    /// (`None` searches the full spectrum). `relative = false` is the
    /// paper's literal Eq. (3); `relative = true` (the default) divides each
    /// gap by the upper eigenvalue, which is far more robust when
    /// within-cluster connectivity is weak.
    Eigengap {
        /// Upper bound on the reported count.
        max: Option<usize>,
        /// Use the relative-gap variant.
        relative: bool,
    },
    /// Fixed count on every device — the paper's real-data choice
    /// `r^(z) = max_z L^(z)`.
    Fixed(usize),
}

/// How a device picks the dimension `d_t` of each local-cluster basis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BasisDim {
    /// Numerical rank: singular values above `rel_tol * s_max`, capped at
    /// `max_dim`.
    Auto {
        /// Relative singular-value threshold.
        rel_tol: f64,
        /// Hard cap on the basis dimension.
        max_dim: usize,
    },
    /// Fixed dimension — the paper uses `d_t = 1` on the real datasets.
    Fixed(usize),
}

/// Which SC algorithm each device runs on its local data.
///
/// The paper argues for SSC ("we only choose to run SSC for local
/// clustering instead of TSC which requires a uniformness assumption and a
/// thresholding parameter q") — the TSC variant exists to measure that
/// argument in the `ablation` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalBackend {
    /// SSC (the paper's choice).
    Ssc,
    /// TSC with a fixed neighbor count.
    Tsc {
        /// Neighbor count `q`.
        q: usize,
    },
}

/// Which SC algorithm the central server runs on the pooled samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentralBackend {
    /// Fed-SC (SSC).
    Ssc,
    /// Fed-SC (TSC) with the paper's rule `q = max(3, ceil(Z / L))` unless
    /// overridden.
    Tsc {
        /// Optional fixed `q`; `None` applies the paper's rule.
        q: Option<usize>,
    },
}

/// Full Fed-SC configuration.
#[derive(Debug, Clone)]
pub struct FedScConfig {
    /// Number of global clusters `L`.
    pub num_clusters: usize,
    /// Central-clustering backend.
    pub central: CentralBackend,
    /// Local cluster-count estimation policy.
    pub cluster_count: ClusterCountPolicy,
    /// Local basis-dimension policy.
    pub basis_dim: BasisDim,
    /// Samples uploaded per local cluster (paper: 1; >1 is an ablation).
    pub samples_per_cluster: usize,
    /// Lambda-rule multiplier for the local SSC (paper: 50).
    pub ssc_alpha: f64,
    /// Lasso solver options for the local SSC.
    pub lasso: LassoOptions,
    /// Local clustering backend (paper: SSC; TSC is an ablation).
    pub local: LocalBackend,
    /// Communication channel model.
    pub channel: ChannelConfig,
    /// Optional differential privacy for the uplink: each sample is
    /// privatized with the Gaussian mechanism before transmission (the
    /// paper's Remark 2 / future-work extension).
    pub dp: Option<DpConfig>,
    /// Worker threads for the device fan-out (one device per work item).
    pub threads: usize,
    /// Worker threads *inside* one device's numerical kernels: the Gram
    /// product, the per-point Lasso solves, and the per-partition truncated
    /// SVDs. Defaults to 1 so the device fan-out owns the cores; raise it
    /// (and lower `threads`) for few-device / large-N workloads. Results
    /// are bitwise independent of this knob. See DESIGN.md §9 for the
    /// ownership rule — total workers never exceed
    /// `threads * kernel_threads`.
    pub kernel_threads: usize,
    /// Base seed; device `z` derives `seed + z`.
    pub seed: u64,
    /// Point count at or above which SSC (local and central) routes
    /// through the subquadratic sketched-candidate pipeline instead of the
    /// dense all-pairs Lasso. Below the threshold the classic dense path
    /// runs bitwise-unchanged. The certificate-plus-escalation design keeps
    /// the codes exact either way; this knob only trades constant factors.
    pub candidate_threshold: usize,
}

impl FedScConfig {
    /// Paper-default configuration for `l` global clusters with the chosen
    /// central backend: eigengap cluster counts (capped at `2l` for
    /// robustness), automatic basis dimension, one sample per cluster.
    pub fn new(l: usize, central: CentralBackend) -> Self {
        Self {
            num_clusters: l,
            central,
            cluster_count: ClusterCountPolicy::Eigengap {
                max: Some(2 * l.max(1)),
                relative: true,
            },
            basis_dim: BasisDim::Auto {
                rel_tol: 1e-6,
                max_dim: 32,
            },
            samples_per_cluster: 1,
            ssc_alpha: 50.0,
            lasso: LassoOptions::default(),
            local: LocalBackend::Ssc,
            channel: ChannelConfig::default(),
            dp: None,
            threads: fedsc_federated::parallel::default_threads(),
            kernel_threads: 1,
            seed: 0xfed5c,
            candidate_threshold: fedsc_subspace::CandidateOptions::default().min_points,
        }
    }

    /// The paper's real-data configuration: fixed `r^(z)` upper bound and
    /// rank-1 bases (`d_t = 1`).
    pub fn real_data(l: usize, central: CentralBackend, r_upper: usize) -> Self {
        Self {
            cluster_count: ClusterCountPolicy::Fixed(r_upper),
            basis_dim: BasisDim::Fixed(1),
            ..Self::new(l, central)
        }
    }
}
