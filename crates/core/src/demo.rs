//! Seeded demo fixtures shared by the wire binaries and the loopback
//! end-to-end tests.
//!
//! The `fedsc-server` and `fedsc-device` binaries run as separate
//! processes, so they cannot share a dataset in memory — instead both
//! regenerate it from the same seed. This module is the single definition
//! of that regeneration, so a server and its devices (and the test
//! asserting bit-identity against [`crate::scheme::FedSc`]) can never
//! disagree about the data.

use crate::config::{CentralBackend, FedScConfig};
use fedsc_federated::partition::{partition_dataset, FederatedDataset, Partition};
use fedsc_subspace::SubspaceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Points sampled per generated subspace cluster.
const POINTS_PER_CLUSTER: usize = 48;
/// Ambient dimension of the generated data.
const AMBIENT_DIM: usize = 20;
/// Dimension of each generated subspace.
const SUBSPACE_DIM: usize = 3;

/// Deterministically regenerates the demo federation: `clusters` random
/// 3-dimensional subspaces in `R^20`, 48 points each, split over
/// `devices` non-IID shards (2 clusters per device). The returned config
/// carries the same `seed`, so every phase of the round is pinned.
pub fn demo_fixture(seed: u64, devices: usize, clusters: usize) -> (FederatedDataset, FedScConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SubspaceModel::random(&mut rng, AMBIENT_DIM, SUBSPACE_DIM, clusters);
    let counts = vec![POINTS_PER_CLUSTER; clusters];
    let ds = model.sample_dataset(&mut rng, &counts, 0.0);
    let l_prime = clusters.clamp(1, 2);
    let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime }, &mut rng);
    let mut cfg = FedScConfig::new(clusters, CentralBackend::Ssc);
    cfg.seed = seed;
    (fed, cfg)
}

/// Deterministically regenerates the hierarchical demo federation:
/// `clusters` random **rank-1** subspaces (lines) in `R^20`, 48 points
/// each, 4 uploaded samples per local cluster. Mid-tier aggregators pool
/// only a handful of children and forward one representative per merged
/// cluster, so the per-tier SSC needs self-expressiveness to survive on
/// very few samples — rank-1 subspaces keep it intact all the way up the
/// tree (two samples on a line already express each other). This is the
/// fixture the `fedsc-agg` fleet runs share.
pub fn demo_hier_fixture(
    seed: u64,
    devices: usize,
    clusters: usize,
) -> (FederatedDataset, FedScConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SubspaceModel::random(&mut rng, AMBIENT_DIM, 1, clusters);
    let counts = vec![POINTS_PER_CLUSTER; clusters];
    let ds = model.sample_dataset(&mut rng, &counts, 0.0);
    let l_prime = clusters.clamp(1, 2);
    let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime }, &mut rng);
    let mut cfg = FedScConfig::new(clusters, CentralBackend::Ssc);
    cfg.seed = seed;
    cfg.samples_per_cluster = 4;
    (fed, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regeneration_is_deterministic() {
        let (a, cfg_a) = demo_fixture(11, 6, 3);
        let (b, cfg_b) = demo_fixture(11, 6, 3);
        assert_eq!(a.devices.len(), b.devices.len());
        assert_eq!(cfg_a.seed, cfg_b.seed);
        for (da, db) in a.devices.iter().zip(b.devices.iter()) {
            assert_eq!(da.data.as_slice(), db.data.as_slice());
            assert_eq!(da.labels, db.labels);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = demo_fixture(1, 6, 3);
        let (b, _) = demo_fixture(2, 6, 3);
        assert_ne!(a.devices[0].data.as_slice(), b.devices[0].data.as_slice());
    }
}
