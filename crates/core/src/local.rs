//! Algorithm 2: local clustering and sampling on one client device.
//!
//! 1. Solve the SSC Lasso for every local point and form
//!    `W^(z) = |C^(z)| + |C^(z)|^T`.
//! 2. Estimate the local cluster count `r^(z)` — eigengap heuristic
//!    (Eq. (3)) or the fixed upper bound (Remark 1).
//! 3. Normalized spectral clustering into `r^(z)` partitions `T^(z)`.
//! 4. Per partition: estimate an orthonormal basis `U_{d_t}` by truncated
//!    SVD and draw the uniform unit-sphere sample
//!    `theta = U alpha / ||U alpha||`, `alpha ~ N(0, I)` (Eq. (5)).

use crate::config::{BasisDim, ClusterCountPolicy, FedScConfig, LocalBackend};
use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_graph::laplacian::{
    eigengap_cluster_count, laplacian_spectrum, relative_eigengap_cluster_count,
};
use fedsc_linalg::random::sample_on_subspace;
use fedsc_linalg::svd::truncated_svd;
use fedsc_linalg::{par, Matrix, Result};
use fedsc_subspace::{CandidateOptions, Ssc, SubspaceClusterer as _, Tsc};
use rand::Rng;

/// Output of Algorithm 2 on one device.
#[derive(Debug, Clone)]
pub struct LocalOutput {
    /// Local cluster index per local point (`T^(z)` in label form).
    pub local_labels: Vec<usize>,
    /// Number of local clusters `r^(z)` actually produced.
    pub num_local_clusters: usize,
    /// Generated samples `Theta^(z)` as columns
    /// (`n x (r^(z) * samples_per_cluster)`).
    pub samples: Matrix,
    /// `sample_cluster[s]` = local cluster index the `s`-th sample
    /// represents.
    pub sample_cluster: Vec<usize>,
    /// Estimated basis dimension `d_t` per local cluster (diagnostics).
    pub basis_dims: Vec<usize>,
}

/// Runs local clustering and sampling (Algorithm 2) on one device's data.
pub fn local_cluster_and_sample<R: Rng + ?Sized>(
    data: &Matrix,
    cfg: &FedScConfig,
    rng: &mut R,
) -> Result<LocalOutput> {
    let n_points = data.cols();
    let dim = data.rows();
    if n_points == 0 {
        return Ok(LocalOutput {
            local_labels: vec![],
            num_local_clusters: 0,
            samples: Matrix::zeros(dim, 0),
            sample_cluster: vec![],
            basis_dims: vec![],
        });
    }

    // Steps 1-2: local affinity graph (SSC per the paper; TSC as ablation).
    // `kernel_threads` governs intra-device numerical parallelism (Gram,
    // per-point Lasso, neighbor search); the device fan-out owns
    // `cfg.threads` one level up.
    let kernel_threads = cfg.kernel_threads.max(1);
    let affinity_span = fedsc_obs::span("fedsc", "local.affinity").field("points", n_points);
    let graph = match cfg.local {
        LocalBackend::Ssc => {
            let mut lasso = cfg.lasso.clone();
            lasso.threads = kernel_threads;
            let ssc = Ssc {
                alpha: cfg.ssc_alpha,
                lasso,
                normalize: true,
                candidates: Some(CandidateOptions {
                    min_points: cfg.candidate_threshold,
                    ..CandidateOptions::default()
                }),
            };
            ssc.affinity(data)?
        }
        LocalBackend::Tsc { q } => {
            let mut tsc = Tsc::new(q);
            tsc.threads = kernel_threads;
            tsc.affinity(data)?
        }
    };
    drop(affinity_span);

    // Step 3: estimate r^(z).
    let eigengap_span = fedsc_obs::span("fedsc", "local.eigengap");
    let r = match cfg.cluster_count {
        ClusterCountPolicy::Eigengap { max, relative } => {
            let spec = laplacian_spectrum(&graph)?;
            if relative {
                relative_eigengap_cluster_count(&spec.eigenvalues, max)
            } else {
                eigengap_cluster_count(&spec.eigenvalues, max)
            }
        }
        ClusterCountPolicy::Fixed(r) => r,
    }
    .clamp(1, n_points);
    drop(eigengap_span.field("clusters", r));

    // Step 4: spectral clustering into r partitions.
    let spectral_span = fedsc_obs::span("fedsc", "local.spectral").field("clusters", r);
    let local_labels = spectral_clustering(&graph, &SpectralOptions::new(r), rng)?;
    drop(spectral_span);

    // Steps 5-8: per-partition basis estimation and sampling.
    let _basis_span = fedsc_obs::span("fedsc", "local.basis_sample").field("clusters", r);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); r];
    for (i, &t) in local_labels.iter().enumerate() {
        members[t].push(i);
    }
    // Basis estimation (truncated SVD per partition) is deterministic and
    // rng-free, so the partitions fan out over the kernel pool; sampling
    // stays sequential in partition order below so the rng stream — and
    // therefore every seeded run — is byte-identical to the serial path.
    // The heavy variant: a handful of partitions, each an SVD worth far
    // more than the pool's publish overhead.
    let bases: Vec<Option<Result<Matrix>>> = par::par_map_heavy(r, kernel_threads, |t| {
        let idx = &members[t];
        if idx.is_empty() {
            // Spectral k-means can leave a cluster empty when r was
            // over-estimated; skip it (no sample, no basis).
            return None;
        }
        Some(estimate_basis(&data.select_columns(idx), cfg.basis_dim))
    });
    let mut sample_cols: Vec<Vec<f64>> = Vec::new();
    let mut sample_cluster = Vec::new();
    let mut basis_dims = Vec::new();
    for (t, basis) in bases.into_iter().enumerate() {
        let Some(basis) = basis else {
            basis_dims.push(0);
            continue;
        };
        let basis = basis?;
        basis_dims.push(basis.cols());
        for _ in 0..cfg.samples_per_cluster.max(1) {
            sample_cols.push(sample_on_subspace(rng, &basis));
            sample_cluster.push(t);
        }
    }
    let refs: Vec<&[f64]> = sample_cols.iter().map(|c| c.as_slice()).collect();
    let samples = Matrix::from_columns(&refs)?;
    // An all-empty sample set can only happen when every cluster was empty,
    // which the n_points == 0 guard already excluded.
    let samples = if samples.cols() == 0 && samples.rows() == 0 {
        Matrix::zeros(dim, 0)
    } else {
        samples
    };
    Ok(LocalOutput {
        local_labels,
        num_local_clusters: r,
        samples,
        sample_cluster,
        basis_dims,
    })
}

/// Footnote 3: estimate the basis of `span(cluster)` with a truncated SVD.
fn estimate_basis(cluster: &Matrix, policy: BasisDim) -> Result<Matrix> {
    let max_rank = cluster.rows().min(cluster.cols());
    let d = match policy {
        BasisDim::Fixed(d) => d.clamp(1, max_rank),
        BasisDim::Auto { rel_tol, max_dim } => {
            let probe = truncated_svd(cluster, max_rank.min(max_dim.max(1)))?;
            let smax = probe.s.first().copied().unwrap_or(0.0);
            if smax <= 0.0 {
                1
            } else {
                probe
                    .s
                    .iter()
                    .take_while(|&&s| s > rel_tol.max(f64::EPSILON) * smax)
                    .count()
                    .clamp(1, max_rank)
            }
        }
    };
    let u = truncated_svd(cluster, d)?.u;
    // Phase 1 invariant: everything downstream (uniform-on-subspace sampling,
    // the theory diagnostics) assumes U_{d_t} has orthonormal columns.
    debug_assert!(
        orthonormality_defect(&u) < 1e-8,
        "estimated basis is not orthonormal (defect {})",
        orthonormality_defect(&u)
    );
    Ok(u)
}

/// `max_{i,j} |u_i . u_j - delta_ij|` — 0 for an exactly orthonormal basis.
/// Debug-assert helper; not part of the scheme itself.
fn orthonormality_defect(u: &fedsc_linalg::Matrix) -> f64 {
    let k = u.cols();
    let mut worst = 0.0f64;
    for i in 0..k {
        for j in i..k {
            let d = fedsc_linalg::vector::dot(u.col(i), u.col(j));
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((d - target).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CentralBackend;
    use fedsc_linalg::vector;
    use fedsc_subspace::SubspaceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> FedScConfig {
        FedScConfig::new(4, CentralBackend::Ssc)
    }

    #[test]
    fn empty_device_produces_empty_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = local_cluster_and_sample(&Matrix::zeros(10, 0), &cfg(), &mut rng).unwrap();
        assert_eq!(out.num_local_clusters, 0);
        assert_eq!(out.samples.cols(), 0);
    }

    #[test]
    fn two_orthogonalish_subspaces_give_two_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[15, 15], 0.0);
        let out = local_cluster_and_sample(&ds.data, &cfg(), &mut rng).unwrap();
        assert_eq!(out.num_local_clusters, 2);
        // Partition must match the ground truth up to relabeling.
        let acc = fedsc_clustering::clustering_accuracy(&ds.labels, &out.local_labels);
        assert!(acc > 95.0, "local accuracy {acc}");
    }

    #[test]
    fn samples_are_unit_norm_and_span_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SubspaceModel::random(&mut rng, 20, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[12, 12], 0.0);
        let out = local_cluster_and_sample(&ds.data, &cfg(), &mut rng).unwrap();
        assert_eq!(out.samples.cols(), out.sample_cluster.len());
        for s in 0..out.samples.cols() {
            assert!((vector::norm2(out.samples.col(s)) - 1.0).abs() < 1e-10);
            // The sample lies in the span of its ground-truth subspace: the
            // projection onto the true basis reproduces it.
            let cluster = out.sample_cluster[s];
            // Majority ground-truth label of the local cluster.
            let mut votes = [0usize; 2];
            for (i, &t) in out.local_labels.iter().enumerate() {
                if t == cluster {
                    votes[ds.labels[i]] += 1;
                }
            }
            let true_subspace = if votes[0] >= votes[1] { 0 } else { 1 };
            let basis = &model.bases[true_subspace];
            let coeff = basis.tr_matvec(out.samples.col(s)).unwrap();
            let proj = basis.matvec(&coeff).unwrap();
            let err: f64 = proj
                .iter()
                .zip(out.samples.col(s))
                .map(|(p, t)| (p - t).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8, "sample {s} leaves its subspace by {err}");
        }
    }

    #[test]
    fn fixed_cluster_count_is_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SubspaceModel::random(&mut rng, 20, 2, 2);
        let ds = model.sample_dataset(&mut rng, &[10, 10], 0.0);
        let mut c = cfg();
        c.cluster_count = ClusterCountPolicy::Fixed(3);
        let out = local_cluster_and_sample(&ds.data, &c, &mut rng).unwrap();
        assert_eq!(out.num_local_clusters, 3);
        // At most 3 samples (empty clusters may drop some).
        assert!(out.samples.cols() <= 3);
    }

    #[test]
    fn fixed_basis_dim_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = SubspaceModel::random(&mut rng, 20, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[10, 10], 0.0);
        let mut c = cfg();
        c.basis_dim = BasisDim::Fixed(1);
        let out = local_cluster_and_sample(&ds.data, &c, &mut rng).unwrap();
        assert!(out.basis_dims.iter().all(|&d| d == 1));
    }

    #[test]
    fn auto_basis_dim_recovers_subspace_dimension() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = SubspaceModel::random(&mut rng, 25, 4, 1);
        let ds = model.sample_dataset(&mut rng, &[20], 0.0);
        let out = local_cluster_and_sample(&ds.data, &cfg(), &mut rng).unwrap();
        // One subspace of dimension 4: every non-empty cluster basis has
        // dimension 4 (noiseless data has exact rank).
        assert!(
            out.basis_dims.iter().all(|&d| d == 0 || d == 4),
            "{:?}",
            out.basis_dims
        );
    }

    #[test]
    fn multiple_samples_per_cluster() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = SubspaceModel::random(&mut rng, 15, 2, 1);
        let ds = model.sample_dataset(&mut rng, &[10], 0.0);
        let mut c = cfg();
        c.cluster_count = ClusterCountPolicy::Fixed(1);
        c.samples_per_cluster = 3;
        let out = local_cluster_and_sample(&ds.data, &c, &mut rng).unwrap();
        assert_eq!(out.samples.cols(), 3);
        assert_eq!(out.sample_cluster, vec![0, 0, 0]);
    }

    #[test]
    fn tsc_local_backend_runs() {
        // The ablation backend: TSC locally instead of SSC. On uniform
        // synthetic data it still segments well-separated subspaces.
        let mut rng = StdRng::seed_from_u64(21);
        let model = SubspaceModel::random(&mut rng, 30, 3, 2);
        let ds = model.sample_dataset(&mut rng, &[20, 20], 0.0);
        let mut c = cfg();
        c.local = crate::config::LocalBackend::Tsc { q: 5 };
        c.cluster_count = ClusterCountPolicy::Fixed(2);
        let out = local_cluster_and_sample(&ds.data, &c, &mut rng).unwrap();
        let acc = fedsc_clustering::clustering_accuracy(&ds.labels, &out.local_labels);
        assert!(acc > 90.0, "TSC-local accuracy {acc}");
    }

    #[test]
    fn single_point_device() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = Matrix::from_columns(&[&[1.0, 0.0, 0.0]]).unwrap();
        let out = local_cluster_and_sample(&data, &cfg(), &mut rng).unwrap();
        assert_eq!(out.num_local_clusters, 1);
        assert_eq!(out.samples.cols(), 1);
        // The only possible unit sample is +-x itself.
        assert!((out.samples[(0, 0)].abs() - 1.0).abs() < 1e-10);
    }
}
