//! Algorithm 1: the full three-phase Fed-SC scheme.
//!
//! * **Phase 1** — every device runs Algorithm 2
//!   ([`crate::local::local_cluster_and_sample`]) in parallel and transmits
//!   its samples through the channel (noise + quantization + cost
//!   accounting).
//! * **Phase 2** — the server pools `[Theta^(z)]_z`, clusters the samples
//!   into `L` groups ([`crate::central::central_cluster`]), and delivers the
//!   assignments.
//! * **Phase 3** — every device relabels its partitions:
//!   `T-hat_l^(z) = { i : i in T_t^(z), tau_t^(z) = l }`.

use crate::central::central_cluster;
use crate::config::FedScConfig;
use crate::local::{local_cluster_and_sample, LocalOutput};
use fedsc_federated::channel::{account_downlink, transmit_uplink, CommStats};
use fedsc_federated::parallel::{par_map_timed, time_phase, PhaseTiming};
use fedsc_federated::partition::FederatedDataset;
use fedsc_federated::privacy::{privatize_samples, PrivacyLedger};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{Matrix, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Everything a Fed-SC run produces.
#[derive(Debug, Clone)]
pub struct FedScOutput {
    /// Predicted global cluster per point, in global-point order.
    pub predictions: Vec<usize>,
    /// Predicted labels per device (local order).
    pub per_device: Vec<Vec<usize>>,
    /// Communication cost of the one-shot round.
    pub comm: CommStats,
    /// Device-phase timing (sequential = `sum_z T^(z)`, parallel = max).
    pub local_timing: PhaseTiming,
    /// Server wall time `T_c`.
    pub server_time: Duration,
    /// `r^(z)` per device.
    pub local_cluster_counts: Vec<usize>,
    /// Pooled samples `Theta` (as received by the server).
    pub samples: Matrix,
    /// Device index of each pooled sample.
    pub sample_device: Vec<usize>,
    /// Global assignment `tau` of each pooled sample.
    pub sample_assignment: Vec<usize>,
    /// Server-side affinity graph over the samples.
    pub central_graph: AffinityGraph,
    /// For every global point, the pooled-sample index representing its
    /// local cluster (`usize::MAX` for the rare cluster that produced no
    /// sample).
    pub point_sample: Vec<usize>,
    /// For every global point, its `(device, local cluster)` identity.
    pub point_cluster: Vec<(usize, usize)>,
    /// Differential-privacy ledger (empty default when DP is disabled).
    pub privacy: PrivacyLedger,
}

impl FedScOutput {
    /// The paper's running-time metric `T = sum_z T^(z) + T_c`.
    pub fn sequential_time(&self) -> Duration {
        self.local_timing.sequential + self.server_time
    }

    /// Parallel wall-clock `max_z T^(z) + T_c`.
    pub fn parallel_time(&self) -> Duration {
        self.local_timing.parallel + self.server_time
    }

    /// Induces the global affinity graph on the original points that the
    /// sample-level graph implies: points in the same local cluster are
    /// fully connected (weight 1); points represented by different samples
    /// inherit the sample-to-sample affinity. This is the graph the paper's
    /// connectivity argument (Section IV-E) and CONN comparisons use.
    pub fn induced_global_affinity(&self) -> AffinityGraph {
        let n = self.point_sample.len();
        let mut w = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                let v = if self.point_cluster[i] == self.point_cluster[j] {
                    1.0
                } else {
                    let (si, sj) = (self.point_sample[i], self.point_sample[j]);
                    if si == usize::MAX || sj == usize::MAX {
                        0.0
                    } else {
                        self.central_graph.weight(si, sj)
                    }
                };
                w[(i, j)] = v;
                w[(j, i)] = v;
            }
        }
        AffinityGraph::from_symmetric(&w)
    }
}

/// The Fed-SC scheme.
#[derive(Debug, Clone)]
pub struct FedSc {
    /// Configuration.
    pub config: FedScConfig,
}

impl FedSc {
    /// Creates the scheme with the given configuration.
    pub fn new(config: FedScConfig) -> Self {
        Self { config }
    }

    /// Runs Algorithm 1 over a partitioned dataset.
    pub fn run(&self, fed: &FederatedDataset) -> Result<FedScOutput> {
        let cfg = &self.config;
        let z_count = fed.devices.len();
        let _run_span = fedsc_obs::span("fedsc", "run").field("devices", z_count);

        // Phase 1: local clustering and sampling, in parallel. Each device
        // seeds its own RNG so results are independent of thread schedule.
        let phase1_span = fedsc_obs::span("fedsc", "phase1.local").field("devices", z_count);
        type DeviceResult = (LocalOutput, Matrix, CommStats, PrivacyLedger);
        let locals: Vec<(Result<DeviceResult>, Duration)> =
            par_map_timed(z_count, cfg.threads, |z| {
                let _device_span = fedsc_obs::span("fedsc", "phase1.device").field("device", z);
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(z as u64));
                let out = local_cluster_and_sample(&fed.devices[z].data, cfg, &mut rng)?;
                // Optional differential privacy before anything leaves the
                // device, then the (noisy, quantized) channel.
                let mut ledger = PrivacyLedger::default();
                let release = match &cfg.dp {
                    Some(dp) => privatize_samples(dp, &out.samples, &mut ledger, &mut rng),
                    None => out.samples.clone(),
                };
                let mut stats = CommStats::default();
                let received = transmit_uplink(&cfg.channel, &release, &mut stats, &mut rng);
                Ok((out, received, stats, ledger))
            });
        drop(phase1_span);
        let local_timing = PhaseTiming::from_durations(locals.iter().map(|(_, d)| *d));

        let mut comm = CommStats::default();
        let mut privacy = PrivacyLedger::default();
        let mut outputs: Vec<LocalOutput> = Vec::with_capacity(z_count);
        let mut received: Vec<Matrix> = Vec::with_capacity(z_count);
        for (res, _) in locals {
            let (out, rx, stats, ledger) = res?;
            comm.merge(&stats);
            privacy.max_device_epsilon = privacy.max_device_epsilon.max(ledger.max_device_epsilon);
            privacy.max_device_delta = privacy.max_device_delta.max(ledger.max_device_delta);
            privacy.devices += ledger.devices;
            outputs.push(out);
            received.push(rx);
        }

        // Pool samples with device bookkeeping.
        let mut sample_device = Vec::new();
        let mut sample_offset = vec![0usize; z_count];
        let mut offset = 0usize;
        for (z, rx) in received.iter().enumerate() {
            sample_offset[z] = offset;
            offset += rx.cols();
            sample_device.extend(std::iter::repeat_n(z, rx.cols()));
        }
        let refs: Vec<&Matrix> = received.iter().collect();
        let samples = Matrix::hcat(&refs)?;

        // Phase 2: central clustering.
        let (central, server_time) = time_phase(|| {
            let _span = fedsc_obs::span("fedsc", "phase2.central").field("samples", samples.cols());
            let mut server_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0ce2_74a1);
            central_cluster(
                &samples,
                cfg.num_clusters,
                z_count,
                cfg.central,
                cfg.candidate_threshold,
                &mut server_rng,
            )
        });
        let central = central?;

        // Phase 3: local update. Each local cluster t on device z gets the
        // global label of its (first) representative sample; clusters that
        // produced no sample (empty after spectral k-means) keep label 0.
        let phase3_span = fedsc_obs::span("fedsc", "phase3.update").field("devices", z_count);
        let mut per_device: Vec<Vec<usize>> = Vec::with_capacity(z_count);
        let mut point_sample = vec![usize::MAX; fed.total_points];
        let mut point_cluster = vec![(0usize, 0usize); fed.total_points];
        for (z, out) in outputs.iter().enumerate() {
            let base = sample_offset[z];
            // First sample representing each local cluster.
            let mut first = vec![usize::MAX; out.num_local_clusters.max(1)];
            for (s, &t) in out.sample_cluster.iter().enumerate() {
                if first[t] == usize::MAX {
                    first[t] = base + s;
                }
            }
            for (i, &t) in out.local_labels.iter().enumerate() {
                let g = fed.global_index[z][i];
                point_sample[g] = first[t];
                point_cluster[g] = (z, t);
            }
            let mut cluster_to_global = vec![0usize; out.num_local_clusters.max(1)];
            // Majority vote over this cluster's samples (identical to "the"
            // sample when samples_per_cluster == 1).
            let mut votes =
                vec![vec![0usize; cfg.num_clusters.max(1)]; out.num_local_clusters.max(1)];
            for (s, &t) in out.sample_cluster.iter().enumerate() {
                let tau = central.assignments[base + s];
                votes[t][tau] += 1;
            }
            for (t, vote) in votes.iter().enumerate() {
                if let Some((best, _)) = vote
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .filter(|&(_, &c)| c > 0)
                {
                    cluster_to_global[t] = best;
                }
            }
            account_downlink(&mut comm, out.sample_cluster.len(), cfg.num_clusters);
            per_device.push(
                out.local_labels
                    .iter()
                    .map(|&t| cluster_to_global[t])
                    .collect(),
            );
        }
        let predictions = fed.scatter_predictions(&per_device);
        drop(phase3_span);

        Ok(FedScOutput {
            predictions,
            per_device,
            comm,
            local_timing,
            server_time,
            local_cluster_counts: outputs.iter().map(|o| o.num_local_clusters).collect(),
            samples,
            sample_device,
            sample_assignment: central.assignments,
            central_graph: central.graph,
            point_sample,
            point_cluster,
            privacy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CentralBackend, FedScConfig};
    use fedsc_clustering::clustering_accuracy;
    use fedsc_federated::partition::{partition_dataset, Partition};
    use fedsc_subspace::SubspaceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_synthetic(
        central: CentralBackend,
        l: usize,
        l_prime: usize,
        devices: usize,
        per_cluster: usize,
        seed: u64,
    ) -> (FedScOutput, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SubspaceModel::random(&mut rng, 20, 3, l);
        let ds = model.sample_dataset(&mut rng, &vec![per_cluster; l], 0.0);
        let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime }, &mut rng);
        let scheme = FedSc::new(FedScConfig::new(l, central));
        let out = scheme.run(&fed).unwrap();
        let truth = fed.global_truth();
        (out, truth)
    }

    #[test]
    fn fed_sc_ssc_clusters_heterogeneous_network() {
        let (out, truth) = run_synthetic(CentralBackend::Ssc, 4, 2, 20, 60, 1);
        let acc = clustering_accuracy(&truth, &out.predictions);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn fed_sc_tsc_clusters_heterogeneous_network() {
        let (out, truth) = run_synthetic(CentralBackend::Tsc { q: None }, 4, 2, 24, 72, 2);
        let acc = clustering_accuracy(&truth, &out.predictions);
        assert!(acc > 85.0, "accuracy {acc}");
    }

    #[test]
    fn one_shot_communication_accounting() {
        let (out, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 30, 3);
        // One uplink and one downlink message per device: one-shot.
        assert_eq!(out.comm.uplink_messages, 6);
        assert_eq!(out.comm.downlink_messages, 6);
        // Uplink bits match the Section IV-E formula n * q * sum r^(z),
        // where the sample count actually sent can be below r^(z) when a
        // spectral cluster came back empty.
        let total_samples = out.samples.cols() as u64;
        assert_eq!(out.comm.uplink_bits, 20 * 64 * total_samples);
    }

    #[test]
    fn sample_bookkeeping_is_consistent() {
        let (out, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 30, 4);
        assert_eq!(out.samples.cols(), out.sample_device.len());
        assert_eq!(out.samples.cols(), out.sample_assignment.len());
        // Devices appear in nondecreasing order in the pooled matrix.
        assert!(out.sample_device.windows(2).all(|w| w[0] <= w[1]));
        // Every point's representative sample belongs to its own device.
        for (g, &s) in out.point_sample.iter().enumerate() {
            if s != usize::MAX {
                assert_eq!(out.sample_device[s], out.point_cluster[g].0);
            }
        }
    }

    #[test]
    fn predictions_are_constant_within_local_clusters() {
        // Phase 3 relabels whole partitions: two points of the same local
        // cluster must share a global label.
        let (out, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 24, 5);
        let n = out.predictions.len();
        for i in 0..n {
            for j in 0..n {
                if out.point_cluster[i] == out.point_cluster[j] {
                    assert_eq!(out.predictions[i], out.predictions[j]);
                }
            }
        }
    }

    #[test]
    fn induced_graph_connects_local_clusters() {
        let (out, truth) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 30, 6);
        let g = out.induced_global_affinity();
        assert_eq!(g.len(), truth.len());
        // Same-cluster points are connected with weight 1.
        let (i, j) = {
            let mut found = (0, 0);
            'outer: for i in 0..truth.len() {
                for j in 0..i {
                    if out.point_cluster[i] == out.point_cluster[j] {
                        found = (i, j);
                        break 'outer;
                    }
                }
            }
            found
        };
        assert_eq!(g.weight(i, j), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 24, 7);
        let (b, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 24, 7);
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.comm, b.comm);
    }

    #[test]
    fn noise_robustness_small_delta() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = SubspaceModel::random(&mut rng, 20, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[80, 80, 80], 0.0);
        let fed = partition_dataset(&ds, 16, Partition::NonIid { l_prime: 2 }, &mut rng);
        let mut cfg = FedScConfig::new(3, CentralBackend::Ssc);
        cfg.channel.noise_delta = 0.01;
        let out = FedSc::new(cfg).run(&fed).unwrap();
        let acc = clustering_accuracy(&fed.global_truth(), &out.predictions);
        assert!(acc > 85.0, "accuracy under small noise {acc}");
    }

    #[test]
    fn dp_uplink_populates_ledger_and_costs_accuracy() {
        let mut rng = StdRng::seed_from_u64(31);
        let model = SubspaceModel::random(&mut rng, 20, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[60, 60, 60], 0.0);
        let fed = partition_dataset(&ds, 12, Partition::NonIid { l_prime: 2 }, &mut rng);
        let truth = fed.global_truth();
        let clean = {
            let cfg = FedScConfig::new(3, CentralBackend::Ssc);
            let out = FedSc::new(cfg).run(&fed).unwrap();
            assert_eq!(out.privacy.devices, 0); // DP off: empty ledger
            clustering_accuracy(&truth, &out.predictions)
        };
        let private = {
            let mut cfg = FedScConfig::new(3, CentralBackend::Ssc);
            cfg.dp = Some(fedsc_federated::privacy::DpConfig::new(2.0, 1e-5));
            let out = FedSc::new(cfg).run(&fed).unwrap();
            assert_eq!(out.privacy.devices, 12);
            assert!(out.privacy.max_device_epsilon >= 2.0);
            clustering_accuracy(&truth, &out.predictions)
        };
        // Strong privacy (eps = 2 per sample, sigma ~ 4.8 on unit vectors)
        // must cost accuracy.
        assert!(private < clean, "private {private} vs clean {clean}");
    }

    #[test]
    fn timing_fields_are_populated() {
        let (out, _) = run_synthetic(CentralBackend::Ssc, 3, 2, 6, 24, 9);
        assert!(out.sequential_time() >= out.local_timing.sequential);
        assert!(out.parallel_time() <= out.sequential_time() + out.server_time);
        assert_eq!(out.local_cluster_counts.len(), 6);
    }
}
