//! Mid-tier aggregator endpoint for a real-process hierarchical Fed-SC
//! round over TCP: the process form of one `fedsc-hier` aggregator node.
//!
//! Binds a listener for its children (devices or lower aggregators),
//! prints `listening <addr>` (flushed), collects `--children` uplinks
//! under the tier policy, pools them in ascending child order, merges
//! them with the eigengap-capped central clustering under the shared
//! `agg_seed(--seed, --tier, --node)` stream, forwards one representative
//! sample per merged cluster to the parent at `--addr` (as child
//! `--node` on the parent's fan-in), awaits the parent's labels, and
//! relays one composed downlink per included child:
//!
//! ```text
//! listening 127.0.0.1:40124
//! agg 0 reps 3 included 4
//! uplink_bytes 2464 downlink_bytes 448 envelope_bytes 0
//! ```
//!
//! Fleet telemetry: with `--telemetry` the aggregator absorbs its
//! children's in-band envelopes, estimates its clock offset to the
//! parent (timed handshake), shifts the whole subtree's spans into the
//! parent's clock, and forwards them — plus the merged metrics and its
//! own lane (`100 + --node`) — in-band on its uplink. Offsets compose
//! transitively, so the root receives root-clock timestamps directly.

use bytes::Bytes;
use fedsc::central::central_cluster_auto;
use fedsc::demo::{demo_fixture, demo_hier_fixture};
use fedsc::{agg_seed, collect_uplinks_fleet, pool_uplinks, RoundPolicy};
use fedsc_federated::channel::{DownlinkMessage, UplinkMessage};
use fedsc_linalg::Matrix;
use fedsc_obs::{FleetCollector, TraceContext};
use fedsc_transport::{
    with_retry, DeviceTransport, ServerTransport, TcpDevice, TcpOptions, TcpServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: SocketAddr,
    bind: SocketAddr,
    node: usize,
    tier: usize,
    parent: u64,
    children: usize,
    devices: usize,
    clusters: usize,
    seed: u64,
    quorum: Option<usize>,
    deadline_ms: u64,
    hier: bool,
    telemetry: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

const USAGE: &str = "usage: fedsc-agg --addr HOST:PORT --node N --children Z \
[--bind 127.0.0.1:0] [--tier 0] [--parent P] [--devices 12] [--clusters 3] \
[--seed 1] [--quorum N] [--deadline-ms 300000] [--hier] [--telemetry] \
[--trace-out trace.json] [--metrics-out metrics.json]";

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value\n{USAGE}")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}\n{USAGE}")),
        None => Ok(default),
    }
}

fn required<T: std::str::FromStr>(args: &[String], name: &str) -> Result<T, String> {
    flag_value(args, name)?
        .ok_or(format!("{name} is required\n{USAGE}"))?
        .parse()
        .map_err(|_| format!("invalid value for {name}\n{USAGE}"))
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    Ok(Args {
        addr: required(args, "--addr")?,
        bind: parsed(args, "--bind", SocketAddr::from(([127, 0, 0, 1], 0)))?,
        node: required(args, "--node")?,
        tier: parsed(args, "--tier", 0)?,
        parent: parsed(args, "--parent", 0)?,
        children: required(args, "--children")?,
        devices: parsed(args, "--devices", 12)?,
        clusters: parsed(args, "--clusters", 3)?,
        seed: parsed(args, "--seed", 1)?,
        quorum: flag_value(args, "--quorum")?
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --quorum: {v}\n{USAGE}"))
            })
            .transpose()?,
        deadline_ms: parsed(args, "--deadline-ms", 300_000)?,
        hier: args.iter().any(|a| a == "--hier"),
        telemetry: args.iter().any(|a| a == "--telemetry"),
        trace_out: flag_value(args, "--trace-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
    })
}

/// Exports the recorded spans / metrics snapshot to the requested paths.
fn write_observability(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let events = fedsc_obs::trace::uninstall();
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.metrics_out {
        let metrics = fedsc_obs::export::metrics_json(&fedsc_obs::metrics::snapshot());
        std::fs::write(path, metrics).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.children == 0 {
        return Err("--children must be positive".into());
    }
    if args.telemetry || args.trace_out.is_some() {
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // Only the config matters here; regenerating the shared fixture keeps
    // every process on the same parameters without shared state.
    let fixture = if args.hier {
        demo_hier_fixture
    } else {
        demo_fixture
    };
    let (_fed, cfg) = fixture(args.seed, args.devices, args.clusters);
    let policy = RoundPolicy {
        quorum: args.quorum,
        deadline: Duration::from_millis(args.deadline_ms),
        ..RoundPolicy::default()
    };
    let pid = 100 + args.node as u64;

    let mut server = TcpServer::bind(args.bind, TcpOptions::default())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout flush failed: {e}"))?;

    // ---- Collect, pool, merge — one fedsc-hier aggregator node. ----
    let agg_span = fedsc_obs::span("hier", "hier.agg_uplink")
        .field("tier", args.tier)
        .field("node", args.node)
        .field("children", args.children);
    let agg_span_id = agg_span.id();
    let mut fleet = FleetCollector::new();
    let payloads = collect_uplinks_fleet(
        &mut server,
        args.children,
        policy.deadline,
        Some(&mut fleet),
    )
    .map_err(|e| format!("{e}"))?;
    let received = payloads.iter().filter(|m| m.is_some()).count();
    drop(agg_span.field("received", received));
    if received < policy.required(args.children) {
        return Err("quorum not met before the tier deadline".into());
    }
    let (included, counts, pooled) = pool_uplinks(payloads).map_err(|e| format!("{e}"))?;
    if pooled.cols() == 0 {
        return Err("no samples to merge".into());
    }
    let mut rng = StdRng::seed_from_u64(agg_seed(args.seed, args.tier, args.node));
    let (central, l_merge) = central_cluster_auto(
        &pooled,
        cfg.num_clusters.min(pooled.cols()),
        included.len(),
        cfg.central,
        cfg.candidate_threshold,
        &mut rng,
    )
    .map_err(|e| format!("{e}"))?;
    let mut rep_slot = vec![usize::MAX; l_merge];
    let mut rep_cols: Vec<&[f64]> = Vec::with_capacity(l_merge);
    for (s, &m) in central.assignments.iter().enumerate() {
        if rep_slot[m] == usize::MAX {
            rep_slot[m] = rep_cols.len();
            rep_cols.push(pooled.col(s));
        }
    }
    let reps = rep_cols.len();
    let rep_mat = Matrix::from_columns(&rep_cols).map_err(|e| format!("{e}"))?;
    let inner = UplinkMessage {
        dim: rep_mat.rows(),
        samples: rep_mat,
    }
    .encode();

    // ---- Forward the representatives (plus the subtree's telemetry). ----
    let mut up = TcpDevice::new(args.addr, args.node, TcpOptions::default());
    let payload = if args.telemetry {
        let offset = up.clock_sync().map_err(|e| format!("clock sync: {e}"))?;
        fleet.add_local_events(&fedsc_obs::trace::drain(), pid);
        fleet.merge_metrics(&fedsc_obs::metrics::snapshot());
        fleet.shift(offset);
        let ctx = TraceContext {
            run_id: args.seed,
            round: 0,
            tier: (args.tier + 1) as u32,
            node: args.node as u64,
            parent: args.parent,
            pid,
            parent_span: agg_span_id,
        };
        Bytes::from(fleet.to_envelope(Some(ctx)).wrap(inner.as_slice()))
    } else {
        inner
    };
    with_retry(policy.max_retries, policy.retry_backoff, || {
        up.send_uplink(&payload)
    })
    .map_err(|e| format!("uplink to parent: {e}"))?;

    // ---- Compose and relay the parent's labels to the children. ----
    let reply = up
        .recv_downlink(policy.downlink_wait())
        .map_err(|e| format!("downlink from parent: {e}"))?;
    let down = DownlinkMessage::decode(reply).ok_or("malformed downlink from parent")?;
    if down.assignments.len() != reps {
        return Err("downlink assignment count mismatch at the aggregator".into());
    }
    let mut offset = 0usize;
    for (&c, &r) in included.iter().zip(counts.iter()) {
        let assignments: Vec<u32> = central.assignments[offset..offset + r]
            .iter()
            .map(|&m| down.assignments[rep_slot[m]])
            .collect();
        offset += r;
        let child_reply = DownlinkMessage { assignments }.encode();
        with_retry(policy.max_retries, policy.retry_backoff, || {
            server.send_downlink(c, &child_reply)
        })
        .map_err(|e| format!("downlink to child {c}: {e}"))?;
    }
    let stats = server.stats();
    drop(server);
    println!(
        "agg {} reps {} included {}",
        args.node,
        reps,
        included.len()
    );
    println!(
        "uplink_bytes {} downlink_bytes {} envelope_bytes {}",
        stats.bytes_received, stats.bytes_sent, fleet.envelope_bytes
    );
    write_observability(args)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|a| run(&a)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedsc-agg: {msg}");
            ExitCode::FAILURE
        }
    }
}
