//! Device endpoint for a real-process Fed-SC round over TCP.
//!
//! Regenerates the shared fixture from `--seed` (see `fedsc::demo`), takes
//! shard `--device z`, runs Algorithm 2 locally, uploads the samples to
//! the `fedsc-server` at `--addr`, awaits its assignments, and prints the
//! relabelled shard:
//!
//! ```text
//! device 4 predictions 0,0,2,1,0,2
//! ```
//!
//! Exits nonzero if the server excludes this device (no downlink ever
//! arrives) or the link fails beyond the retry budget.
//!
//! Observability: `--trace-out <path>` records this device's spans (local
//! SSC phases plus the wire round) as Chrome `trace_event` JSON;
//! `--metrics-out <path>` writes the flat `fedsc_obs` metrics snapshot.
//!
//! Fleet telemetry: with `--telemetry` the device estimates its clock
//! offset to the server (timed handshake), then ships its completed
//! spans and metrics snapshot **in-band** on the uplink, shifted into
//! the server's clock, under process lane `1000 + --device`. `--link-id`
//! is this endpoint's child index on the link it dials (defaults to
//! `--device`; they differ when dialing a `fedsc-agg` mid-tier), and
//! `--parent` names that parent node in the trace context.

use fedsc::demo::{demo_fixture, demo_hier_fixture};
use fedsc::{device_round_traced, RoundPolicy, WireTelemetry};
use fedsc_obs::TraceContext;
use fedsc_transport::{TcpDevice, TcpOptions};
use std::net::SocketAddr;
use std::process::ExitCode;

struct Args {
    addr: SocketAddr,
    device: usize,
    link_id: Option<usize>,
    parent: u64,
    devices: usize,
    clusters: usize,
    seed: u64,
    hier: bool,
    telemetry: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

const USAGE: &str = "usage: fedsc-device --addr HOST:PORT --device Z \
[--link-id N] [--parent P] [--devices 12] [--clusters 3] [--seed 1] \
[--hier] [--telemetry] [--trace-out trace.json] [--metrics-out metrics.json]";

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value\n{USAGE}")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}\n{USAGE}")),
        None => Ok(default),
    }
}

fn required<T: std::str::FromStr>(args: &[String], name: &str) -> Result<T, String> {
    flag_value(args, name)?
        .ok_or(format!("{name} is required\n{USAGE}"))?
        .parse()
        .map_err(|_| format!("invalid value for {name}\n{USAGE}"))
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    Ok(Args {
        addr: required(args, "--addr")?,
        device: required(args, "--device")?,
        link_id: flag_value(args, "--link-id")?
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --link-id: {v}\n{USAGE}"))
            })
            .transpose()?,
        parent: parsed(args, "--parent", 0)?,
        devices: parsed(args, "--devices", 12)?,
        clusters: parsed(args, "--clusters", 3)?,
        seed: parsed(args, "--seed", 1)?,
        hier: args.iter().any(|a| a == "--hier"),
        telemetry: args.iter().any(|a| a == "--telemetry"),
        trace_out: flag_value(args, "--trace-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
    })
}

/// Exports the recorded spans / metrics snapshot to the requested paths.
fn write_observability(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let events = fedsc_obs::trace::uninstall();
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.metrics_out {
        let metrics = fedsc_obs::export::metrics_json(&fedsc_obs::metrics::snapshot());
        std::fs::write(path, metrics).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.device >= args.devices {
        return Err(format!(
            "--device {} out of range for --devices {}",
            args.device, args.devices
        ));
    }
    if args.telemetry || args.trace_out.is_some() {
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // `--hier` selects the aggregation-friendly fixture shared by a
    // fleet with `fedsc-agg` mid-tiers (see `fedsc::demo`).
    let fixture = if args.hier {
        demo_hier_fixture
    } else {
        demo_fixture
    };
    let (fed, cfg) = fixture(args.seed, args.devices, args.clusters);
    let link_id = args.link_id.unwrap_or(args.device);
    let pid = 1000 + args.device as u64;
    let telemetry = if args.telemetry {
        WireTelemetry {
            ctx: Some(TraceContext {
                run_id: args.seed,
                round: 0,
                tier: 0,
                node: link_id as u64,
                parent: args.parent,
                pid,
                parent_span: 0,
            }),
            ship: true,
            pid,
        }
    } else {
        WireTelemetry::default()
    };
    let mut link = TcpDevice::new(args.addr, link_id, TcpOptions::default());
    let predictions = device_round_traced(
        &fed.devices[args.device].data,
        args.device,
        &cfg,
        &mut link,
        &RoundPolicy::default(),
        &telemetry,
    )
    .map_err(|e| format!("{e}"))?;
    let list: Vec<String> = predictions.iter().map(usize::to_string).collect();
    println!("device {} predictions {}", args.device, list.join(","));
    write_observability(args)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|a| run(&a)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedsc-device: {msg}");
            ExitCode::FAILURE
        }
    }
}
