//! Central-server endpoint for a real-process Fed-SC round over TCP.
//!
//! Binds a listener, prints `listening <addr>` (flushed, so a parent
//! process piping stdout can scrape the ephemeral port), collects uplinks
//! from `--devices` clients under the straggler policy, runs the central
//! clustering, answers each included device, and prints a summary:
//!
//! ```text
//! listening 127.0.0.1:40123
//! excluded 3
//! uplink_bytes 5664 downlink_bytes 1248
//! ```
//!
//! `excluded -` means no device missed the deadline. The dataset/config
//! fixture is regenerated from `--seed` (see `fedsc::demo`), so the server
//! and its `fedsc-device` peers agree on every parameter without sharing
//! state.
//!
//! Observability: `--trace-out <path>` records structured spans for the
//! round and writes them as Chrome `trace_event` JSON (load in Perfetto or
//! `chrome://tracing`); `--metrics-out <path>` writes the flat
//! `fedsc_obs` metrics snapshot (wire/transport counters) as JSON.

use fedsc::demo::demo_fixture;
use fedsc::{server_round, RoundPolicy};
use fedsc_transport::{ServerTransport, TcpOptions, TcpServer};
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: SocketAddr,
    devices: usize,
    clusters: usize,
    seed: u64,
    quorum: Option<usize>,
    deadline_ms: u64,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

const USAGE: &str = "usage: fedsc-server [--addr 127.0.0.1:0] [--devices 12] \
[--clusters 3] [--seed 1] [--quorum N] [--deadline-ms 300000] \
[--trace-out trace.json] [--metrics-out metrics.json]";

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value\n{USAGE}")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}\n{USAGE}")),
        None => Ok(default),
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    Ok(Args {
        addr: parsed(args, "--addr", SocketAddr::from(([127, 0, 0, 1], 0)))?,
        devices: parsed(args, "--devices", 12)?,
        clusters: parsed(args, "--clusters", 3)?,
        seed: parsed(args, "--seed", 1)?,
        quorum: flag_value(args, "--quorum")?
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --quorum: {v}\n{USAGE}"))
            })
            .transpose()?,
        deadline_ms: parsed(args, "--deadline-ms", 300_000)?,
        trace_out: flag_value(args, "--trace-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
    })
}

/// Exports the recorded spans / metrics snapshot to the requested paths.
fn write_observability(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let events = fedsc_obs::trace::uninstall();
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.metrics_out {
        let metrics = fedsc_obs::export::metrics_json(&fedsc_obs::metrics::snapshot());
        std::fs::write(path, metrics).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.devices == 0 {
        return Err("--devices must be positive".into());
    }
    if args.trace_out.is_some() {
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // Only the config matters server-side; regenerating the full fixture
    // guarantees it cannot drift from what the device processes use.
    let (_fed, cfg) = demo_fixture(args.seed, args.devices, args.clusters);
    let policy = RoundPolicy {
        quorum: args.quorum,
        deadline: Duration::from_millis(args.deadline_ms),
        ..RoundPolicy::default()
    };
    let mut server = TcpServer::bind(args.addr, TcpOptions::default())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening {}", server.local_addr());
    // Stdout is block-buffered when piped; the parent is waiting on this
    // line to learn the port.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout flush failed: {e}"))?;

    let excluded =
        server_round(&mut server, args.devices, &cfg, &policy).map_err(|e| format!("{e}"))?;
    let stats = server.stats();
    drop(server); // closes links so excluded devices stop waiting
    if excluded.is_empty() {
        println!("excluded -");
    } else {
        let list: Vec<String> = excluded.iter().map(usize::to_string).collect();
        println!("excluded {}", list.join(","));
    }
    println!(
        "uplink_bytes {} downlink_bytes {}",
        stats.bytes_received, stats.bytes_sent
    );
    write_observability(args)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|a| run(&a)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedsc-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
