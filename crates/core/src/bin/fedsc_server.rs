//! Central-server endpoint for a real-process Fed-SC round over TCP.
//!
//! Binds a listener, prints `listening <addr>` (flushed, so a parent
//! process piping stdout can scrape the ephemeral port), collects uplinks
//! from `--devices` clients under the straggler policy, runs the central
//! clustering, answers each included device, and prints a summary:
//!
//! ```text
//! listening 127.0.0.1:40123
//! excluded 3
//! uplink_bytes 5664 downlink_bytes 1248
//! ```
//!
//! `excluded -` means no device missed the deadline. The dataset/config
//! fixture is regenerated from `--seed` (see `fedsc::demo`), so the server
//! and its `fedsc-device` peers agree on every parameter without sharing
//! state.

use fedsc::demo::demo_fixture;
use fedsc::{server_round, RoundPolicy};
use fedsc_transport::{ServerTransport, TcpOptions, TcpServer};
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: SocketAddr,
    devices: usize,
    clusters: usize,
    seed: u64,
    quorum: Option<usize>,
    deadline_ms: u64,
}

const USAGE: &str = "usage: fedsc-server [--addr 127.0.0.1:0] [--devices 12] \
[--clusters 3] [--seed 1] [--quorum N] [--deadline-ms 300000]";

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value\n{USAGE}")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}\n{USAGE}")),
        None => Ok(default),
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    Ok(Args {
        addr: parsed(args, "--addr", SocketAddr::from(([127, 0, 0, 1], 0)))?,
        devices: parsed(args, "--devices", 12)?,
        clusters: parsed(args, "--clusters", 3)?,
        seed: parsed(args, "--seed", 1)?,
        quorum: flag_value(args, "--quorum")?
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --quorum: {v}\n{USAGE}"))
            })
            .transpose()?,
        deadline_ms: parsed(args, "--deadline-ms", 300_000)?,
    })
}

fn run(args: &Args) -> Result<(), String> {
    if args.devices == 0 {
        return Err("--devices must be positive".into());
    }
    // Only the config matters server-side; regenerating the full fixture
    // guarantees it cannot drift from what the device processes use.
    let (_fed, cfg) = demo_fixture(args.seed, args.devices, args.clusters);
    let policy = RoundPolicy {
        quorum: args.quorum,
        deadline: Duration::from_millis(args.deadline_ms),
        ..RoundPolicy::default()
    };
    let mut server = TcpServer::bind(args.addr, TcpOptions::default())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening {}", server.local_addr());
    // Stdout is block-buffered when piped; the parent is waiting on this
    // line to learn the port.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout flush failed: {e}"))?;

    let excluded =
        server_round(&mut server, args.devices, &cfg, &policy).map_err(|e| format!("{e}"))?;
    let stats = server.stats();
    drop(server); // closes links so excluded devices stop waiting
    if excluded.is_empty() {
        println!("excluded -");
    } else {
        let list: Vec<String> = excluded.iter().map(usize::to_string).collect();
        println!("excluded {}", list.join(","));
    }
    println!(
        "uplink_bytes {} downlink_bytes {}",
        stats.bytes_received, stats.bytes_sent
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|a| run(&a)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedsc-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
