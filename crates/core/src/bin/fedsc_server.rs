//! Central-server endpoint for a real-process Fed-SC round over TCP.
//!
//! Binds a listener, prints `listening <addr>` (flushed, so a parent
//! process piping stdout can scrape the ephemeral port), collects uplinks
//! from `--devices` clients under the straggler policy, runs the central
//! clustering, answers each included device, and prints a summary:
//!
//! ```text
//! listening 127.0.0.1:40123
//! excluded 3
//! uplink_bytes 5664 downlink_bytes 1248
//! envelope_bytes 0
//! ```
//!
//! `excluded -` means no device missed the deadline. The dataset/config
//! fixture is regenerated from `--seed` (see `fedsc::demo`), so the server
//! and its `fedsc-device` peers agree on every parameter without sharing
//! state.
//!
//! Observability: `--trace-out <path>` records structured spans for the
//! round and writes them as Chrome `trace_event` JSON (load in Perfetto or
//! `chrome://tracing`); `--metrics-out <path>` writes the flat
//! `fedsc_obs` metrics snapshot (wire/transport counters) as JSON.
//!
//! Fleet telemetry: with `--telemetry` the server absorbs the in-band
//! envelopes its children attached (`--telemetry` on `fedsc-device` /
//! `fedsc-agg`). `--fleet-trace-out <path>` writes ONE merged Chrome
//! trace with a `pid` lane per process, all timestamps in this root's
//! clock; `--fleet-metrics-out <path>` writes the fleet-wide merged
//! metrics snapshot. `envelope_bytes` in the summary is the exact uplink
//! payload overhead the telemetry added (always 0 when children ship
//! nothing).

use fedsc::demo::{demo_fixture, demo_hier_fixture};
use fedsc::{server_round_fleet, RoundPolicy};
use fedsc_obs::FleetCollector;
use fedsc_transport::{ServerTransport, TcpOptions, TcpServer};
use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: SocketAddr,
    devices: usize,
    clusters: usize,
    seed: u64,
    quorum: Option<usize>,
    deadline_ms: u64,
    hier: bool,
    telemetry: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    fleet_trace_out: Option<String>,
    fleet_metrics_out: Option<String>,
}

const USAGE: &str = "usage: fedsc-server [--addr 127.0.0.1:0] [--devices 12] \
[--clusters 3] [--seed 1] [--quorum N] [--deadline-ms 300000] [--hier] [--telemetry] \
[--trace-out trace.json] [--metrics-out metrics.json] \
[--fleet-trace-out fleet.json] [--fleet-metrics-out fleet-metrics.json]";

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value\n{USAGE}")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}\n{USAGE}")),
        None => Ok(default),
    }
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    Ok(Args {
        addr: parsed(args, "--addr", SocketAddr::from(([127, 0, 0, 1], 0)))?,
        devices: parsed(args, "--devices", 12)?,
        clusters: parsed(args, "--clusters", 3)?,
        seed: parsed(args, "--seed", 1)?,
        quorum: flag_value(args, "--quorum")?
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --quorum: {v}\n{USAGE}"))
            })
            .transpose()?,
        deadline_ms: parsed(args, "--deadline-ms", 300_000)?,
        hier: args.iter().any(|a| a == "--hier"),
        telemetry: args.iter().any(|a| a == "--telemetry"),
        trace_out: flag_value(args, "--trace-out")?,
        metrics_out: flag_value(args, "--metrics-out")?,
        fleet_trace_out: flag_value(args, "--fleet-trace-out")?,
        fleet_metrics_out: flag_value(args, "--fleet-metrics-out")?,
    })
}

/// Human-readable lane name for the fleet trace's process metadata.
fn lane_name(pid: u64) -> String {
    match pid {
        1 => "root".to_string(),
        p if p >= 1000 => format!("device-{}", p - 1000),
        p if p >= 100 => format!("agg-{}", p - 100),
        p => format!("proc-{p}"),
    }
}

/// Exports local and fleet-merged observability to the requested paths.
fn write_observability(args: &Args, mut fleet: FleetCollector) -> Result<(), String> {
    let tracing = args.telemetry || args.trace_out.is_some();
    let events = if tracing {
        fedsc_obs::trace::uninstall()
    } else {
        Vec::new()
    };
    if let Some(path) = &args.trace_out {
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.metrics_out {
        let metrics = fedsc_obs::export::metrics_json(&fedsc_obs::metrics::snapshot());
        std::fs::write(path, metrics).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if args.fleet_trace_out.is_none() && args.fleet_metrics_out.is_none() {
        return Ok(());
    }
    // The root's own lane and registry join the absorbed subtree before
    // the merged exports; timestamps are already in this clock.
    fleet.add_local_events(&events, 1);
    fleet.merge_metrics(&fedsc_obs::metrics::snapshot());
    if let Some(path) = &args.fleet_trace_out {
        let names: Vec<(u64, String)> = fleet.pids().iter().map(|&p| (p, lane_name(p))).collect();
        let trace = fedsc_obs::export::fleet_chrome_trace_json(&fleet.spans, &names);
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.fleet_metrics_out {
        let metrics = fedsc_obs::export::metrics_json(&fleet.metrics);
        std::fs::write(path, metrics).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.devices == 0 {
        return Err("--devices must be positive".into());
    }
    if args.telemetry || args.trace_out.is_some() {
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // Only the config matters server-side; regenerating the full fixture
    // guarantees it cannot drift from what the device processes use.
    // `--hier` selects the aggregation-friendly fixture a fleet of
    // `fedsc-agg` mid-tiers shares (see `fedsc::demo`).
    let fixture = if args.hier {
        demo_hier_fixture
    } else {
        demo_fixture
    };
    let (_fed, cfg) = fixture(args.seed, args.devices, args.clusters);
    let policy = RoundPolicy {
        quorum: args.quorum,
        deadline: Duration::from_millis(args.deadline_ms),
        ..RoundPolicy::default()
    };
    let mut server = TcpServer::bind(args.addr, TcpOptions::default())
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("listening {}", server.local_addr());
    // Stdout is block-buffered when piped; the parent is waiting on this
    // line to learn the port.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout flush failed: {e}"))?;

    let mut fleet = FleetCollector::new();
    let excluded = server_round_fleet(&mut server, args.devices, &cfg, &policy, Some(&mut fleet))
        .map_err(|e| format!("{e}"))?;
    let stats = server.stats();
    drop(server); // closes links so excluded devices stop waiting
    if excluded.is_empty() {
        println!("excluded -");
    } else {
        let list: Vec<String> = excluded.iter().map(usize::to_string).collect();
        println!("excluded {}", list.join(","));
    }
    println!(
        "uplink_bytes {} downlink_bytes {}",
        stats.bytes_received, stats.bytes_sent
    );
    println!("envelope_bytes {}", fleet.envelope_bytes);
    write_observability(args, fleet)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|a| run(&a)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedsc-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
