//! Out-of-sample extension: assign points that were *not* part of the
//! one-shot round to the global clusters, using only information the
//! federation already shares.
//!
//! After a Fed-SC run the server holds the pooled samples `Theta` and their
//! global assignments `tau`. A new point (on any device) can be labeled
//! locally without another round: for each global cluster, estimate the
//! subspace spanned by that cluster's samples and pick the cluster whose
//! subspace explains the point best (largest projection-energy ratio
//! `||P_l x||^2 / ||x||^2`). This is exactly the residual-minimization rule
//! classical SC uses for unseen data, run against Fed-SC's shared sketch
//! instead of raw data — so the privacy and communication story of the
//! one-shot round is unchanged.

use crate::scheme::FedScOutput;
use fedsc_linalg::svd::dominant_basis;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};

/// A server-side (or broadcast) classifier for unseen points, built from
/// the pooled samples of a completed Fed-SC run.
#[derive(Debug, Clone)]
pub struct ClusterAssigner {
    /// One orthonormal basis per global cluster, estimated from that
    /// cluster's samples.
    bases: Vec<Matrix>,
}

impl ClusterAssigner {
    /// Builds the assigner from a run's pooled samples and assignments.
    ///
    /// `max_dim` caps each cluster's estimated subspace dimension (pass the
    /// data's expected subspace dimension; it is further capped by the
    /// cluster's sample count). Clusters with no samples get an empty basis
    /// and are never selected.
    pub fn from_output(output: &FedScOutput, num_clusters: usize, max_dim: usize) -> Result<Self> {
        let dim = output.samples.rows();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
        for (s, &tau) in output.sample_assignment.iter().enumerate() {
            if tau < num_clusters {
                members[tau].push(s);
            }
        }
        let mut bases = Vec::with_capacity(num_clusters);
        for m in members {
            if m.is_empty() {
                bases.push(Matrix::zeros(dim, 0));
                continue;
            }
            let cluster = output.samples.select_columns(&m);
            let d = max_dim.clamp(1, cluster.cols().min(dim));
            bases.push(dominant_basis(&cluster, d)?);
        }
        Ok(Self { bases })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.bases.len()
    }

    /// Assigns one point: the cluster whose subspace captures the largest
    /// fraction of the point's energy. Returns the label and that ratio in
    /// `[0, 1]` (a confidence proxy).
    ///
    /// Returns an error when the point's dimension does not match.
    pub fn assign(&self, x: &[f64]) -> Result<(usize, f64)> {
        let norm_sq = vector::dot(x, x);
        if norm_sq <= 0.0 {
            return Err(LinalgError::InvalidArgument(
                "cannot assign the zero vector",
            ));
        }
        let mut best = (0usize, f64::NEG_INFINITY);
        for (l, basis) in self.bases.iter().enumerate() {
            if basis.cols() == 0 {
                continue;
            }
            let coeff = basis.tr_matvec(x)?;
            let energy = vector::dot(&coeff, &coeff) / norm_sq;
            if energy > best.1 {
                best = (l, energy);
            }
        }
        if best.1 < 0.0 {
            return Err(LinalgError::InvalidArgument("no cluster has samples"));
        }
        Ok(best)
    }

    /// Assigns every column of `points`.
    pub fn assign_all(&self, points: &Matrix) -> Result<Vec<usize>> {
        (0..points.cols())
            .map(|j| self.assign(points.col(j)).map(|(l, _)| l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CentralBackend, FedScConfig};
    use crate::scheme::FedSc;
    use fedsc_clustering::clustering_accuracy;
    use fedsc_federated::partition::{partition_dataset, Partition};
    use fedsc_subspace::SubspaceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_and_build(seed: u64) -> (ClusterAssigner, SubspaceModel, FedScOutput, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SubspaceModel::random(&mut rng, 30, 3, 4);
        let ds = model.sample_dataset(&mut rng, &[60, 60, 60, 60], 0.0);
        let fed = partition_dataset(&ds, 20, Partition::NonIid { l_prime: 2 }, &mut rng);
        let out = FedSc::new(FedScConfig::new(4, CentralBackend::Ssc))
            .run(&fed)
            .unwrap();
        let truth = fed.global_truth();
        let assigner = ClusterAssigner::from_output(&out, 4, 3).unwrap();
        (assigner, model, out, truth)
    }

    #[test]
    fn unseen_points_get_consistent_labels() {
        let (assigner, model, out, truth) = run_and_build(1);
        // The assigner's labels on unseen points must agree with the run's
        // clustering of seen points (same permutation): evaluate accuracy
        // of assigner labels vs truth *through* the run's confusion.
        let mut rng = StdRng::seed_from_u64(99);
        let mut new_truth = Vec::new();
        let mut new_pred = Vec::new();
        for l in 0..4 {
            for _ in 0..20 {
                let x = model.sample_point(&mut rng, l);
                let (label, conf) = assigner.assign(&x).unwrap();
                assert!(conf > 0.8, "confidence {conf}");
                new_truth.push(l);
                new_pred.push(label);
            }
        }
        // Consistency: combined (seen + unseen) accuracy stays high, which
        // forces the unseen labels into the same permutation as the run's.
        let mut all_truth = truth.clone();
        all_truth.extend_from_slice(&new_truth);
        let mut all_pred = out.predictions.clone();
        all_pred.extend_from_slice(&new_pred);
        let acc = clustering_accuracy(&all_truth, &all_pred);
        assert!(acc > 95.0, "combined accuracy {acc}");
    }

    #[test]
    fn confidence_reflects_subspace_membership() {
        let (assigner, model, _, _) = run_and_build(2);
        let mut rng = StdRng::seed_from_u64(5);
        // In-subspace point: near-1 confidence.
        let x = model.sample_point(&mut rng, 0);
        let (_, conf_in) = assigner.assign(&x).unwrap();
        assert!(conf_in > 0.9);
        // Random ambient point: markedly lower energy capture.
        let y = fedsc_linalg::random::unit_sphere(&mut rng, 30);
        let (_, conf_out) = assigner.assign(&y).unwrap();
        assert!(conf_out < conf_in, "{conf_out} vs {conf_in}");
    }

    #[test]
    fn zero_vector_rejected() {
        let (assigner, _, _, _) = run_and_build(3);
        assert!(assigner.assign(&[0.0; 30]).is_err());
    }

    #[test]
    fn assign_all_matches_pointwise() {
        let (assigner, model, _, _) = run_and_build(4);
        let mut rng = StdRng::seed_from_u64(6);
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|i| model.sample_point(&mut rng, i % 4))
            .collect();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let m = Matrix::from_columns(&refs).unwrap();
        let batch = assigner.assign_all(&m).unwrap();
        for (j, p) in pts.iter().enumerate() {
            assert_eq!(batch[j], assigner.assign(p).unwrap().0);
        }
    }
}
