//! Phase 2 of Algorithm 1: central clustering of the pooled samples.
//!
//! The pooled `Theta` is uniformly distributed on the unit spheres of the
//! estimated subspaces — the semi-random model — so the server may run
//! either SSC or TSC (the paper's Fed-SC (SSC) / Fed-SC (TSC) variants).
//! The TSC neighbor count defaults to the paper's rule
//! `q = max(3, ceil(Z / L))`.

use crate::config::CentralBackend;
use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_clustering::spectral_clustering_sparse;
use fedsc_graph::laplacian::{laplacian_spectrum, relative_eigengap_cluster_count};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{Matrix, Result};
use fedsc_subspace::{CandidateOptions, Ssc, SubspaceClusterer, Tsc};
use rand::Rng;

/// Result of the central clustering step.
#[derive(Debug, Clone)]
pub struct CentralOutput {
    /// Global cluster assignment `tau` per pooled sample.
    pub assignments: Vec<usize>,
    /// The affinity graph the server built over the samples (used for the
    /// induced global graph and the CONN diagnostics).
    pub graph: AffinityGraph,
}

/// Clusters the pooled samples into `l` global clusters.
///
/// `num_devices` feeds the TSC `q` rule; it is ignored by the SSC backend.
/// `candidate_threshold` is the pooled-sample count at or above which the
/// SSC backend switches to the subquadratic sketched-candidate pipeline:
/// sparse CSR affinity straight from the certified codes, spectral
/// clustering through the kernel-seeded thick-restart block Lanczos on
/// the CSR Laplacian (DESIGN.md §13; the dense `tred2`/`tql2` still runs
/// below the measured `lanczos_beats_dense` cutover inside that path).
/// Below the threshold (and for TSC) the dense path runs
/// bitwise-unchanged.
pub fn central_cluster<R: Rng + ?Sized>(
    samples: &Matrix,
    l: usize,
    num_devices: usize,
    backend: CentralBackend,
    candidate_threshold: usize,
    rng: &mut R,
) -> Result<CentralOutput> {
    let opts = SpectralOptions::new(l);
    let graph = match backend {
        CentralBackend::Ssc => {
            let ssc = Ssc {
                candidates: Some(CandidateOptions {
                    min_points: candidate_threshold,
                    ..CandidateOptions::default()
                }),
                ..Ssc::default()
            };
            if ssc.uses_candidates(samples.cols()) {
                // Subquadratic route: certified sparse codes -> CSR
                // affinity -> CSR spectral. The dense graph is kept only
                // for the CONN diagnostics downstream.
                let w = ssc.sparse_affinity(samples)?;
                let assignments = spectral_clustering_sparse(&w, &opts, rng)?;
                return Ok(CentralOutput {
                    assignments,
                    graph: w.to_graph(),
                });
            }
            ssc.affinity(samples)?
        }
        CentralBackend::Tsc { q } => {
            let q = q.unwrap_or_else(|| Tsc::fed_sc_q(num_devices, l));
            Tsc::new(q).affinity(samples)?
        }
    };
    let assignments = spectral_clustering(&graph, &opts, rng)?;
    Ok(CentralOutput { assignments, graph })
}

/// Like [`central_cluster`], but **estimates** the cluster count by the
/// relative eigengap of the affinity Laplacian, capped at `l_max`,
/// instead of taking it as given. This is the aggregation-tree variant:
/// an intermediate aggregator's subtree may cover only a subset of the
/// `L` global clusters, and forcing `L` partitions onto fewer natural
/// groups makes spectral k-means split — and worse, mix — subspaces.
///
/// Returns the output together with the estimated count. Above
/// `candidate_threshold` the subquadratic route runs with `l_max`
/// directly: the dense spectrum the eigengap needs is exactly what that
/// route avoids, and tiers pooling thousands of samples cover nearly
/// every cluster anyway.
pub fn central_cluster_auto<R: Rng + ?Sized>(
    samples: &Matrix,
    l_max: usize,
    num_devices: usize,
    backend: CentralBackend,
    candidate_threshold: usize,
    rng: &mut R,
) -> Result<(CentralOutput, usize)> {
    let graph = match backend {
        CentralBackend::Ssc => {
            let ssc = Ssc {
                candidates: Some(CandidateOptions {
                    min_points: candidate_threshold,
                    ..CandidateOptions::default()
                }),
                ..Ssc::default()
            };
            if ssc.uses_candidates(samples.cols()) {
                let out = central_cluster(
                    samples,
                    l_max,
                    num_devices,
                    backend,
                    candidate_threshold,
                    rng,
                )?;
                return Ok((out, l_max));
            }
            ssc.affinity(samples)?
        }
        CentralBackend::Tsc { q } => {
            let q = q.unwrap_or_else(|| Tsc::fed_sc_q(num_devices, l_max));
            Tsc::new(q).affinity(samples)?
        }
    };
    let spec = laplacian_spectrum(&graph)?;
    let gap = relative_eigengap_cluster_count(&spec.eigenvalues, Some(l_max));
    // Floor the estimate at the affinity's connected-component count: the
    // components are a hard lower bound on the natural cluster count, and
    // under-estimating merges subspaces — unrecoverable downstream, while
    // over-splitting merely costs the parent an extra representative.
    let comps = graph
        .connected_components(1e-9)
        .iter()
        .max()
        .map_or(1, |&m| m + 1);
    let l = gap.max(comps).clamp(1, l_max.min(samples.cols()).max(1));
    let assignments = spectral_clustering(&graph, &SpectralOptions::new(l), rng)?;
    Ok((CentralOutput { assignments, graph }, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsc_clustering::clustering_accuracy;
    use fedsc_linalg::random::{random_orthonormal_basis, sample_on_subspace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulates the semi-random model: samples uniform on the unit spheres
    /// of random subspaces (exactly what devices upload).
    fn semi_random_samples(
        rng: &mut StdRng,
        n: usize,
        d: usize,
        l: usize,
        per: usize,
    ) -> (Matrix, Vec<usize>) {
        let bases: Vec<_> = (0..l)
            .map(|_| random_orthonormal_basis(rng, n, d))
            .collect();
        let mut cols = Vec::new();
        let mut truth = Vec::new();
        for (s, basis) in bases.iter().enumerate() {
            for _ in 0..per {
                cols.push(sample_on_subspace(rng, basis));
                truth.push(s);
            }
        }
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        (Matrix::from_columns(&refs).unwrap(), truth)
    }

    #[test]
    fn ssc_backend_clusters_semi_random_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 15);
        let out = central_cluster(&samples, 3, 45, CentralBackend::Ssc, 2048, &mut rng).unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 95.0, "accuracy {acc}");
    }

    #[test]
    fn tsc_backend_clusters_semi_random_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 20);
        let out = central_cluster(
            &samples,
            3,
            60,
            CentralBackend::Tsc { q: None },
            2048,
            &mut rng,
        )
        .unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn fixed_q_override() {
        let mut rng = StdRng::seed_from_u64(3);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 2, 15);
        let out = central_cluster(
            &samples,
            2,
            30,
            CentralBackend::Tsc { q: Some(5) },
            2048,
            &mut rng,
        )
        .unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn candidate_route_matches_dense_central_clustering() {
        // Drop the threshold so the pooled samples route through the
        // sketched-candidate pipeline; the certified codes and the dense
        // cutover inside the sparse spectral path must reproduce the dense
        // run exactly on a seeded problem.
        let mut rng = StdRng::seed_from_u64(9);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 15);
        let mut dense_rng = StdRng::seed_from_u64(77);
        let dense = central_cluster(
            &samples,
            3,
            45,
            CentralBackend::Ssc,
            usize::MAX,
            &mut dense_rng,
        )
        .unwrap();
        let mut cand_rng = StdRng::seed_from_u64(77);
        let cand = central_cluster(&samples, 3, 45, CentralBackend::Ssc, 2, &mut cand_rng).unwrap();
        assert_eq!(cand.assignments, dense.assignments);
        let acc = clustering_accuracy(&truth, &cand.assignments);
        assert!(acc > 95.0, "accuracy {acc}");
        let n = dense.graph.len();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (dense.graph.weight(i, j), cand.graph.weight(i, j));
                assert!((a - b).abs() < 1e-6, "weight ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn threshold_boundary_routes_agree() {
        // The dense/CSR cutover fires at `n >= candidate_threshold`.
        // Straddle the boundary with the same n-sample pool: threshold
        // n+1 keeps the dense path, n and n-1 take the sketched-candidate
        // path, and all three must agree sample for sample.
        let mut rng = StdRng::seed_from_u64(21);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 15);
        let n = samples.cols();
        let route = |threshold: usize| {
            let mut rng = StdRng::seed_from_u64(55);
            central_cluster(&samples, 3, 45, CentralBackend::Ssc, threshold, &mut rng)
                .expect("central clustering at the threshold boundary")
        };
        let dense = route(n + 1);
        let at = route(n);
        let below = route(n - 1);
        assert_eq!(at.assignments, dense.assignments, "threshold == n");
        assert_eq!(below.assignments, dense.assignments, "threshold == n - 1");
        let acc = clustering_accuracy(&truth, &dense.assignments);
        assert!(acc > 95.0, "accuracy {acc}");
    }

    #[test]
    fn graph_is_returned_for_diagnostics() {
        let mut rng = StdRng::seed_from_u64(4);
        let (samples, _) = semi_random_samples(&mut rng, 10, 2, 2, 5);
        let out = central_cluster(&samples, 2, 10, CentralBackend::Ssc, 2048, &mut rng).unwrap();
        assert_eq!(out.graph.len(), 10);
        assert_eq!(out.assignments.len(), 10);
    }
}
