//! Phase 2 of Algorithm 1: central clustering of the pooled samples.
//!
//! The pooled `Theta` is uniformly distributed on the unit spheres of the
//! estimated subspaces — the semi-random model — so the server may run
//! either SSC or TSC (the paper's Fed-SC (SSC) / Fed-SC (TSC) variants).
//! The TSC neighbor count defaults to the paper's rule
//! `q = max(3, ceil(Z / L))`.

use crate::config::CentralBackend;
use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::{Matrix, Result};
use fedsc_subspace::{Ssc, SubspaceClusterer, Tsc};
use rand::Rng;

/// Result of the central clustering step.
#[derive(Debug, Clone)]
pub struct CentralOutput {
    /// Global cluster assignment `tau` per pooled sample.
    pub assignments: Vec<usize>,
    /// The affinity graph the server built over the samples (used for the
    /// induced global graph and the CONN diagnostics).
    pub graph: AffinityGraph,
}

/// Clusters the pooled samples into `l` global clusters.
///
/// `num_devices` feeds the TSC `q` rule; it is ignored by the SSC backend.
pub fn central_cluster<R: Rng + ?Sized>(
    samples: &Matrix,
    l: usize,
    num_devices: usize,
    backend: CentralBackend,
    rng: &mut R,
) -> Result<CentralOutput> {
    let graph = match backend {
        CentralBackend::Ssc => Ssc::default().affinity(samples)?,
        CentralBackend::Tsc { q } => {
            let q = q.unwrap_or_else(|| Tsc::fed_sc_q(num_devices, l));
            Tsc::new(q).affinity(samples)?
        }
    };
    let assignments = spectral_clustering(&graph, &SpectralOptions::new(l), rng)?;
    Ok(CentralOutput { assignments, graph })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsc_clustering::clustering_accuracy;
    use fedsc_linalg::random::{random_orthonormal_basis, sample_on_subspace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulates the semi-random model: samples uniform on the unit spheres
    /// of random subspaces (exactly what devices upload).
    fn semi_random_samples(
        rng: &mut StdRng,
        n: usize,
        d: usize,
        l: usize,
        per: usize,
    ) -> (Matrix, Vec<usize>) {
        let bases: Vec<_> = (0..l)
            .map(|_| random_orthonormal_basis(rng, n, d))
            .collect();
        let mut cols = Vec::new();
        let mut truth = Vec::new();
        for (s, basis) in bases.iter().enumerate() {
            for _ in 0..per {
                cols.push(sample_on_subspace(rng, basis));
                truth.push(s);
            }
        }
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        (Matrix::from_columns(&refs).unwrap(), truth)
    }

    #[test]
    fn ssc_backend_clusters_semi_random_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 15);
        let out = central_cluster(&samples, 3, 45, CentralBackend::Ssc, &mut rng).unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 95.0, "accuracy {acc}");
    }

    #[test]
    fn tsc_backend_clusters_semi_random_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 3, 20);
        let out =
            central_cluster(&samples, 3, 60, CentralBackend::Tsc { q: None }, &mut rng).unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn fixed_q_override() {
        let mut rng = StdRng::seed_from_u64(3);
        let (samples, truth) = semi_random_samples(&mut rng, 25, 3, 2, 15);
        let out = central_cluster(
            &samples,
            2,
            30,
            CentralBackend::Tsc { q: Some(5) },
            &mut rng,
        )
        .unwrap();
        let acc = clustering_accuracy(&truth, &out.assignments);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn graph_is_returned_for_diagnostics() {
        let mut rng = StdRng::seed_from_u64(4);
        let (samples, _) = semi_random_samples(&mut rng, 10, 2, 2, 5);
        let out = central_cluster(&samples, 2, 10, CentralBackend::Ssc, &mut rng).unwrap();
        assert_eq!(out.graph.len(), 10);
        assert_eq!(out.assignments.len(), 10);
    }
}
