//! Wire-level execution of the Fed-SC round: devices and the server run as
//! separate threads exchanging **encoded byte messages** over channels —
//! the deployment shape of Algorithm 1, as opposed to the in-process
//! orchestration of [`crate::scheme::FedSc`].
//!
//! Every device thread runs Algorithm 2 on its shard, serializes its
//! samples into an [`UplinkMessage`] payload, and sends the bytes to the
//! server thread; the server decodes and pools the payloads, runs the
//! central clustering, and answers each device with an encoded
//! [`DownlinkMessage`] of assignments; devices decode and perform the local
//! update. With a lossless channel the result is **bit-identical** to
//! `FedSc::run` under the same seeds (tested), so the in-process scheme and
//! the wire protocol cannot drift apart.
//!
//! [`UplinkMessage`]: fedsc_federated::channel::UplinkMessage
//! [`DownlinkMessage`]: fedsc_federated::channel::DownlinkMessage

use crate::central::central_cluster;
use crate::config::FedScConfig;
use crate::local::local_cluster_and_sample;
use bytes::Bytes;
use fedsc_federated::channel::{DownlinkMessage, UplinkMessage};
use fedsc_federated::partition::FederatedDataset;
use fedsc_linalg::{LinalgError, Matrix, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a wire-level run.
#[derive(Debug, Clone)]
pub struct WireRunOutput {
    /// Predicted global cluster per point, in global-point order.
    pub predictions: Vec<usize>,
    /// Total bytes that crossed the uplink (encoded payload sizes).
    pub uplink_bytes: usize,
    /// Total bytes that crossed the downlink.
    pub downlink_bytes: usize,
}

/// Runs the Fed-SC round with per-device threads and encoded messages.
///
/// The channel is lossless (byte-faithful); noise/quantization modelling
/// lives in [`crate::scheme::FedSc`]. Errors from any thread are propagated.
pub fn run_over_wire(fed: &FederatedDataset, cfg: &FedScConfig) -> Result<WireRunOutput> {
    let z_count = fed.devices.len();
    let (uplink_tx, uplink_rx) = crossbeam::channel::unbounded::<(usize, Bytes)>();
    let mut downlink_txs = Vec::with_capacity(z_count);
    let mut downlink_rxs = Vec::with_capacity(z_count);
    for _ in 0..z_count {
        let (tx, rx) = crossbeam::channel::bounded::<Bytes>(1);
        downlink_txs.push(tx);
        downlink_rxs.push(rx);
    }

    // Per-device results come back through a second channel so the scope
    // can end cleanly even if the server fails.
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, Result<Vec<usize>>)>();

    let mut server_result: Option<Result<(usize, usize)>> = None;
    let scope_result = crossbeam::thread::scope(|scope| {
        // Device threads: phase 1, send uplink, await downlink, phase 3.
        for (z, downlink_rx) in downlink_rxs.iter().enumerate() {
            let uplink_tx = uplink_tx.clone();
            let downlink_rx = downlink_rx.clone();
            let result_tx = result_tx.clone();
            let device = &fed.devices[z];
            scope.spawn(move |_| {
                let work = || -> Result<Vec<usize>> {
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(z as u64));
                    let out = local_cluster_and_sample(&device.data, cfg, &mut rng)?;
                    let msg = UplinkMessage {
                        dim: out.samples.rows(),
                        samples: out.samples.clone(),
                    };
                    uplink_tx
                        .send((z, msg.encode()))
                        .map_err(|_| LinalgError::InvalidArgument("server hung up"))?;
                    let reply = downlink_rx
                        .recv()
                        .map_err(|_| LinalgError::InvalidArgument("no downlink reply"))?;
                    let down = DownlinkMessage::decode(reply)
                        .ok_or(LinalgError::InvalidArgument("malformed downlink"))?;
                    if down.assignments.len() != out.sample_cluster.len() {
                        return Err(LinalgError::InvalidArgument(
                            "downlink assignment count mismatch",
                        ));
                    }
                    // Phase 3: relabel local clusters by their (first)
                    // sample's assignment, mirroring FedSc::run.
                    let mut cluster_to_global = vec![0usize; out.num_local_clusters.max(1)];
                    let mut votes =
                        vec![vec![0usize; cfg.num_clusters.max(1)]; out.num_local_clusters.max(1)];
                    for (s, &t) in out.sample_cluster.iter().enumerate() {
                        votes[t][down.assignments[s] as usize] += 1;
                    }
                    for (t, vote) in votes.iter().enumerate() {
                        if let Some((best, _)) = vote
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &c)| c)
                            .filter(|&(_, &c)| c > 0)
                        {
                            cluster_to_global[t] = best;
                        }
                    }
                    Ok(out
                        .local_labels
                        .iter()
                        .map(|&t| cluster_to_global[t])
                        .collect())
                };
                let _ = result_tx.send((z, work()));
            });
        }
        drop(uplink_tx);
        drop(result_tx);

        // Server: collect all uplinks, cluster, answer each device.
        let server = || -> Result<(usize, usize)> {
            let mut payloads: Vec<Option<UplinkMessage>> = (0..z_count).map(|_| None).collect();
            let mut uplink_bytes = 0usize;
            for _ in 0..z_count {
                // recv_timeout rather than recv: if a device dies before
                // sending, the still-blocked healthy devices keep their
                // sender clones alive, so a plain recv would deadlock
                // instead of erroring.
                let (z, bytes) = uplink_rx
                    .recv_timeout(std::time::Duration::from_secs(300))
                    .map_err(|_| LinalgError::InvalidArgument("a device hung up"))?;
                uplink_bytes += bytes.len();
                let msg = UplinkMessage::decode(bytes)
                    .ok_or(LinalgError::InvalidArgument("malformed uplink"))?;
                payloads[z] = Some(msg);
            }
            let mut mats = Vec::with_capacity(z_count);
            let mut counts = Vec::with_capacity(z_count);
            for p in payloads.into_iter() {
                let m = p
                    .ok_or(LinalgError::InvalidArgument("a device never reported"))?
                    .samples;
                counts.push(m.cols());
                mats.push(m);
            }
            let refs: Vec<&Matrix> = mats.iter().collect();
            let pooled = Matrix::hcat(&refs)?;
            let mut server_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0ce2_74a1);
            let central = central_cluster(
                &pooled,
                cfg.num_clusters,
                z_count,
                cfg.central,
                &mut server_rng,
            )?;
            let mut downlink_bytes = 0usize;
            let mut offset = 0usize;
            for (z, &r) in counts.iter().enumerate() {
                let assignments: Vec<u32> = central.assignments[offset..offset + r]
                    .iter()
                    .map(|&a| a as u32)
                    .collect();
                offset += r;
                let reply = DownlinkMessage { assignments }.encode();
                downlink_bytes += reply.len();
                downlink_txs[z]
                    .send(reply)
                    .map_err(|_| LinalgError::InvalidArgument("device hung up"))?;
            }
            Ok((uplink_bytes, downlink_bytes))
        };
        server_result = Some(server());
    });
    if let Err(payload) = scope_result {
        // A device or server thread panicked: re-raise the original panic on
        // the caller's thread.
        std::panic::resume_unwind(payload);
    }

    let (uplink_bytes, downlink_bytes) =
        server_result.ok_or(LinalgError::InvalidArgument("server thread never ran"))??;
    let mut per_device: Vec<Option<Vec<usize>>> = (0..z_count).map(|_| None).collect();
    for (z, res) in result_rx.iter() {
        per_device[z] = Some(res?);
    }
    let mut gathered: Vec<Vec<usize>> = Vec::with_capacity(z_count);
    for p in per_device {
        gathered.push(p.ok_or(LinalgError::InvalidArgument("a device sent no result"))?);
    }
    let per_device = gathered;
    Ok(WireRunOutput {
        predictions: fed.scatter_predictions(&per_device),
        uplink_bytes,
        downlink_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CentralBackend, FedScConfig};
    use crate::scheme::FedSc;
    use fedsc_federated::partition::{partition_dataset, Partition};
    use fedsc_subspace::SubspaceModel;

    fn fixture(seed: u64) -> (FederatedDataset, FedScConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SubspaceModel::random(&mut rng, 20, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[48, 48, 48], 0.0);
        let fed = partition_dataset(&ds, 12, Partition::NonIid { l_prime: 2 }, &mut rng);
        let cfg = FedScConfig::new(3, CentralBackend::Ssc);
        (fed, cfg)
    }

    #[test]
    fn wire_run_matches_in_process_run_exactly() {
        let (fed, cfg) = fixture(1);
        let in_process = FedSc::new(cfg.clone()).run(&fed).unwrap();
        let wire = run_over_wire(&fed, &cfg).unwrap();
        // Same seeds, lossless channel: the two execution shapes must agree
        // bit for bit.
        assert_eq!(wire.predictions, in_process.predictions);
    }

    #[test]
    fn wire_byte_counts_match_payload_sizes() {
        let (fed, cfg) = fixture(2);
        let wire = run_over_wire(&fed, &cfg).unwrap();
        let in_process = FedSc::new(cfg).run(&fed).unwrap();
        let samples = in_process.samples.cols();
        // Uplink: per device 16-byte header + 8 bytes per entry.
        assert_eq!(wire.uplink_bytes, 16 * fed.devices.len() + 8 * 20 * samples);
        // Downlink: per device 8-byte header + 4 bytes per sample.
        assert_eq!(wire.downlink_bytes, 8 * fed.devices.len() + 4 * samples);
    }

    #[test]
    fn wire_run_clusters_correctly() {
        let (fed, cfg) = fixture(3);
        let wire = run_over_wire(&fed, &cfg).unwrap();
        let acc = fedsc_clustering::clustering_accuracy(&fed.global_truth(), &wire.predictions);
        assert!(acc > 90.0, "accuracy {acc}");
    }
}
