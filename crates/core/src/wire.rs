//! Wire-level execution of the Fed-SC round: devices and the server run as
//! separate threads (or processes — see the `fedsc-server`/`fedsc-device`
//! binaries) exchanging **encoded byte messages** over a pluggable
//! [`Transport`] — the deployment shape of Algorithm 1, as opposed to the
//! in-process orchestration of [`crate::scheme::FedSc`].
//!
//! Every device runs Algorithm 2 on its shard, serializes its samples into
//! an [`UplinkMessage`] payload, and sends the bytes to the server; the
//! server decodes and pools the payloads, runs the central clustering, and
//! answers each included device with an encoded [`DownlinkMessage`] of
//! assignments; devices decode and perform the local update. With a
//! lossless link the result is **bit-identical** to `FedSc::run` under the
//! same seeds (tested), so the in-process scheme and the wire protocol
//! cannot drift apart.
//!
//! The round is one-shot, which makes straggler handling simple: the
//! server collects uplinks until all devices report or the
//! [`RoundPolicy::deadline`] expires, proceeds if the
//! [`RoundPolicy::quorum`] is met, and reports the devices it excluded in
//! [`WireRunOutput::excluded`] (their points fall back to cluster 0).
//! Transient link failures — dropped or corrupted-and-rejected messages —
//! are absorbed by a bounded retry budget on every send.
//!
//! [`UplinkMessage`]: fedsc_federated::channel::UplinkMessage
//! [`DownlinkMessage`]: fedsc_federated::channel::DownlinkMessage

use crate::central::central_cluster;
use crate::config::FedScConfig;
use crate::local::{local_cluster_and_sample, LocalOutput};
use bytes::Bytes;
use fedsc_federated::channel::{DownlinkMessage, UplinkMessage};
use fedsc_federated::partition::FederatedDataset;
use fedsc_linalg::{LinalgError, Matrix, Result};
use fedsc_obs::{Envelope, FleetCollector, LazyCounter, LazyHistogram, Stopwatch, TraceContext};
use fedsc_transport::{
    with_retry, Deadline, DeviceTransport, InMemoryTransport, LinkStats, ServerTransport,
    Transport, TransportError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Device rounds completed (uplink sent, downlink applied).
static WIRE_DEVICE_ROUNDS: LazyCounter = LazyCounter::new("wire.device_rounds");
/// Server rounds completed.
static WIRE_SERVER_ROUNDS: LazyCounter = LazyCounter::new("wire.server_rounds");
/// Devices excluded as stragglers across all server rounds.
static WIRE_STRAGGLERS: LazyCounter = LazyCounter::new("wire.stragglers_excluded");
/// Wall time of each completed device round, in milliseconds.
static WIRE_DEVICE_ROUND_MS: LazyHistogram = LazyHistogram::new(
    "wire.device_round_ms",
    &[
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000,
    ],
);

/// Salt XORed into [`FedScConfig::seed`] to derive the server's
/// central-clustering rng stream. Exported so the hierarchical aggregation
/// tree (`fedsc-hier`) can seed its root *exactly* like [`server_round`]
/// does — the degenerate single-tier tree is bit-identical to
/// [`run_over_wire`] only because both sides share this constant.
pub const SERVER_RNG_SALT: u64 = 0x0ce2_74a1;

/// Rng seed for the aggregator at tier `tier`, node `node` of an
/// aggregation tree — the root's salt stream mixed with a per-node offset
/// so sibling aggregators draw independent spectral-clustering
/// initializations. The root itself uses the unmixed
/// `seed ^ SERVER_RNG_SALT`, which is what keeps the degenerate
/// single-tier tree bit-identical to the flat round. Lives here (not in
/// `fedsc-hier`) so the real-process `fedsc-agg` binary and the
/// in-process tree driver seed identically.
pub fn agg_seed(seed: u64, tier: usize, node: usize) -> u64 {
    (seed ^ SERVER_RNG_SALT)
        ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul((((tier as u64) + 1) << 32) | ((node as u64) + 1))
}

/// Telemetry posture of one sending round: what (if anything) rides
/// in-band on the uplink. The default attaches nothing, keeping the
/// payload byte-identical to an untraced round.
#[derive(Debug, Clone, Default)]
pub struct WireTelemetry {
    /// Causal context stamped onto the uplink envelope. Its
    /// `parent_span` is overwritten with the id of the sender's completed
    /// local-output span, so the receiver's handling span records a
    /// parent that actually ships.
    pub ctx: Option<TraceContext>,
    /// Also ship this process's completed spans and a metrics snapshot
    /// in-band, shifted into the parent's clock via
    /// [`DeviceTransport::clock_sync`]. Real-process mode only —
    /// in-process drivers share one ring and registry, and shipping
    /// would double-count both.
    pub ship: bool,
    /// Process lane (Chrome `pid`) for shipped spans.
    pub pid: u64,
}

/// Server-side straggler and reliability policy for one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPolicy {
    /// Minimum devices whose uplinks must arrive for the round to proceed;
    /// `None` requires all of them (any missing device fails the round).
    pub quorum: Option<usize>,
    /// How long the server collects uplinks before giving up on stragglers.
    pub deadline: Duration,
    /// Extra attempts granted to every send after a transient link error.
    pub max_retries: u32,
    /// Initial backoff between retry attempts (doubles per retry).
    pub retry_backoff: Duration,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        RoundPolicy {
            quorum: None,
            deadline: Duration::from_secs(300),
            max_retries: 5,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

impl RoundPolicy {
    /// How long a device waits for its downlink: the server's collection
    /// deadline plus slack for the central clustering itself. Normally the
    /// transport unblocks excluded devices much sooner (the server closes
    /// the links when the round ends); this is the backstop.
    pub fn downlink_wait(&self) -> Duration {
        self.deadline.saturating_add(Duration::from_secs(60))
    }

    /// Devices that must report for a round over `z_count` children to
    /// proceed: the quorum, clamped to `[1, z_count]` (`None` = all).
    pub fn required(&self, z_count: usize) -> usize {
        self.quorum.unwrap_or(z_count).min(z_count).max(1)
    }
}

/// Result of a wire-level run.
#[derive(Debug, Clone)]
pub struct WireRunOutput {
    /// Predicted global cluster per point, in global-point order. Points
    /// on excluded devices fall back to cluster 0.
    pub predictions: Vec<usize>,
    /// Total bytes that crossed the uplink as observed by the server — the
    /// lossless in-memory link counts payload bytes, framed links (TCP,
    /// fault-injecting) count framing and handshake overhead too.
    pub uplink_bytes: usize,
    /// Total bytes that crossed the downlink (same accounting basis).
    pub downlink_bytes: usize,
    /// Devices whose uplink never arrived before the deadline; empty on a
    /// clean run.
    pub excluded: Vec<usize>,
    /// Serialized telemetry-envelope bytes the server absorbed from
    /// uplink payloads — the exact overhead tracing added to
    /// `uplink_bytes` (0 when telemetry is off, so
    /// `uplink_bytes - envelope_bytes` is invariant under tracing).
    pub envelope_bytes: usize,
}

/// Maps a link failure into the workspace error type, preserving the
/// failure class in the message. Public so the hierarchical tree driver
/// (`fedsc-hier`) reports link failures with the same vocabulary.
pub fn wire_err(e: TransportError) -> LinalgError {
    LinalgError::InvalidArgument(match e {
        TransportError::Closed(_) => "transport closed before the round completed",
        TransportError::Timeout(_) => "transport deadline expired",
        TransportError::VersionMismatch { .. } => "peer speaks a different protocol version",
        TransportError::Dropped
        | TransportError::ChecksumMismatch { .. }
        | TransportError::Truncated { .. }
        | TransportError::BadMagic => "message lost despite the retry budget",
        TransportError::Malformed(_) | TransportError::Oversize { .. } => {
            "malformed transport frame"
        }
        TransportError::Io { .. } => "socket failure",
    })
}

/// Runs Algorithm 2 for device `z` under the round's deterministic seeding
/// (`cfg.seed + z`). This is the *computation* half of [`device_round`],
/// shared with the hierarchical tree driver so both execution shapes derive
/// the same local clusters and uplink samples bit for bit.
pub fn device_local_output(data: &Matrix, z: usize, cfg: &FedScConfig) -> Result<LocalOutput> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(z as u64));
    local_cluster_and_sample(data, cfg, &mut rng)
}

/// Phase 3 vote: maps each of `num_local_clusters` local clusters to the
/// majority global assignment of its uploaded samples (ties break toward
/// the lower global id; clusters whose samples were all dropped keep the
/// fallback label 0). Mirrors `FedSc::run` exactly.
pub fn majority_relabel(
    sample_cluster: &[usize],
    num_local_clusters: usize,
    assignments: &[u32],
    num_global: usize,
) -> Vec<usize> {
    let mut cluster_to_global = vec![0usize; num_local_clusters.max(1)];
    let mut votes = vec![vec![0usize; num_global.max(1)]; num_local_clusters.max(1)];
    for (s, &t) in sample_cluster.iter().enumerate() {
        votes[t][assignments[s] as usize] += 1;
    }
    for (t, vote) in votes.iter().enumerate() {
        if let Some((best, _)) = vote
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .filter(|&(_, &c)| c > 0)
        {
            cluster_to_global[t] = best;
        }
    }
    cluster_to_global
}

/// Runs one device's side of the round over `link`: Algorithm 2 on `data`,
/// uplink, await assignments, local relabel. Returns the device-local
/// predictions (one global cluster id per local point).
///
/// Deterministic given `(cfg.seed, z)` — the transport carries opaque
/// bytes and cannot perturb the clustering.
pub fn device_round<D: DeviceTransport>(
    data: &Matrix,
    z: usize,
    cfg: &FedScConfig,
    link: &mut D,
    policy: &RoundPolicy,
) -> Result<Vec<usize>> {
    device_round_traced(data, z, cfg, link, policy, &WireTelemetry::default())
}

/// [`device_round`] with an explicit telemetry posture: the uplink
/// payload is prefixed with an in-band [`Envelope`] carrying the round's
/// [`TraceContext`] and — in real-process mode — the device's completed
/// spans (shifted into the server's clock) and metrics snapshot. The
/// default posture attaches nothing and is byte-identical to
/// [`device_round`].
pub fn device_round_traced<D: DeviceTransport>(
    data: &Matrix,
    z: usize,
    cfg: &FedScConfig,
    link: &mut D,
    policy: &RoundPolicy,
    telemetry: &WireTelemetry,
) -> Result<Vec<usize>> {
    let _span = fedsc_obs::span("wire", "wire.device_round").field("device", z);
    let sw = Stopwatch::start();
    // The local computation gets its own span so a *completed* span id
    // exists by uplink time — the round span is still open when the
    // payload ships, so it cannot serve as the cross-process parent.
    let local_span = fedsc_obs::span("wire", "wire.local_output").field("device", z);
    let local_span_id = local_span.id();
    let out = device_local_output(data, z, cfg)?;
    drop(local_span);
    let msg = UplinkMessage {
        dim: out.samples.rows(),
        samples: out.samples.clone(),
    };
    let payload = wrap_uplink(msg.encode(), link, telemetry, local_span_id)?;
    with_retry(policy.max_retries, policy.retry_backoff, || {
        link.send_uplink(&payload)
    })
    .map_err(wire_err)?;
    let reply = link
        .recv_downlink(policy.downlink_wait())
        .map_err(wire_err)?;
    let down =
        DownlinkMessage::decode(reply).ok_or(LinalgError::InvalidArgument("malformed downlink"))?;
    if down.assignments.len() != out.sample_cluster.len() {
        return Err(LinalgError::InvalidArgument(
            "downlink assignment count mismatch",
        ));
    }
    // Phase 3: relabel local clusters by their samples' majority global
    // assignment, mirroring FedSc::run.
    let cluster_to_global = majority_relabel(
        &out.sample_cluster,
        out.num_local_clusters,
        &down.assignments,
        cfg.num_clusters,
    );
    WIRE_DEVICE_ROUNDS.inc();
    WIRE_DEVICE_ROUND_MS.observe(sw.elapsed_ns() / 1_000_000);
    Ok(out
        .local_labels
        .iter()
        .map(|&t| cluster_to_global[t])
        .collect())
}

/// Prefixes an encoded uplink with the round's telemetry envelope. With
/// the default (empty) posture the payload is returned untouched; with
/// `ship` set, the link's clock offset is estimated first and every
/// shipped span is shifted into the receiver's clock, so offsets compose
/// transitively up an aggregation tree.
fn wrap_uplink<D: DeviceTransport>(
    inner: Bytes,
    link: &mut D,
    telemetry: &WireTelemetry,
    parent_span: u64,
) -> Result<Bytes> {
    let ctx = telemetry.ctx.map(|mut c| {
        c.parent_span = parent_span;
        c
    });
    let env = if telemetry.ship {
        let offset = link.clock_sync().map_err(wire_err)?;
        let mut fleet = FleetCollector::new();
        fleet.add_local_events(&fedsc_obs::trace::drain(), telemetry.pid);
        fleet.merge_metrics(&fedsc_obs::metrics::snapshot());
        fleet.shift(offset);
        fleet.to_envelope(ctx)
    } else {
        Envelope {
            ctx,
            ..Envelope::default()
        }
    };
    if env.is_empty() {
        Ok(inner)
    } else {
        Ok(Bytes::from(env.wrap(inner.as_slice())))
    }
}

/// Runs the server's side of the round over `link`: collect uplinks until
/// every device reports or the policy deadline expires, pool in ascending
/// device order, cluster centrally, answer each included device. Returns
/// the devices excluded as stragglers (empty on a clean run).
///
/// Fails if fewer than [`RoundPolicy::quorum`] devices report in time.
pub fn server_round<S: ServerTransport>(
    link: &mut S,
    z_count: usize,
    cfg: &FedScConfig,
    policy: &RoundPolicy,
) -> Result<Vec<usize>> {
    server_round_fleet(link, z_count, cfg, policy, None)
}

/// [`server_round`] absorbing in-band telemetry into `fleet`: every
/// uplink envelope's context, spans, and metrics land in the collector
/// (and its `envelope_bytes` tallies the exact payload overhead), ready
/// to export at the root or forward from an aggregator. Passing `None`
/// strips and discards envelopes, which is [`server_round`] exactly.
pub fn server_round_fleet<S: ServerTransport>(
    link: &mut S,
    z_count: usize,
    cfg: &FedScConfig,
    policy: &RoundPolicy,
    fleet: Option<&mut FleetCollector>,
) -> Result<Vec<usize>> {
    let _span = fedsc_obs::span("wire", "wire.server_round").field("devices", z_count);
    let payloads = collect_uplinks_fleet(link, z_count, policy.deadline, fleet)?;
    let received = payloads.iter().filter(|p| p.is_some()).count();

    let excluded: Vec<usize> = payloads
        .iter()
        .enumerate()
        .filter_map(|(z, p)| p.is_none().then_some(z))
        .collect();
    if received < policy.required(z_count) {
        return Err(LinalgError::InvalidArgument(
            "quorum not met before the round deadline",
        ));
    }

    let (included, counts, pooled) = pool_uplinks(payloads)?;
    let central_span = fedsc_obs::span("fedsc", "phase2.central").field("samples", pooled.cols());
    let mut server_rng = StdRng::seed_from_u64(cfg.seed ^ SERVER_RNG_SALT);
    let central = central_cluster(
        &pooled,
        cfg.num_clusters,
        included.len(),
        cfg.central,
        cfg.candidate_threshold,
        &mut server_rng,
    )?;
    drop(central_span);

    let _broadcast_span =
        fedsc_obs::span("fedsc", "phase3.broadcast").field("devices", included.len());
    let mut offset = 0usize;
    for (&z, &r) in included.iter().zip(counts.iter()) {
        let _downlink_span = fedsc_obs::span("wire", "wire.downlink").field("device", z);
        let assignments: Vec<u32> = central.assignments[offset..offset + r]
            .iter()
            .map(|&a| a as u32)
            .collect();
        offset += r;
        let reply = DownlinkMessage { assignments }.encode();
        with_retry(policy.max_retries, policy.retry_backoff, || {
            link.send_downlink(z, &reply)
        })
        .map_err(wire_err)?;
    }
    WIRE_SERVER_ROUNDS.inc();
    WIRE_STRAGGLERS.add(excluded.len() as u64);
    Ok(excluded)
}

/// Collects uplinks from `expected` children over `link` until all report
/// or `deadline` expires, decoding each payload. Slot `z` of the returned
/// vector holds child `z`'s message, `None` if it never arrived — quorum
/// policy is the *caller's* decision, so the hierarchical tree can treat a
/// failed aggregator as a straggler where the flat round treats it as
/// fatal. Stray child ids and duplicate deliveries are ignored, exactly as
/// in [`server_round`].
pub fn collect_uplinks<S: ServerTransport>(
    link: &mut S,
    expected: usize,
    deadline: Duration,
) -> Result<Vec<Option<UplinkMessage>>> {
    collect_uplinks_fleet(link, expected, deadline, None)
}

/// [`collect_uplinks`] absorbing in-band telemetry: each payload's
/// optional [`Envelope`] prefix is stripped before the uplink decoder
/// sees it, the per-uplink span records the sender's span as its remote
/// parent, and — when a collector is given — the envelope's spans,
/// metrics, and context are absorbed. A payload carrying the envelope
/// magic but failing to decode is an error (never fed to the inner
/// decoder); a payload without the magic passes through untouched.
pub fn collect_uplinks_fleet<S: ServerTransport>(
    link: &mut S,
    expected: usize,
    deadline: Duration,
    mut fleet: Option<&mut FleetCollector>,
) -> Result<Vec<Option<UplinkMessage>>> {
    let mut payloads: Vec<Option<UplinkMessage>> = (0..expected).map(|_| None).collect();
    let deadline = Deadline::after(deadline);
    let mut received = 0usize;
    // Server-side view of Phase 1: the window in which the children's local
    // clustering results arrive.
    let collect_span = fedsc_obs::span("fedsc", "phase1.collect").field("devices", expected);
    while received < expected {
        let remaining = deadline.remaining();
        if remaining.is_zero() {
            break;
        }
        match link.recv_uplink(remaining) {
            Ok((z, bytes)) => {
                // Stray device ids and duplicate deliveries (a retrying
                // link may deliver the same upload twice) are ignored.
                if z >= expected || payloads[z].is_some() {
                    continue;
                }
                let (env, inner_at) = Envelope::strip(bytes.as_slice())
                    .map_err(|_| LinalgError::InvalidArgument("malformed uplink envelope"))?;
                let mut uplink_span = fedsc_obs::span("wire", "wire.uplink").field("device", z);
                if let Some(env) = env {
                    if let Some(ctx) = env.ctx {
                        uplink_span = uplink_span.remote_parent(ctx.pid, ctx.parent_span);
                    }
                    if let Some(fleet) = fleet.as_deref_mut() {
                        fleet.absorb(&env, inner_at);
                    }
                }
                let inner = if inner_at == 0 {
                    bytes
                } else {
                    bytes.slice(inner_at..bytes.len())
                };
                let msg = UplinkMessage::decode(inner)
                    .ok_or(LinalgError::InvalidArgument("malformed uplink"))?;
                payloads[z] = Some(msg);
                received += 1;
            }
            Err(TransportError::Timeout(_)) => break,
            Err(e) => return Err(wire_err(e)),
        }
    }
    drop(collect_span.field("received", received));
    Ok(payloads)
}

/// Pools the children that reported, in ascending child order — the same
/// order `FedSc::run` pools in, which keeps clean runs bit-identical.
/// Returns the included child ids, each included child's sample count (in
/// that order), and the pooled sample matrix.
pub fn pool_uplinks(
    payloads: Vec<Option<UplinkMessage>>,
) -> Result<(Vec<usize>, Vec<usize>, Matrix)> {
    let mut included = Vec::new();
    let mut mats = Vec::new();
    let mut counts = Vec::new();
    for (z, p) in payloads.into_iter().enumerate() {
        if let Some(msg) = p {
            included.push(z);
            counts.push(msg.samples.cols());
            mats.push(msg.samples);
        }
    }
    let refs: Vec<&Matrix> = mats.iter().collect();
    let pooled = Matrix::hcat(&refs)?;
    Ok((included, counts, pooled))
}

/// Runs the Fed-SC round over `transport` with per-device threads and
/// encoded messages, under the given straggler `policy`.
///
/// Noise/quantization modelling lives in [`crate::scheme::FedSc`]; here the
/// link itself may be unreliable (see `fedsc_transport::fault`) and the
/// policy decides how much unreliability the round absorbs. Errors from
/// any included device or the server are propagated; excluded stragglers
/// are reported, not fatal.
pub fn run_round<T: Transport>(
    fed: &FederatedDataset,
    cfg: &FedScConfig,
    transport: &T,
    policy: &RoundPolicy,
) -> Result<WireRunOutput> {
    let z_count = fed.devices.len();
    let _span = fedsc_obs::span("wire", "wire.run_round").field("devices", z_count);
    let (mut server_link, device_links) = transport.open(z_count).map_err(wire_err)?;
    // With tracing on, every uplink carries its causal context in-band
    // (spans/metrics stay local: one process, one ring). Telemetry off
    // attaches nothing, keeping the payloads byte-identical.
    let traced = fedsc_obs::trace::is_enabled();
    let mut fleet = FleetCollector::new();

    // Per-device results come back through a channel so the scope can end
    // cleanly even if the server fails.
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, Result<Vec<usize>>)>();
    let mut server_out: Option<Result<(Vec<usize>, LinkStats)>> = None;
    let scope_result = crossbeam::thread::scope(|scope| {
        for (z, mut link) in device_links.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let device = &fed.devices[z];
            scope.spawn(move |_| {
                let telemetry = WireTelemetry {
                    ctx: traced.then_some(TraceContext {
                        run_id: cfg.seed,
                        round: 0,
                        tier: 0,
                        node: z as u64,
                        parent: 0,
                        pid: 1,
                        parent_span: 0,
                    }),
                    ..WireTelemetry::default()
                };
                let _ = result_tx.send((
                    z,
                    device_round_traced(&device.data, z, cfg, &mut link, policy, &telemetry),
                ));
            });
        }
        drop(result_tx);

        let served = server_round_fleet(&mut server_link, z_count, cfg, policy, Some(&mut fleet))
            .map(|excluded| (excluded, server_link.stats()));
        // Dropping the server endpoint closes every link: excluded devices
        // still blocked in recv_downlink observe closure instead of
        // waiting out their timeout.
        drop(server_link);
        server_out = Some(served);
    });
    if let Err(payload) = scope_result {
        // A device or server thread panicked: re-raise the original panic
        // on the caller's thread.
        std::panic::resume_unwind(payload);
    }

    let (excluded, stats) =
        server_out.ok_or(LinalgError::InvalidArgument("server never ran"))??;
    let mut per_device: Vec<Option<Vec<usize>>> = (0..z_count).map(|_| None).collect();
    for (z, res) in result_rx.iter() {
        match res {
            Ok(v) => per_device[z] = Some(v),
            // An excluded straggler fails its round by construction (the
            // server never answers it); that is the policy working, not an
            // error. Any other device failure is real.
            Err(e) if !excluded.contains(&z) => return Err(e),
            Err(_) => {}
        }
    }
    let mut gathered: Vec<Vec<usize>> = Vec::with_capacity(z_count);
    for (z, p) in per_device.into_iter().enumerate() {
        match p {
            Some(v) => gathered.push(v),
            None if excluded.contains(&z) => {
                // Fallback for points the round never clustered.
                gathered.push(vec![0usize; fed.devices[z].data.cols()]);
            }
            None => return Err(LinalgError::InvalidArgument("a device sent no result")),
        }
    }
    Ok(WireRunOutput {
        predictions: fed.scatter_predictions(&gathered),
        uplink_bytes: stats.bytes_received,
        downlink_bytes: stats.bytes_sent,
        excluded,
        envelope_bytes: fleet.envelope_bytes,
    })
}

/// Runs the round over the lossless in-memory transport with the default
/// policy — the historical entry point; bit-identical to `FedSc::run`.
pub fn run_over_wire(fed: &FederatedDataset, cfg: &FedScConfig) -> Result<WireRunOutput> {
    run_round(fed, cfg, &InMemoryTransport, &RoundPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CentralBackend, FedScConfig};
    use crate::scheme::FedSc;
    use fedsc_federated::partition::{partition_dataset, Partition};
    use fedsc_subspace::SubspaceModel;
    use fedsc_transport::{FaultConfig, FaultyInMemoryTransport, TcpTransport};

    fn fixture(seed: u64) -> (FederatedDataset, FedScConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SubspaceModel::random(&mut rng, 20, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[48, 48, 48], 0.0);
        let fed = partition_dataset(&ds, 12, Partition::NonIid { l_prime: 2 }, &mut rng);
        let cfg = FedScConfig::new(3, CentralBackend::Ssc);
        (fed, cfg)
    }

    #[test]
    fn wire_run_matches_in_process_run_exactly() {
        let (fed, cfg) = fixture(1);
        let in_process = FedSc::new(cfg.clone())
            .run(&fed)
            .expect("in-process FedSc run on the seed-1 fixture");
        let wire = run_over_wire(&fed, &cfg).expect("lossless wire round on the seed-1 fixture");
        // Same seeds, lossless channel: the two execution shapes must agree
        // bit for bit.
        assert_eq!(wire.predictions, in_process.predictions);
        assert!(wire.excluded.is_empty());
    }

    #[test]
    fn wire_byte_counts_match_payload_sizes() {
        let (fed, cfg) = fixture(2);
        let wire = run_over_wire(&fed, &cfg).expect("lossless wire round on the seed-2 fixture");
        let in_process = FedSc::new(cfg)
            .run(&fed)
            .expect("in-process FedSc run on the seed-2 fixture");
        let samples = in_process.samples.cols();
        // Uplink: per device 16-byte header + 8 bytes per entry.
        assert_eq!(wire.uplink_bytes, 16 * fed.devices.len() + 8 * 20 * samples);
        // Downlink: per device 8-byte header + 4 bytes per sample.
        assert_eq!(wire.downlink_bytes, 8 * fed.devices.len() + 4 * samples);
    }

    #[test]
    fn wire_run_clusters_correctly() {
        let (fed, cfg) = fixture(3);
        let wire = run_over_wire(&fed, &cfg).expect("lossless wire round on the seed-3 fixture");
        let acc = fedsc_clustering::clustering_accuracy(&fed.global_truth(), &wire.predictions);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn faulty_link_below_retry_budget_still_matches_exactly() {
        let (fed, cfg) = fixture(1);
        let clean = run_over_wire(&fed, &cfg).expect("clean reference round (seed-1 fixture)");
        let transport = FaultyInMemoryTransport::new(FaultConfig {
            seed: 99,
            drop: 0.2,
            bit_flip: 0.1,
            truncate: 0.1,
            duplicate: 0.1,
            ..FaultConfig::default()
        });
        let policy = RoundPolicy {
            // drop+truncate+flip ≈ 0.4 per attempt; 25 retries make a
            // device-level failure astronomically unlikely.
            max_retries: 25,
            retry_backoff: Duration::ZERO,
            ..RoundPolicy::default()
        };
        let faulty = run_round(&fed, &cfg, &transport, &policy)
            .expect("faulty round (fault seed 99) should survive the 25-retry budget");
        // Retries and duplicates are invisible to the clustering: the
        // payload bytes that survive are the payload bytes that were sent.
        assert_eq!(faulty.predictions, clean.predictions);
        assert!(faulty.excluded.is_empty());
        // Framed accounting on the faulty link is at least the payload
        // accounting of the clean one (32-byte header per frame, plus
        // duplicates).
        assert!(faulty.uplink_bytes > clean.uplink_bytes);
    }

    #[test]
    fn tcp_round_matches_in_memory_round_exactly() {
        let (fed, cfg) = fixture(4);
        let clean = run_over_wire(&fed, &cfg).expect("clean in-memory round (seed-4 fixture)");
        let tcp = run_round(
            &fed,
            &cfg,
            &TcpTransport::loopback(),
            &RoundPolicy::default(),
        )
        .expect("TCP loopback round (seed-4 fixture)");
        assert_eq!(tcp.predictions, clean.predictions);
        assert!(tcp.excluded.is_empty());
        // TCP accounting includes handshakes and framing: strictly more
        // bytes than the payload-only in-memory accounting.
        assert!(tcp.uplink_bytes > clean.uplink_bytes);
        assert!(tcp.downlink_bytes > clean.downlink_bytes);
    }

    #[test]
    fn quorum_round_excludes_straggler_and_reports_it() {
        let (fed, cfg) = fixture(5);
        let z_count = fed.devices.len();
        // Device 3 is a total straggler: a fault plan that drops every one
        // of its uplink attempts. Per-link seeding means we can't target
        // one device directly, so emulate by running the round generically
        // with a transport whose open() drops one endpoint — simplest here:
        // run server/device halves manually.
        let transport = InMemoryTransport;
        let (mut server_link, mut device_links) = transport
            .open(z_count)
            .expect("open in-memory links for the quorum round");
        let policy = RoundPolicy {
            quorum: Some(z_count - 1),
            deadline: Duration::from_millis(800),
            ..RoundPolicy::default()
        };
        let dead = 3usize;
        let mut results: Vec<Option<Vec<usize>>> = (0..z_count).map(|_| None).collect();
        let mut excluded = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (z, mut link) in device_links.drain(..).enumerate() {
                if z == dead {
                    continue; // killed before it ever speaks
                }
                let device = &fed.devices[z];
                let (cfg, policy) = (&cfg, &policy);
                handles.push((
                    z,
                    scope.spawn(move |_| device_round(&device.data, z, cfg, &mut link, policy)),
                ));
            }
            excluded = server_round(&mut server_link, z_count, &cfg, &policy)
                .expect("server round should proceed at quorum Z-1 with one straggler");
            drop(server_link);
            for (z, h) in handles {
                let round = h
                    .join()
                    .unwrap_or_else(|_| panic!("device {z} thread panicked"));
                results[z] = Some(
                    round.unwrap_or_else(|e| panic!("healthy device {z} failed its round: {e:?}")),
                );
            }
        })
        .expect("wire test scope should not leak a panic");
        assert_eq!(excluded, vec![dead]);
        // Every healthy device got a full labelling of its shard.
        for (z, r) in results.iter().enumerate() {
            if z != dead {
                let r = r
                    .as_ref()
                    .unwrap_or_else(|| panic!("device {z} produced no result"));
                assert_eq!(r.len(), fed.devices[z].data.cols());
            }
        }
    }

    #[test]
    fn missing_quorum_fails_the_round() {
        let (fed, cfg) = fixture(6);
        let z_count = fed.devices.len();
        let (mut server_link, _device_links) = InMemoryTransport
            .open(z_count)
            .expect("open in-memory links for the no-quorum round");
        let policy = RoundPolicy {
            quorum: Some(z_count), // all required, none will come
            deadline: Duration::from_millis(50),
            ..RoundPolicy::default()
        };
        assert!(server_round(&mut server_link, z_count, &cfg, &policy).is_err());
    }

    #[test]
    fn enveloped_uplinks_strip_absorb_and_decode() {
        let (mut server, mut devices) = InMemoryTransport
            .open(2)
            .expect("open in-memory links for the envelope round-trip");
        let cols: [&[f64]; 2] = [&[1.0, 2.0], &[3.0, 4.0]];
        let msg = UplinkMessage {
            dim: 2,
            samples: Matrix::from_columns(&cols).expect("2x2 sample matrix"),
        };
        let inner = msg.encode();
        let ctx = TraceContext {
            run_id: 9,
            node: 0,
            pid: 1000,
            parent_span: 77,
            ..TraceContext::default()
        };
        let env = Envelope {
            ctx: Some(ctx),
            ..Envelope::default()
        };
        devices[0]
            .send_uplink(&Bytes::from(env.wrap(inner.as_slice())))
            .expect("enveloped uplink");
        devices[1].send_uplink(&inner).expect("plain uplink");

        let mut fleet = FleetCollector::new();
        let payloads =
            collect_uplinks_fleet(&mut server, 2, Duration::from_secs(5), Some(&mut fleet))
                .expect("collect the two uplinks");
        for (z, p) in payloads.iter().enumerate() {
            let m = p.as_ref().unwrap_or_else(|| panic!("uplink {z} missing"));
            assert_eq!(m.samples.col(0), &[1.0, 2.0], "uplink {z} col 0");
            assert_eq!(m.samples.col(1), &[3.0, 4.0], "uplink {z} col 1");
        }
        assert_eq!(fleet.contexts, vec![ctx]);
        assert_eq!(fleet.envelope_bytes, env.encoded_len());
    }

    #[test]
    fn magic_with_malformed_envelope_fails_the_collect() {
        let (mut server, mut devices) = InMemoryTransport
            .open(1)
            .expect("open in-memory link for the malformed envelope");
        // Envelope magic followed by an unsupported version: must error,
        // never reach the uplink decoder.
        let mut bogus = b"FSCE".to_vec();
        bogus.extend_from_slice(&[0u8; 20]);
        devices[0]
            .send_uplink(&Bytes::from(bogus))
            .expect("send the corrupt payload");
        assert!(collect_uplinks_fleet(&mut server, 1, Duration::from_secs(5), None).is_err());
    }

    #[test]
    fn ctx_envelopes_add_declared_bytes_without_perturbing_predictions() {
        let (fed, cfg) = fixture(10);
        let clean = run_over_wire(&fed, &cfg).expect("untraced reference round (seed-10 fixture)");
        assert_eq!(clean.envelope_bytes, 0, "telemetry off ships no envelopes");

        let z_count = fed.devices.len();
        let (mut server_link, mut device_links) = InMemoryTransport
            .open(z_count)
            .expect("open in-memory links for the ctx round");
        let policy = RoundPolicy::default();
        let mut fleet = FleetCollector::new();
        let mut gathered: Vec<Option<Vec<usize>>> = (0..z_count).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (z, mut link) in device_links.drain(..).enumerate() {
                let device = &fed.devices[z];
                let (cfg, policy) = (&cfg, &policy);
                handles.push((
                    z,
                    scope.spawn(move |_| {
                        let telemetry = WireTelemetry {
                            ctx: Some(TraceContext {
                                run_id: cfg.seed,
                                node: z as u64,
                                pid: 1,
                                ..TraceContext::default()
                            }),
                            ..WireTelemetry::default()
                        };
                        device_round_traced(&device.data, z, cfg, &mut link, policy, &telemetry)
                    }),
                ));
            }
            let excluded =
                server_round_fleet(&mut server_link, z_count, &cfg, &policy, Some(&mut fleet))
                    .expect("ctx round server side");
            assert!(excluded.is_empty());
            // The envelope overhead is exactly accounted: observed uplink
            // bytes are the untraced payload plus the absorbed envelopes.
            let stats = server_link.stats();
            assert_eq!(
                stats.bytes_received,
                clean.uplink_bytes + fleet.envelope_bytes
            );
            drop(server_link);
            for (z, h) in handles {
                let labels = h
                    .join()
                    .unwrap_or_else(|_| panic!("device {z} thread panicked"))
                    .unwrap_or_else(|e| panic!("device {z} round failed: {e:?}"));
                gathered[z] = Some(labels);
            }
        })
        .expect("ctx-round scope should not leak a panic");

        let per_ctx = Envelope {
            ctx: Some(TraceContext::default()),
            ..Envelope::default()
        }
        .encoded_len();
        assert_eq!(fleet.envelope_bytes, per_ctx * z_count);
        assert_eq!(fleet.contexts.len(), z_count);
        let gathered: Vec<Vec<usize>> = gathered
            .into_iter()
            .map(|v| v.expect("every device reported"))
            .collect();
        // The in-band telemetry never reaches the clustering: predictions
        // are bit-identical to the untraced round.
        assert_eq!(fed.scatter_predictions(&gathered), clean.predictions);
    }

    /// A device's label vector (or round error); `None` for dead devices.
    type DeviceResult = Option<Result<Vec<usize>>>;

    /// Runs one round over `transport` with the devices in `dead` never
    /// speaking: the server half runs on this thread, every healthy device
    /// on its own. Returns the server result (excluded stragglers on
    /// success) and each healthy device's round result.
    fn round_with_dead<T: Transport>(
        transport: &T,
        fed: &FederatedDataset,
        cfg: &FedScConfig,
        policy: &RoundPolicy,
        dead: &[usize],
    ) -> (Result<Vec<usize>>, Vec<DeviceResult>) {
        let z_count = fed.devices.len();
        let (mut server_link, mut device_links) = transport
            .open(z_count)
            .expect("open links for the straggler round");
        let mut results: Vec<DeviceResult> = (0..z_count).map(|_| None).collect();
        let mut server_out: Option<Result<Vec<usize>>> = None;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (z, mut link) in device_links.drain(..).enumerate() {
                if dead.contains(&z) {
                    continue; // killed before it ever speaks
                }
                let device = &fed.devices[z];
                let (cfg, policy) = (&cfg, &policy);
                handles.push((
                    z,
                    scope.spawn(move |_| device_round(&device.data, z, cfg, &mut link, policy)),
                ));
            }
            server_out = Some(server_round(&mut server_link, z_count, cfg, policy));
            // Closing the server links unblocks devices a failed round
            // never answered.
            drop(server_link);
            for (z, h) in handles {
                results[z] = Some(
                    h.join()
                        .unwrap_or_else(|_| panic!("device {z} thread panicked")),
                );
            }
        })
        .expect("straggler-round scope should not leak a panic");
        (
            server_out.expect("server round ran on this thread"),
            results,
        )
    }

    /// The two transports the RoundPolicy edge cases are asserted over: the
    /// payload-only reference link and the framed fault-injection link with
    /// a clean fault plan (framing and CRC active, no injected faults).
    fn edge_case_transports() -> (InMemoryTransport, FaultyInMemoryTransport) {
        (
            InMemoryTransport,
            FaultyInMemoryTransport::new(FaultConfig {
                seed: 7,
                ..FaultConfig::default()
            }),
        )
    }

    #[test]
    fn quorum_equal_to_z_with_one_straggler_fails() {
        // Edge case: quorum == Z leaves no straggler allowance at all, so a
        // single dead device must fail the round on every transport.
        let (fed, cfg) = fixture(7);
        let z_count = fed.devices.len();
        let policy = RoundPolicy {
            quorum: Some(z_count),
            deadline: Duration::from_millis(400),
            ..RoundPolicy::default()
        };
        let (mem, faulty) = edge_case_transports();
        let (mem_server, _) = round_with_dead(&mem, &fed, &cfg, &policy, &[5]);
        assert!(
            mem_server.is_err(),
            "in-memory round met quorum Z despite a dead device"
        );
        let (faulty_server, _) = round_with_dead(&faulty, &fed, &cfg, &policy, &[5]);
        assert!(
            faulty_server.is_err(),
            "faulty-link round met quorum Z despite a dead device"
        );
    }

    #[test]
    fn zero_deadline_fails_even_with_healthy_devices() {
        // Edge case: a zero collection deadline expires before the first
        // recv, so even an all-healthy fleet cannot reach quorum.
        let (fed, cfg) = fixture(8);
        let policy = RoundPolicy {
            quorum: Some(1),
            deadline: Duration::ZERO,
            ..RoundPolicy::default()
        };
        let (mem, faulty) = edge_case_transports();
        let (mem_server, _) = round_with_dead(&mem, &fed, &cfg, &policy, &[]);
        assert!(
            mem_server.is_err(),
            "in-memory round proceeded under a zero deadline"
        );
        let (faulty_server, _) = round_with_dead(&faulty, &fed, &cfg, &policy, &[]);
        assert!(
            faulty_server.is_err(),
            "faulty-link round proceeded under a zero deadline"
        );
    }

    #[test]
    fn quorum_met_on_last_permissible_uplink() {
        // Edge case: exactly quorum-many devices are alive, so the round
        // proceeds only if the final permissible uplink is counted — and
        // the dead devices are reported as the excluded stragglers.
        let (fed, cfg) = fixture(9);
        let z_count = fed.devices.len();
        let dead = [2usize, 9usize];
        let policy = RoundPolicy {
            quorum: Some(z_count - dead.len()),
            deadline: Duration::from_millis(1_500),
            ..RoundPolicy::default()
        };
        let (mem, faulty) = edge_case_transports();
        for (name, server_out, results) in [
            (
                "in-memory",
                round_with_dead(&mem, &fed, &cfg, &policy, &dead),
            ),
            (
                "faulty",
                round_with_dead(&faulty, &fed, &cfg, &policy, &dead),
            ),
        ]
        .map(|(n, (s, r))| (n, s, r))
        {
            let excluded = server_out
                .unwrap_or_else(|e| panic!("{name} round failed at exactly-met quorum: {e:?}"));
            assert_eq!(excluded, dead.to_vec(), "{name} excluded set");
            for (z, r) in results.iter().enumerate() {
                if dead.contains(&z) {
                    assert!(r.is_none(), "{name}: dead device {z} somehow ran");
                    continue;
                }
                let labels = r
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name}: healthy device {z} produced no result"))
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{name}: healthy device {z} failed: {e:?}"));
                assert_eq!(
                    labels.len(),
                    fed.devices[z].data.cols(),
                    "{name} device {z}"
                );
            }
        }
    }
}
