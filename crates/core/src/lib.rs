//! # fedsc — One-Shot Federated Subspace Clustering
//!
//! Reproduction of **Fed-SC** (Xie et al., ICDE 2023): cluster
//! high-dimensional data distributed over a federated device network,
//! according to the union of low-dimensional subspaces the data lies on,
//! with a *single* round of communication per device.
//!
//! ## The scheme (paper Algorithms 1 and 2)
//!
//! 1. **Local clustering + sampling** ([`local`]): each device runs SSC on
//!    its data, estimates its cluster count by the eigengap heuristic,
//!    segments with normalized spectral clustering, estimates each
//!    cluster's subspace basis with a truncated SVD, and uploads one
//!    uniform unit-sphere sample per cluster.
//! 2. **Central clustering** ([`central`]): the server pools the samples —
//!    which satisfy the semi-random model by construction — and clusters
//!    them with SSC or TSC into `L` global groups.
//! 3. **Local update** ([`scheme`]): devices relabel their partitions by
//!    their samples' global assignments.
//!
//! ## Quick start
//!
//! ```
//! use fedsc::{CentralBackend, FedSc, FedScConfig};
//! use fedsc_federated::partition::{partition_dataset, Partition};
//! use fedsc_subspace::SubspaceModel;
//! use fedsc_clustering::clustering_accuracy;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! // 3 random 3-dimensional subspaces in R^20, 30 points each.
//! let model = SubspaceModel::random(&mut rng, 20, 3, 3);
//! let data = model.sample_dataset(&mut rng, &[30, 30, 30], 0.0);
//! // Distribute over 6 devices, 2 clusters per device (heterogeneity).
//! let fed = partition_dataset(&data, 6, Partition::NonIid { l_prime: 2 }, &mut rng);
//! // One-shot Fed-SC with a central SSC.
//! let out = FedSc::new(FedScConfig::new(3, CentralBackend::Ssc)).run(&fed).unwrap();
//! let acc = clustering_accuracy(&fed.global_truth(), &out.predictions);
//! assert!(acc > 90.0);
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod central;
pub mod config;
pub mod demo;
pub mod local;
pub mod scheme;
pub mod wire;

pub use assign::ClusterAssigner;
pub use config::{BasisDim, CentralBackend, ClusterCountPolicy, FedScConfig, LocalBackend};
pub use scheme::{FedSc, FedScOutput};
pub use wire::{
    agg_seed, collect_uplinks, collect_uplinks_fleet, device_local_output, device_round,
    device_round_traced, majority_relabel, pool_uplinks, run_over_wire, run_round, server_round,
    server_round_fleet, wire_err, RoundPolicy, WireRunOutput, WireTelemetry, SERVER_RNG_SALT,
};
