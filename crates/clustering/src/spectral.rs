//! Normalized spectral clustering (Ng–Jordan–Weiss).
//!
//! The segmentation step every SC method in the paper shares: embed the
//! nodes with the `k` smallest eigenvectors of the normalized Laplacian,
//! row-normalize the embedding, and k-means the rows.

use crate::kmeans::{kmeans, KMeansOptions};
use fedsc_graph::laplacian::normalized_laplacian;
use fedsc_graph::sparse::sparse_normalized_laplacian;
use fedsc_graph::{AffinityGraph, SparseAffinity};
use fedsc_linalg::eigh::{k_smallest, lanczos_beats_dense, SymmetricEig};
use fedsc_linalg::thick_restart::{thick_restart_smallest, ThickRestartOptions};
use fedsc_linalg::{vector, Matrix, Result};
use rand::Rng;

/// Options for spectral clustering.
#[derive(Debug, Clone)]
pub struct SpectralOptions {
    /// Number of clusters.
    pub k: usize,
    /// k-means options for the embedding step (its `k` field is overridden).
    pub kmeans: KMeansOptions,
    /// Parallelism hint for the sparse eigensolver's blocked operator
    /// applies (clamped to at least 1). Labels are bitwise identical for
    /// every value.
    pub threads: usize,
}

impl SpectralOptions {
    /// Default options for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            kmeans: KMeansOptions {
                k,
                restarts: 5,
                ..Default::default()
            },
            threads: 1,
        }
    }
}

/// Clusters the nodes of an affinity graph into `opts.k` groups.
///
/// Returns one label in `0..k` per node.
pub fn spectral_clustering<R: Rng + ?Sized>(
    g: &AffinityGraph,
    opts: &SpectralOptions,
    rng: &mut R,
) -> Result<Vec<usize>> {
    let n = g.len();
    if n == 0 {
        return Ok(vec![]);
    }
    let k = opts.k.clamp(1, n);
    let lap = normalized_laplacian(g);
    let eig = k_smallest(&lap, k)?;
    embed_and_cluster(&eig, n, k, opts, rng)
}

/// [`spectral_clustering`] over a CSR affinity — the subquadratic pipeline's
/// segmentation step. The Laplacian stays in CSR and the eigenpairs come
/// from the matrix-free thick-restart block Lanczos solver, so no `n x n`
/// dense array is ever materialized at scale.
///
/// Below the dense eigensolver cutover (where `k_smallest` would run the
/// full `tred2`/`tql2` factorization anyway) the graph is densified and the
/// call is **bitwise** the dense [`spectral_clustering`] — the CSR
/// round trip and Laplacian mirror the dense arithmetic exactly.
///
/// Above the cutover the solver is seeded with [`kernel_seeds`] — the exact
/// zero eigenvectors `D^{1/2} 1_c` of every edged component — so the
/// degenerate zero eigenvalue of a disconnected graph is captured by
/// construction rather than dug out by restarts (the legacy deflated
/// solver provably missed copies on e.g. disconnected path chains). A
/// debug-build cross-check still compares the zero count against
/// `connected_components`.
pub fn spectral_clustering_sparse<R: Rng + ?Sized>(
    w: &SparseAffinity,
    opts: &SpectralOptions,
    rng: &mut R,
) -> Result<Vec<usize>> {
    let n = w.len();
    if n == 0 {
        return Ok(vec![]);
    }
    let k = opts.k.clamp(1, n);
    // Mirror the `k_smallest` backend cutover: small graphs take the dense
    // path verbatim (bitwise parity), large graphs stay sparse end to end.
    if !lanczos_beats_dense(n, k) {
        return spectral_clustering(&w.to_graph(), opts, rng);
    }
    let _span = fedsc_obs::span("fedsc", "spectral")
        .field("n", n as u64)
        .field("k", k as u64);
    let lap = sparse_normalized_laplacian(w);
    let seeds = kernel_seeds(w);
    let zero_mult = seeds.len().min(k);
    let tr_opts = ThickRestartOptions {
        seeds,
        threads: opts.threads.max(1),
        ..ThickRestartOptions::default()
    };
    let eig = thick_restart_smallest(&lap, k, &tr_opts)?;
    // Cross-check (debug builds): a graph with `c` edged components
    // carries an exact `c`-fold zero eigenvalue (isolated nodes instead
    // keep identity rows, eigenvalue 1). Kernel seeding makes recovering
    // all copies structural, so fewer zeros than components is a solver
    // bug, not an input condition — assert instead of erroring.
    debug_assert!(
        eig.eigenvalues
            .iter()
            .filter(|&&v| v.abs() <= ZERO_EIGENVALUE_TOL)
            .count()
            >= zero_mult,
        "seeded solver returned fewer zero eigenvalues than edged components \
         ({} < {zero_mult})",
        eig.eigenvalues
            .iter()
            .filter(|&&v| v.abs() <= ZERO_EIGENVALUE_TOL)
            .count(),
    );
    embed_and_cluster(&eig, n, k, opts, rng)
}

/// Exact kernel vectors of `w`'s normalized Laplacian, one per **edged**
/// connected component: `D^{1/2} 1_c`, normalized. For node `i` in
/// component `c` the Laplacian row gives
/// `sqrt(d_i) - (1/sqrt(d_i)) * sum_{j in c} w_ij = 0` exactly, so these
/// span the degenerate zero eigenspace by construction. Isolated nodes
/// (degree 0) keep identity rows in the Laplacian — eigenvalue 1, not part
/// of the kernel — and contribute no seed.
pub fn kernel_seeds(w: &SparseAffinity) -> Vec<Vec<f64>> {
    let n = w.len();
    let labels = w.component_labels(0.0);
    let deg = w.degrees();
    let ncomp = labels.iter().map(|&c| c + 1).max().unwrap_or(0);
    let mut comp_deg = vec![0.0f64; ncomp];
    for i in 0..n {
        comp_deg[labels[i]] += deg[i];
    }
    // Seed slots only for components with at least one edge, so a graph
    // with many isolated nodes doesn't allocate `n` length-`n` vectors.
    let mut slot = vec![usize::MAX; ncomp];
    let mut count = 0usize;
    for (c, s) in slot.iter_mut().enumerate() {
        if comp_deg[c] > 0.0 {
            *s = count;
            count += 1;
        }
    }
    let mut seeds = vec![vec![0.0f64; n]; count];
    for i in 0..n {
        let s = slot[labels[i]];
        if s != usize::MAX && deg[i] > 0.0 {
            seeds[s][i] = deg[i].sqrt();
        }
    }
    for s in &mut seeds {
        vector::normalize(s, 1e-300);
    }
    seeds
}

/// Exact zero eigenvalues of the normalized Laplacian come back from the
/// Lanczos path at roundoff scale (`~1e-12`); the smallest *nonzero*
/// eigenvalue of any weakly-connected component this pipeline meets (a
/// hundreds-long path chain has `lambda_2 ~ 1e-4`) sits orders of
/// magnitude above this threshold.
const ZERO_EIGENVALUE_TOL: f64 = 1e-8;

/// Shared NJW tail: transpose the `k` smallest eigenvectors into a `k x n`
/// embedding (one column per node), row-normalize, k-means the columns.
fn embed_and_cluster<R: Rng + ?Sized>(
    eig: &SymmetricEig,
    n: usize,
    k: usize,
    opts: &SpectralOptions,
    rng: &mut R,
) -> Result<Vec<usize>> {
    let mut emb = Matrix::zeros(k, n);
    for node in 0..n {
        for c in 0..k {
            emb[(c, node)] = eig.eigenvectors[(node, c)];
        }
        vector::normalize(emb.col_mut(node), 1e-12);
    }
    let km_opts = KMeansOptions {
        k,
        ..opts.kmeans.clone()
    };
    Ok(kmeans(&emb, &km_opts, rng).labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block_graph(sizes: &[usize], within: f64, between: f64) -> AffinityGraph {
        let n: usize = sizes.iter().sum();
        let mut block = vec![0usize; n];
        let mut idx = 0;
        for (b, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                block[idx] = b;
                idx += 1;
            }
        }
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m[(i, j)] = if block[i] == block[j] {
                        within
                    } else {
                        between
                    };
                }
            }
        }
        AffinityGraph::from_symmetric(&m)
    }

    #[test]
    fn recovers_two_blocks() {
        let g = block_graph(&[5, 5], 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let labels = spectral_clustering(&g, &SpectralOptions::new(2), &mut rng).unwrap();
        assert!(labels[..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..].iter().all(|&l| l == labels[5]));
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn recovers_three_blocks_with_weak_noise() {
        let g = block_graph(&[4, 4, 4], 1.0, 0.02);
        let mut rng = StdRng::seed_from_u64(2);
        let labels = spectral_clustering(&g, &SpectralOptions::new(3), &mut rng).unwrap();
        for b in 0..3 {
            let base = labels[b * 4];
            assert!(labels[b * 4..(b + 1) * 4].iter().all(|&l| l == base));
        }
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[4], labels[8]);
        assert_ne!(labels[0], labels[8]);
    }

    #[test]
    fn many_blocks_above_lanczos_threshold() {
        // 30 blocks of 17 nodes = 510 > the 400-node Lanczos cutover in
        // k_smallest: the near-degenerate 30-fold zero eigenvalue exercises
        // the deflated restart path (regression test for the bug where a
        // single Krylov sequence found only one copy per degenerate
        // eigenvalue and clustering collapsed).
        let g = block_graph(&vec![17; 30], 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let labels = spectral_clustering(&g, &SpectralOptions::new(30), &mut rng).unwrap();
        // Every block must be pure and blocks must be separated.
        let mut block_label = Vec::new();
        for b in 0..30 {
            let base = labels[b * 17];
            assert!(
                labels[b * 17..(b + 1) * 17].iter().all(|&l| l == base),
                "block {b} is split"
            );
            block_label.push(base);
        }
        block_label.sort_unstable();
        block_label.dedup();
        assert_eq!(block_label.len(), 30, "blocks were merged");
    }

    /// Sparse affinity and the bitwise-equal dense graph for a block
    /// structure: coefficient `0.5` in both directions makes each
    /// within-block weight exactly `1.0` under `|C| + |C|^T`.
    fn block_codes(sizes: &[usize]) -> (fedsc_graph::SparseAffinity, AffinityGraph) {
        use fedsc_sparse::SparseVec;
        let n: usize = sizes.iter().sum();
        let mut block = vec![0usize; n];
        let mut idx = 0;
        for (b, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                block[idx] = b;
                idx += 1;
            }
        }
        let mut dense = Matrix::zeros(n, n);
        let mut codes = Vec::with_capacity(n);
        for i in 0..n {
            let mut ind = Vec::new();
            let mut val = Vec::new();
            for j in 0..n {
                if j != i && block[j] == block[i] {
                    dense[(j, i)] = 0.5;
                    ind.push(j);
                    val.push(0.5);
                }
            }
            codes.push(SparseVec::from_parts(n, ind, val));
        }
        (
            fedsc_graph::SparseAffinity::from_codes(&codes),
            AffinityGraph::from_coefficients(&dense),
        )
    }

    #[test]
    fn sparse_path_is_bitwise_dense_below_cutover() {
        // Satellite (3b): below the Lanczos cutover the CSR spectral path
        // must produce bit-for-bit the dense labels — same affinity, same
        // Laplacian, same eigensolver, same seeded k-means draws.
        let (sparse, dense) = block_codes(&[5, 6, 4]);
        let opts = SpectralOptions::new(3);
        let labels_dense =
            spectral_clustering(&dense, &opts, &mut StdRng::seed_from_u64(11)).unwrap();
        let labels_sparse =
            spectral_clustering_sparse(&sparse, &opts, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(labels_dense, labels_sparse);
    }

    #[test]
    fn sparse_path_recovers_blocks_above_cutover() {
        // 30 blocks of 17 nodes = 510 > 400: the CSR Laplacian drives the
        // matrix-free deflated Lanczos solver end to end.
        let (sparse, _) = block_codes(&vec![17; 30]);
        let mut rng = StdRng::seed_from_u64(7);
        let labels =
            spectral_clustering_sparse(&sparse, &SpectralOptions::new(30), &mut rng).unwrap();
        let mut block_label = Vec::new();
        for b in 0..30 {
            let base = labels[b * 17];
            assert!(
                labels[b * 17..(b + 1) * 17].iter().all(|&l| l == base),
                "block {b} is split"
            );
            block_label.push(base);
        }
        block_label.sort_unstable();
        block_label.dedup();
        assert_eq!(block_label.len(), 30, "blocks were merged");
    }

    /// `chains` disconnected path graphs of `len` nodes each, weight
    /// exactly `1.0` per edge (`0.5` coefficients in both directions).
    /// The normalized Laplacian has an exact `chains`-fold zero
    /// eigenvalue, and each chain's spectrum fills `[0, 2]` near-densely
    /// (lambda_2 ~ (pi / len)^2 / 2), the adversarial regime for a
    /// restarted solver chasing a degenerate smallest cluster.
    fn path_chains(chains: usize, len: usize) -> fedsc_graph::SparseAffinity {
        use fedsc_sparse::SparseVec;
        let n = chains * len;
        let mut codes = Vec::with_capacity(n);
        for c in 0..chains {
            for p in 0..len {
                let i = c * len + p;
                let mut ind = Vec::new();
                let mut val = Vec::new();
                if p > 0 {
                    ind.push(i - 1);
                    val.push(0.5);
                }
                if p + 1 < len {
                    ind.push(i + 1);
                    val.push(0.5);
                }
                codes.push(SparseVec::from_parts(n, ind, val));
            }
        }
        fedsc_graph::SparseAffinity::from_codes(&codes)
    }

    /// Regression witness for the deflated-Lanczos miss on disconnected
    /// Laplacians past the dense cutover: 5 disconnected path chains of
    /// 100 nodes carry an exact 5-fold zero eigenvalue, which the legacy
    /// lock-and-restart solver provably missed (it stagnation-locked five
    /// ~2e-4 bulk Ritz values instead and the pipeline could only fail
    /// loudly). The thick-restart solver is seeded with the per-component
    /// kernel vectors `D^{1/2} 1_c`, so every copy of the zero is captured
    /// by construction and each chain comes back as one pure cluster.
    #[test]
    fn disconnected_chains_above_cutover_recover_components() {
        let w = path_chains(5, 100);
        let mut rng = StdRng::seed_from_u64(9);
        let labels = spectral_clustering_sparse(&w, &SpectralOptions::new(5), &mut rng).unwrap();
        let mut chain_label = Vec::new();
        for c in 0..5 {
            let base = labels[c * 100];
            assert!(
                labels[c * 100..(c + 1) * 100].iter().all(|&l| l == base),
                "chain {c} is split"
            );
            chain_label.push(base);
        }
        chain_label.sort_unstable();
        chain_label.dedup();
        assert_eq!(chain_label.len(), 5, "chains were merged");
    }

    #[test]
    fn kernel_seeds_are_exact_zero_eigenvectors() {
        // Companion to the witness above: the seeds the sparse path feeds
        // the eigensolver must be exact kernel vectors — orthonormal, one
        // per edged component (isolated nodes excluded), each with a
        // Laplacian residual at rounding level.
        let w = path_chains(3, 50);
        let seeds = kernel_seeds(&w);
        assert_eq!(seeds.len(), 3);
        let lap = sparse_normalized_laplacian(&w);
        for (a, sa) in seeds.iter().enumerate() {
            let r = lap.matvec(sa);
            let worst = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(worst < 1e-12, "seed {a} residual {worst}");
            for (b, sb) in seeds.iter().enumerate() {
                let d = fedsc_linalg::vector::dot(sa, sb);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12, "seed gram ({a},{b}) = {d}");
            }
        }
        // Isolated nodes contribute no seed.
        use fedsc_sparse::SparseVec;
        let mut codes = vec![
            SparseVec::from_parts(3, vec![1], vec![0.5]),
            SparseVec::from_parts(3, vec![0], vec![0.5]),
            SparseVec::from_parts(3, vec![], vec![]),
        ];
        codes.truncate(3);
        let small = fedsc_graph::SparseAffinity::from_codes(&codes);
        assert_eq!(kernel_seeds(&small).len(), 1);
    }

    #[test]
    fn k_one_gives_single_cluster() {
        let g = block_graph(&[3, 3], 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let labels = spectral_clustering(&g, &SpectralOptions::new(1), &mut rng).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_graph_gives_empty_labels() {
        let g = AffinityGraph::from_symmetric(&Matrix::zeros(0, 0));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(spectral_clustering(&g, &SpectralOptions::new(2), &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn k_clamped_to_node_count() {
        let g = block_graph(&[2], 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let labels = spectral_clustering(&g, &SpectralOptions::new(10), &mut rng).unwrap();
        assert_eq!(labels.len(), 2);
    }
}
