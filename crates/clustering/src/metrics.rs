//! Clustering evaluation metrics: the paper's ACC (Eq. (10)), NMI
//! (Eq. (11)), plus ARI as an additional sanity metric for tests.

use crate::hungarian::max_weight_assignment;

/// Clustering accuracy in percent (paper Eq. (10)): the best label-aligned
/// agreement over all permutations of predicted labels, found exactly with
/// the Hungarian algorithm on the confusion matrix.
///
/// Label values may be arbitrary `usize`s; they are compacted internally.
///
/// ```
/// use fedsc_clustering::clustering_accuracy;
///
/// // Same partition under a different labeling scores 100.
/// assert_eq!(clustering_accuracy(&[0, 0, 1, 1], &[7, 7, 3, 3]), 100.0);
/// // One of four points misplaced scores 75.
/// assert_eq!(clustering_accuracy(&[0, 0, 1, 1], &[0, 0, 1, 0]), 75.0);
/// ```
///
/// # Panics
///
/// Panics when the two labelings have different lengths.
#[must_use]
pub fn clustering_accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "labelings must have equal length");
    let n = truth.len();
    if n == 0 {
        return 100.0;
    }
    let (t_ids, t_k) = compact(truth);
    let (p_ids, p_k) = compact(pred);
    let k = t_k.max(p_k);
    // Confusion counts as weights; pad to square.
    let mut w = vec![0.0f64; k * k];
    for (&t, &p) in t_ids.iter().zip(&p_ids) {
        w[t * k + p] += 1.0;
    }
    let (_, matched) = max_weight_assignment(k, &w);
    100.0 * matched / n as f64
}

/// Normalized mutual information in percent (paper Eq. (11)):
/// `100 * 2 MI(T; P) / (H(T) + H(P))`, with the convention that two
/// single-cluster labelings (both entropies zero) score 100.
pub fn normalized_mutual_information(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "labelings must have equal length");
    let n = truth.len();
    if n == 0 {
        return 100.0;
    }
    let (t_ids, t_k) = compact(truth);
    let (p_ids, p_k) = compact(pred);
    let mut joint = vec![0.0f64; t_k * p_k];
    let mut pt = vec![0.0f64; t_k];
    let mut pp = vec![0.0f64; p_k];
    let inv_n = 1.0 / n as f64;
    for (&t, &p) in t_ids.iter().zip(&p_ids) {
        joint[t * p_k + p] += inv_n;
        pt[t] += inv_n;
        pp[p] += inv_n;
    }
    let h = |dist: &[f64]| -> f64 {
        dist.iter()
            .filter(|&&q| q > 0.0)
            .map(|&q| -q * q.ln())
            .sum()
    };
    let ht = h(&pt);
    let hp = h(&pp);
    let mut mi = 0.0;
    for t in 0..t_k {
        for p in 0..p_k {
            let q = joint[t * p_k + p];
            if q > 0.0 {
                mi += q * (q / (pt[t] * pp[p])).ln();
            }
        }
    }
    if ht + hp <= 0.0 {
        // Both labelings are constant: identical by definition.
        return 100.0;
    }
    (100.0 * 2.0 * mi / (ht + hp)).clamp(0.0, 100.0)
}

/// Adjusted Rand index in `[-1, 1]` (0 expected for random labelings,
/// 1 for identical partitions). Used as a cross-check metric in tests.
pub fn adjusted_rand_index(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "labelings must have equal length");
    let n = truth.len();
    if n < 2 {
        return 1.0;
    }
    let (t_ids, t_k) = compact(truth);
    let (p_ids, p_k) = compact(pred);
    let mut joint = vec![0u64; t_k * p_k];
    let mut rows = vec![0u64; t_k];
    let mut cols = vec![0u64; p_k];
    for (&t, &p) in t_ids.iter().zip(&p_ids) {
        joint[t * p_k + p] += 1;
        rows[t] += 1;
        cols[p] += 1;
    }
    let c2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_joint: f64 = joint.iter().map(|&x| c2(x)).sum();
    let sum_rows: f64 = rows.iter().map(|&x| c2(x)).sum();
    let sum_cols: f64 = cols.iter().map(|&x| c2(x)).sum();
    let total = c2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        return if (sum_joint - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Compacts arbitrary labels to `0..k` ids; returns `(ids, k)`. Uses a
/// BTreeMap so id assignment is deterministic in the label values, not in
/// any hash order.
fn compact(labels: &[usize]) -> (Vec<usize>, usize) {
    let mut map = std::collections::BTreeMap::new();
    let mut ids = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = map.len();
        let id = *map.entry(l).or_insert(next);
        ids.push(id);
    }
    (ids, map.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_100() {
        let t = [0, 0, 1, 1, 2, 2];
        assert_eq!(clustering_accuracy(&t, &t), 100.0);
        assert!((normalized_mutual_information(&t, &t) - 100.0).abs() < 1e-9);
        assert_eq!(adjusted_rand_index(&t, &t), 1.0);
    }

    #[test]
    fn accuracy_is_permutation_invariant() {
        let t = [0, 0, 1, 1, 2, 2];
        let p = [2, 2, 0, 0, 1, 1]; // relabeled but identical partition
        assert_eq!(clustering_accuracy(&t, &p), 100.0);
        assert!((normalized_mutual_information(&t, &p) - 100.0).abs() < 1e-9);
        assert_eq!(adjusted_rand_index(&t, &p), 1.0);
    }

    #[test]
    fn one_mistake_out_of_four() {
        let t = [0, 0, 1, 1];
        let p = [0, 0, 1, 0];
        assert_eq!(clustering_accuracy(&t, &p), 75.0);
        assert!(normalized_mutual_information(&t, &p) < 100.0);
        assert!(adjusted_rand_index(&t, &p) < 1.0);
    }

    #[test]
    fn different_cluster_counts_are_handled() {
        // Prediction over-segments: 2 true clusters, 4 predicted.
        let t = [0, 0, 0, 0, 1, 1, 1, 1];
        let p = [0, 0, 1, 1, 2, 2, 3, 3];
        // Best matching maps two of the predicted clusters; accuracy 50%.
        assert_eq!(clustering_accuracy(&t, &p), 50.0);
        // NMI is positive (prediction is informative) but below 100.
        let nmi = normalized_mutual_information(&t, &p);
        assert!(nmi > 50.0 && nmi < 100.0, "nmi = {nmi}");
    }

    #[test]
    fn constant_prediction_has_zero_nmi() {
        let t = [0, 0, 1, 1];
        let p = [0, 0, 0, 0];
        assert!(normalized_mutual_information(&t, &p) < 1e-9);
        assert_eq!(clustering_accuracy(&t, &p), 50.0);
    }

    #[test]
    fn empty_labelings() {
        assert_eq!(clustering_accuracy(&[], &[]), 100.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 100.0);
    }

    #[test]
    fn noncontiguous_labels_work() {
        let t = [10, 10, 77, 77];
        let p = [3, 3, 9, 9];
        assert_eq!(clustering_accuracy(&t, &p), 100.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = clustering_accuracy(&[0, 1], &[0]);
    }

    #[test]
    fn ari_negative_for_anti_correlated_split() {
        // Each predicted cluster takes exactly half of each true cluster —
        // worse than chance, hand-computed ARI is -0.5.
        let t = [0, 0, 1, 1];
        let p = [0, 1, 0, 1];
        assert!((adjusted_rand_index(&t, &p) + 0.5).abs() < 1e-9);
    }
}
