//! The paper's CONN connectivity metric.
//!
//! For each ground-truth cluster `l`, take the subgraph of the affinity
//! graph restricted to that cluster's points and compute the second-smallest
//! eigenvalue `lambda_l^(2)` of its normalized Laplacian. The paper reports
//! `c = min_l lambda_l^(2)` and the average `c-bar = (1/L) sum_l
//! lambda_l^(2)`: larger values mean each true cluster forms a more tightly
//! connected component (no over-segmentation risk).

use fedsc_graph::laplacian::algebraic_connectivity;
use fedsc_graph::AffinityGraph;
use fedsc_linalg::Result;

/// CONN summary over ground-truth clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Connectivity {
    /// `min_l lambda_l^(2)` — the paper's `c`.
    pub min: f64,
    /// `(1/L) sum_l lambda_l^(2)` — the paper's `c-bar`.
    pub mean: f64,
    /// Per-cluster second eigenvalues, indexed by compacted cluster id.
    pub per_cluster: Vec<f64>,
}

/// Computes CONN for an affinity graph under a ground-truth labeling.
///
/// # Panics
///
/// Panics when `truth.len() != graph.len()`.
pub fn connectivity(graph: &AffinityGraph, truth: &[usize]) -> Result<Connectivity> {
    assert_eq!(truth.len(), graph.len(), "labeling must cover every node");
    let max_label = truth.iter().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); max_label];
    for (i, &l) in truth.iter().enumerate() {
        members[l].push(i);
    }
    let mut per_cluster = Vec::new();
    for nodes in members.into_iter().filter(|m| !m.is_empty()) {
        let sub = graph.subgraph(&nodes);
        per_cluster.push(algebraic_connectivity(&sub)?);
    }
    if per_cluster.is_empty() {
        return Ok(Connectivity {
            min: 0.0,
            mean: 0.0,
            per_cluster,
        });
    }
    let min = per_cluster.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = per_cluster.iter().sum::<f64>() / per_cluster.len() as f64;
    Ok(Connectivity {
        min,
        mean,
        per_cluster,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsc_linalg::Matrix;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> AffinityGraph {
        let mut m = Matrix::zeros(n, n);
        for &(i, j) in edges {
            m[(i, j)] = 1.0;
            m[(j, i)] = 1.0;
        }
        AffinityGraph::from_symmetric(&m)
    }

    #[test]
    fn connected_clusters_have_positive_conn() {
        // Two triangles, labels match the triangles.
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
        let c = connectivity(&g, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(c.min > 0.5);
        assert!(c.mean >= c.min);
        assert_eq!(c.per_cluster.len(), 2);
    }

    #[test]
    fn split_cluster_scores_zero_min() {
        // Cluster 0 is two disconnected pairs (over-segmentation): its
        // lambda^(2) is 0; cluster 1 is a connected edge.
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let c = connectivity(&g, &[0, 0, 0, 0, 1, 1]).unwrap();
        assert!(c.min < 1e-10);
        assert!(c.mean > 0.0); // cluster 1 is connected
    }

    #[test]
    fn empty_clusters_are_skipped() {
        let g = graph_from_edges(2, &[(0, 1)]);
        // Labels 0 and 5: intermediate ids unused.
        let c = connectivity(&g, &[5, 5]).unwrap();
        assert_eq!(c.per_cluster.len(), 1);
        assert!(c.min > 0.0);
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let c = connectivity(&g, &[0, 0, 1]).unwrap();
        assert_eq!(c.per_cluster.len(), 2);
        assert!(c.min < 1e-12);
    }
}
