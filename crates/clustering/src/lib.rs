//! # fedsc-clustering
//!
//! Generic clustering algorithms and the paper's evaluation metrics.
//!
//! * [`kmeans`] — Lloyd's k-means with k-means++ / farthest-point seeding
//!   (spectral embedding step, k-FED local and server clustering).
//! * [`spectral`] — normalized spectral clustering (Ng–Jordan–Weiss).
//! * [`hungarian`] — exact linear assignment for label alignment.
//! * [`metrics`] — ACC (paper Eq. (10)), NMI (Eq. (11)), ARI.
//! * [`conn`] — the paper's CONN connectivity metric (per-cluster
//!   second-smallest normalized-Laplacian eigenvalue).

#![warn(missing_docs)]
// Indexed loops over matrix dimensions are the idiom in numerical kernels
// (parallel indexing of several buffers); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod conn;
pub mod hungarian;
pub mod kmeans;
pub mod metrics;
pub mod spectral;

pub use kmeans::{kmeans, KMeansInit, KMeansOptions, KMeansResult};
pub use metrics::{adjusted_rand_index, clustering_accuracy, normalized_mutual_information};
pub use spectral::{spectral_clustering, spectral_clustering_sparse, SpectralOptions};
