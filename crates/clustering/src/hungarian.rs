//! Hungarian (Kuhn–Munkres) assignment.
//!
//! The paper's clustering-accuracy metric (Eq. (10)) maximizes the confusion
//! matrix trace over all label permutations; that maximization is a linear
//! assignment problem, solved here exactly in `O(n^3)` with the standard
//! potentials formulation (JV-style shortest augmenting paths).

/// Solves the minimum-cost assignment for a square `n x n` cost matrix given
/// in row-major order. Returns `(assignment, total_cost)` where
/// `assignment[row] = col`.
///
/// # Panics
///
/// Panics when `cost.len() != n * n` or any cost is non-finite.
pub fn min_cost_assignment(n: usize, cost: &[f64]) -> (Vec<usize>, f64) {
    assert_eq!(cost.len(), n * n, "cost matrix must be n x n");
    assert!(cost.iter().all(|c| c.is_finite()), "costs must be finite");
    if n == 0 {
        return (vec![], 0.0);
    }
    const INF: f64 = f64::INFINITY;
    // Potentials and matching, 1-indexed internally (index 0 is a sentinel).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r * n + c])
        .sum();
    (assignment, total)
}

/// Maximum-weight assignment (negates and delegates).
pub fn max_weight_assignment(n: usize, weight: &[f64]) -> (Vec<usize>, f64) {
    let neg: Vec<f64> = weight.iter().map(|w| -w).collect();
    let (assignment, cost) = min_cost_assignment(n, &neg);
    (assignment, -cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_optimal_for_diagonal_costs() {
        // Cheapest choice is the diagonal.
        let cost = [0.0, 9.0, 9.0, 9.0, 0.0, 9.0, 9.0, 9.0, 0.0];
        let (a, c) = min_cost_assignment(3, &cost);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn classic_three_by_three() {
        // Known instance with optimum 5 (1->b, 2->a, 3->c scaled).
        let cost = [
            1.0, 2.0, 3.0, //
            2.0, 4.0, 6.0, //
            3.0, 6.0, 9.0,
        ];
        let (_, c) = min_cost_assignment(3, &cost);
        assert_eq!(c, 10.0); // 3 + 4 + 3
    }

    #[test]
    fn anti_diagonal_forced() {
        let cost = [
            10.0, 10.0, 0.0, //
            10.0, 0.0, 10.0, //
            0.0, 10.0, 10.0,
        ];
        let (a, c) = min_cost_assignment(3, &cost);
        assert_eq!(a, vec![2, 1, 0]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn beats_greedy() {
        // Greedy picks (0,0)=1 then forced (1,1)=100: total 101.
        // Optimal is (0,1)=2 + (1,0)=2 = 4.
        let cost = [1.0, 2.0, 2.0, 100.0];
        let (_, c) = min_cost_assignment(2, &cost);
        assert_eq!(c, 4.0);
    }

    #[test]
    fn max_weight_mirrors_min_cost() {
        let w = [5.0, 1.0, 1.0, 5.0];
        let (a, total) = max_weight_assignment(2, &w);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn single_element_and_empty() {
        let (a, c) = min_cost_assignment(1, &[7.0]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 7.0);
        let (a, c) = min_cost_assignment(0, &[]);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
    }

    #[test]
    fn assignment_is_a_permutation() {
        // Pseudo-random 6x6 instance: result must be a permutation and no
        // worse than the identity assignment.
        let n = 6;
        let mut cost = vec![0.0; n * n];
        let mut s = 12345u64;
        for v in &mut cost {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = (s >> 33) as f64 / 1e9;
        }
        let (a, c) = min_cost_assignment(n, &cost);
        let mut seen = vec![false; n];
        for &col in &a {
            assert!(!seen[col], "duplicate column");
            seen[col] = true;
        }
        let identity: f64 = (0..n).map(|i| cost[i * n + i]).sum();
        assert!(c <= identity + 1e-12);
    }
}
