//! Lloyd's k-means with k-means++ and farthest-point initialization.
//!
//! Three consumers in this workspace: the final step of normalized spectral
//! clustering (on Laplacian-embedding rows), the k-FED baseline's local
//! clustering, and k-FED's server-side aggregation (which uses
//! farthest-point seeding per Dennis et al.).

use fedsc_linalg::{vector, Matrix};
use rand::{Rng, RngExt as _};

/// Initialization strategy for the centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansInit {
    /// k-means++: D^2-weighted random seeding (Arthur & Vassilvitskii).
    PlusPlus,
    /// Deterministic-after-first-pick farthest-point traversal — the
    /// seeding used by k-FED's server aggregation (Awasthi–Sheffet style).
    FarthestPoint,
}

/// Options for Lloyd's iterations.
#[derive(Debug, Clone)]
pub struct KMeansOptions {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when total centroid movement drops below this.
    pub tol: f64,
    /// Seeding strategy.
    pub init: KMeansInit,
    /// Number of random restarts; the run with the lowest inertia wins.
    pub restarts: usize,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 100,
            tol: 1e-9,
            init: KMeansInit::PlusPlus,
            restarts: 3,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
#[must_use = "dropping a k-means result discards the clustering"]
pub struct KMeansResult {
    /// Cluster label per point (column of the input).
    pub labels: Vec<usize>,
    /// Centroids as columns (`dim x k`).
    pub centroids: Matrix,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Runs k-means over the columns of `data` (`dim x n`).
///
/// When `n < k` every point becomes its own cluster and the remaining
/// centroids are empty duplicates of the last point — callers in the
/// federated pipeline guard against that but the behavior is still defined.
pub fn kmeans<R: Rng + ?Sized>(data: &Matrix, opts: &KMeansOptions, rng: &mut R) -> KMeansResult {
    let n = data.cols();
    let k = opts.k.max(1);
    if n == 0 {
        return KMeansResult {
            labels: vec![],
            centroids: Matrix::zeros(data.rows(), 0),
            inertia: 0.0,
        };
    }
    let restarts = opts.restarts.max(1);
    let mut best = kmeans_once(data, k.min(n), opts, rng);
    for _ in 1..restarts {
        let run = kmeans_once(data, k.min(n), opts, rng);
        if run.inertia < best.inertia {
            best = run;
        }
    }
    best
}

fn kmeans_once<R: Rng + ?Sized>(
    data: &Matrix,
    k: usize,
    opts: &KMeansOptions,
    rng: &mut R,
) -> KMeansResult {
    let n = data.cols();
    let dim = data.rows();
    let mut centroids = match opts.init {
        KMeansInit::PlusPlus => init_plus_plus(data, k, rng),
        KMeansInit::FarthestPoint => init_farthest(data, k, rng),
    };
    let mut labels = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _ in 0..opts.max_iters {
        // Assignment step.
        inertia = 0.0;
        for j in 0..n {
            let p = data.col(j);
            let mut best_c = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = vector::dist2_sq(p, centroids.col(c));
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            labels[j] = best_c;
            inertia += best_d;
        }
        // Update step.
        let mut sums = Matrix::zeros(dim, k);
        let mut counts = vec![0usize; k];
        for j in 0..n {
            let c = labels[j];
            counts[c] += 1;
            vector::axpy(1.0, data.col(j), sums.col_mut(c));
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid (standard empty-cluster repair).
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = vector::dist2_sq(data.col(a), centroids.col(labels[a]));
                        let db = vector::dist2_sq(data.col(b), centroids.col(labels[b]));
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0);
                sums.col_mut(c).copy_from_slice(data.col(far));
                counts[c] = 1;
            }
            let inv = 1.0 / counts[c] as f64;
            let new_c: Vec<f64> = sums.col(c).iter().map(|v| v * inv).collect();
            movement += vector::dist2_sq(&new_c, centroids.col(c));
            centroids.col_mut(c).copy_from_slice(&new_c);
        }
        if movement < opts.tol {
            break;
        }
    }
    KMeansResult {
        labels,
        centroids,
        inertia,
    }
}

fn init_plus_plus<R: Rng + ?Sized>(data: &Matrix, k: usize, rng: &mut R) -> Matrix {
    let n = data.cols();
    let mut centroids = Matrix::zeros(data.rows(), k);
    let first = rng.random_range(0..n);
    centroids.col_mut(0).copy_from_slice(data.col(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|j| vector::dist2_sq(data.col(j), centroids.col(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (j, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = j;
                    break;
                }
            }
            chosen
        };
        centroids.col_mut(c).copy_from_slice(data.col(pick));
        for (j, d) in d2.iter_mut().enumerate() {
            *d = d.min(vector::dist2_sq(data.col(j), centroids.col(c)));
        }
    }
    centroids
}

fn init_farthest<R: Rng + ?Sized>(data: &Matrix, k: usize, rng: &mut R) -> Matrix {
    let n = data.cols();
    let mut centroids = Matrix::zeros(data.rows(), k);
    let first = rng.random_range(0..n);
    centroids.col_mut(0).copy_from_slice(data.col(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|j| vector::dist2_sq(data.col(j), centroids.col(0)))
        .collect();
    for c in 1..k {
        let far = d2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        centroids.col_mut(c).copy_from_slice(data.col(far));
        for (j, d) in d2.iter_mut().enumerate() {
            *d = d.min(vector::dist2_sq(data.col(j), centroids.col(c)));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Matrix {
        // Tight blobs around (0,0) and (10,10).
        Matrix::from_columns(&[
            &[0.0, 0.1],
            &[0.1, 0.0],
            &[-0.1, 0.05],
            &[10.0, 10.1],
            &[10.1, 9.9],
            &[9.9, 10.0],
        ])
        .unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(
            &data,
            &KMeansOptions {
                k: 2,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.labels[0], res.labels[1]);
        assert_eq!(res.labels[0], res.labels[2]);
        assert_eq!(res.labels[3], res.labels[4]);
        assert_eq!(res.labels[3], res.labels[5]);
        assert_ne!(res.labels[0], res.labels[3]);
        assert!(res.inertia < 0.2);
    }

    #[test]
    fn farthest_point_seeding_also_works() {
        let data = two_blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let opts = KMeansOptions {
            k: 2,
            init: KMeansInit::FarthestPoint,
            ..Default::default()
        };
        let res = kmeans(&data, &opts, &mut rng);
        assert_ne!(res.labels[0], res.labels[3]);
    }

    #[test]
    fn k_equals_one_returns_mean() {
        let data = Matrix::from_columns(&[&[0.0], &[2.0], &[4.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let res = kmeans(
            &data,
            &KMeansOptions {
                k: 1,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((res.centroids[(0, 0)] - 2.0).abs() < 1e-9);
        assert!(res.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn more_clusters_than_points_is_defined() {
        let data = Matrix::from_columns(&[&[0.0], &[5.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let res = kmeans(
            &data,
            &KMeansOptions {
                k: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(res.labels.len(), 2);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn empty_input() {
        let data = Matrix::zeros(3, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&data, &KMeansOptions::default(), &mut rng);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn inertia_never_worse_with_more_restarts() {
        let data = two_blobs();
        let few = {
            let mut rng = StdRng::seed_from_u64(6);
            kmeans(
                &data,
                &KMeansOptions {
                    k: 2,
                    restarts: 1,
                    ..Default::default()
                },
                &mut rng,
            )
            .inertia
        };
        let many = {
            let mut rng = StdRng::seed_from_u64(6);
            kmeans(
                &data,
                &KMeansOptions {
                    k: 2,
                    restarts: 8,
                    ..Default::default()
                },
                &mut rng,
            )
            .inertia
        };
        assert!(many <= few + 1e-12);
    }
}
