//! Property-based tests for the clustering layer: k-means objective
//! monotonicity, Hungarian optimality bounds, and metric consistency.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_clustering::hungarian::{max_weight_assignment, min_cost_assignment};
use fedsc_clustering::kmeans::{kmeans, KMeansOptions};
use fedsc_clustering::{adjusted_rand_index, clustering_accuracy};
use fedsc_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn points(n: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, n * dim)
        .prop_map(move |data| Matrix::from_col_major(dim, n, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_labels_in_range_and_inertia_nonincreasing_in_k(
        data in (4usize..12).prop_flat_map(|n| points(n, 3)),
        seed in 0u64..100,
    ) {
        let n = data.cols();
        let mut prev = f64::INFINITY;
        for k in 1..=n.min(4) {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = kmeans(&data, &KMeansOptions { k, restarts: 4, ..Default::default() }, &mut rng);
            prop_assert_eq!(res.labels.len(), n);
            prop_assert!(res.labels.iter().all(|&l| l < k));
            prop_assert!(res.inertia >= -1e-9);
            // More clusters never needs to cost more (up to solver noise).
            prop_assert!(res.inertia <= prev + 1e-6, "k={k}: {} > {prev}", res.inertia);
            prev = res.inertia.min(prev);
        }
    }

    #[test]
    fn hungarian_is_a_permutation_no_worse_than_identity(
        n in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / 1e9
        };
        let cost: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let (assign, total) = min_cost_assignment(n, &cost);
        // Permutation.
        let mut seen = vec![false; n];
        for &c in &assign {
            prop_assert!(!seen[c]);
            seen[c] = true;
        }
        // Optimal <= identity and <= reversed diagonal.
        let identity: f64 = (0..n).map(|i| cost[i * n + i]).sum();
        let reversed: f64 = (0..n).map(|i| cost[i * n + (n - 1 - i)]).sum();
        prop_assert!(total <= identity + 1e-9);
        prop_assert!(total <= reversed + 1e-9);
        // Max-weight is consistent with min-cost under negation.
        let (_, best) = max_weight_assignment(n, &cost);
        let neg: Vec<f64> = cost.iter().map(|c| -c).collect();
        let (_, worst_neg) = min_cost_assignment(n, &neg);
        prop_assert!((best + worst_neg).abs() < 1e-9);
    }

    #[test]
    fn accuracy_dominates_random_and_ari_agrees_on_perfection(
        truth in proptest::collection::vec(0usize..3, 6..24),
    ) {
        // ACC of the truth against itself is 100 and ARI 1.
        prop_assert_eq!(clustering_accuracy(&truth, &truth), 100.0);
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
        // ACC can never fall below the share of the largest cluster when
        // predicting a single constant label.
        let constant = vec![0usize; truth.len()];
        let acc = clustering_accuracy(&truth, &constant);
        let mut counts = [0usize; 3];
        for &t in &truth {
            counts[t] += 1;
        }
        let largest = *counts.iter().max().unwrap() as f64;
        let expect = 100.0 * largest / truth.len() as f64;
        prop_assert!((acc - expect).abs() < 1e-9, "{acc} vs {expect}");
    }
}
