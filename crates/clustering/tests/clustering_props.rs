//! Property-based tests for the clustering layer: k-means objective
//! monotonicity, Hungarian optimality bounds, and metric consistency.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_clustering::hungarian::{max_weight_assignment, min_cost_assignment};
use fedsc_clustering::kmeans::{kmeans, KMeansOptions};
use fedsc_clustering::spectral::kernel_seeds;
use fedsc_clustering::{adjusted_rand_index, clustering_accuracy};
use fedsc_graph::sparse::sparse_normalized_laplacian;
use fedsc_graph::SparseAffinity;
use fedsc_linalg::thick_restart::{thick_restart_smallest, ThickRestartOptions};
use fedsc_linalg::Matrix;
use fedsc_sparse::SparseVec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Disjoint union of complete graphs with uniform coefficient 0.5 — the
/// normalized Laplacian has an exact zero eigenvalue per block and the rest
/// of the spectrum clustered near `s / (s - 1)`.
fn block_affinity(sizes: &[usize]) -> SparseAffinity {
    let n: usize = sizes.iter().sum();
    let mut block = vec![0usize; n];
    let mut idx = 0;
    for (b, &s) in sizes.iter().enumerate() {
        for _ in 0..s {
            block[idx] = b;
            idx += 1;
        }
    }
    let mut codes = Vec::with_capacity(n);
    for i in 0..n {
        let mut ind = Vec::new();
        let mut val = Vec::new();
        for j in 0..n {
            if j != i && block[j] == block[i] {
                ind.push(j);
                val.push(0.5);
            }
        }
        codes.push(SparseVec::from_parts(n, ind, val));
    }
    SparseAffinity::from_codes(&codes)
}

fn points(n: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, n * dim)
        .prop_map(move |data| Matrix::from_col_major(dim, n, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_labels_in_range_and_inertia_nonincreasing_in_k(
        data in (4usize..12).prop_flat_map(|n| points(n, 3)),
        seed in 0u64..100,
    ) {
        let n = data.cols();
        let mut prev = f64::INFINITY;
        for k in 1..=n.min(4) {
            let mut rng = StdRng::seed_from_u64(seed);
            let res = kmeans(&data, &KMeansOptions { k, restarts: 4, ..Default::default() }, &mut rng);
            prop_assert_eq!(res.labels.len(), n);
            prop_assert!(res.labels.iter().all(|&l| l < k));
            prop_assert!(res.inertia >= -1e-9);
            // More clusters never needs to cost more (up to solver noise).
            prop_assert!(res.inertia <= prev + 1e-6, "k={k}: {} > {prev}", res.inertia);
            prev = res.inertia.min(prev);
        }
    }

    #[test]
    fn hungarian_is_a_permutation_no_worse_than_identity(
        n in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / 1e9
        };
        let cost: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let (assign, total) = min_cost_assignment(n, &cost);
        // Permutation.
        let mut seen = vec![false; n];
        for &c in &assign {
            prop_assert!(!seen[c]);
            seen[c] = true;
        }
        // Optimal <= identity and <= reversed diagonal.
        let identity: f64 = (0..n).map(|i| cost[i * n + i]).sum();
        let reversed: f64 = (0..n).map(|i| cost[i * n + (n - 1 - i)]).sum();
        prop_assert!(total <= identity + 1e-9);
        prop_assert!(total <= reversed + 1e-9);
        // Max-weight is consistent with min-cost under negation.
        let (_, best) = max_weight_assignment(n, &cost);
        let neg: Vec<f64> = cost.iter().map(|c| -c).collect();
        let (_, worst_neg) = min_cost_assignment(n, &neg);
        prop_assert!((best + worst_neg).abs() < 1e-9);
    }

    #[test]
    fn random_block_graphs_above_cutover_recover_exact_zero_multiplicity(
        sizes in proptest::collection::vec(101usize..135, 4..7),
    ) {
        // 4..7 blocks of 101..135 nodes: n in [404, 810], always past the
        // dense cutover (n > 400, k small), without needing a filter.
        // Satellite (PR 10): a q-component block graph past the dense
        // cutover must yield exactly q zero eigenvalues from the seeded
        // thick-restart solver — no copy of the degenerate kernel missed
        // (the legacy lock-and-restart failure mode) and no spurious
        // extras. Asking for q + 2 pairs checks both sides of the gap.
        let q = sizes.len();
        let w = block_affinity(&sizes);
        let seeds = kernel_seeds(&w);
        prop_assert_eq!(seeds.len(), q);
        let lap = sparse_normalized_laplacian(&w);
        let opts = ThickRestartOptions { seeds, ..ThickRestartOptions::default() };
        let eig = thick_restart_smallest(&lap, q + 2, &opts).unwrap();
        let zeros = eig.eigenvalues.iter().filter(|&&v| v.abs() <= 1e-8).count();
        prop_assert_eq!(zeros, q, "eigenvalues: {:?}", eig.eigenvalues);
        // The first nonzero of a complete block K_s sits at s / (s - 1).
        prop_assert!(eig.eigenvalues[q] > 0.9, "gap collapsed: {:?}", eig.eigenvalues);
    }

    #[test]
    fn accuracy_dominates_random_and_ari_agrees_on_perfection(
        truth in proptest::collection::vec(0usize..3, 6..24),
    ) {
        // ACC of the truth against itself is 100 and ARI 1.
        prop_assert_eq!(clustering_accuracy(&truth, &truth), 100.0);
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
        // ACC can never fall below the share of the largest cluster when
        // predicting a single constant label.
        let constant = vec![0usize; truth.len()];
        let acc = clustering_accuracy(&truth, &constant);
        let mut counts = [0usize; 3];
        for &t in &truth {
            counts[t] += 1;
        }
        let largest = *counts.iter().max().unwrap() as f64;
        let expect = 100.0 * largest / truth.len() as f64;
        prop_assert!((acc - expect).abs() < 1e-9, "{acc} vs {expect}");
    }
}
