//! End-to-end tests for the hierarchical aggregation tree: the degenerate
//! single-tier topology must be bit-identical to the flat wire round, the
//! multi-tier tree must cluster correctly over all three transports with
//! byte-exact per-tier accounting, and per-tier quorum failures must fail
//! whole subtrees without failing the round.

use fedsc::{device_local_output, run_over_wire, CentralBackend, FedScConfig, RoundPolicy};
use fedsc_clustering::clustering_accuracy;
use fedsc_federated::channel::UplinkMessage;
use fedsc_federated::partition::{partition_dataset, FederatedDataset, Partition};
use fedsc_hier::{run_hier_round, run_hier_round_with_dead, HierPolicy, HierTopology, TierTraffic};
use fedsc_subspace::SubspaceModel;
use fedsc_transport::{FaultConfig, FaultyInMemoryTransport, InMemoryTransport, TcpTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The wire-round fixture: 3 rank-3 subspaces in R^20, 48 points each,
/// spread non-iid over `devices` devices.
fn fixture(seed: u64, devices: usize) -> (FederatedDataset, FedScConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SubspaceModel::random(&mut rng, 20, 3, 3);
    let ds = model.sample_dataset(&mut rng, &[48, 48, 48], 0.0);
    let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime: 2 }, &mut rng);
    let cfg = FedScConfig::new(3, CentralBackend::Ssc);
    (fed, cfg)
}

/// The deep-tree fixture: 3 rank-1 subspaces (lines) in R^20 with four
/// uploaded samples per local cluster. Middle tiers pool only a handful
/// of children, so the per-tier SSC needs every subspace represented by
/// several samples — rank-1 subspaces keep self-expressiveness intact all
/// the way up the tree (two samples on a line already express each
/// other), which is the regime hierarchical aggregation is honest in.
fn deep_fixture(seed: u64, devices: usize) -> (FederatedDataset, FedScConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SubspaceModel::random(&mut rng, 20, 1, 3);
    let ds = model.sample_dataset(&mut rng, &[48, 48, 48], 0.0);
    let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime: 2 }, &mut rng);
    let mut cfg = FedScConfig::new(3, CentralBackend::Ssc);
    cfg.samples_per_cluster = 4;
    (fed, cfg)
}

#[test]
fn flat_topology_is_bit_identical_to_run_over_wire() {
    let (fed, cfg) = fixture(1, 12);
    let flat = run_over_wire(&fed, &cfg).expect("flat reference round (seed-1 fixture)");
    let topo = HierTopology::flat(12);
    let hier = run_hier_round(
        &fed,
        &cfg,
        &topo,
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("degenerate single-tier round (seed-1 fixture)");
    // Same helpers, same seeds, same rng salt: the degenerate tree cannot
    // drift from the flat round — bit for bit, bytes included.
    assert_eq!(hier.wire.predictions, flat.predictions);
    assert_eq!(hier.wire.uplink_bytes, flat.uplink_bytes);
    assert_eq!(hier.wire.downlink_bytes, flat.downlink_bytes);
    assert_eq!(hier.wire.excluded, flat.excluded);
    assert_eq!(hier.tiers.len(), 1);
    assert_eq!(hier.tiers[0].uplink_bytes, flat.uplink_bytes);
    assert_eq!(hier.tiers[0].uplink_messages, 12);
    assert_eq!(hier.tiers[0].downlink_messages, 12);
}

#[test]
fn flat_topology_over_clean_faulty_link_matches_predictions() {
    let (fed, cfg) = fixture(1, 12);
    let flat = run_over_wire(&fed, &cfg).expect("flat reference round (seed-1 fixture)");
    // A clean fault plan still frames and checksums every message, so the
    // byte counts differ but the decoded round must not.
    let transport = FaultyInMemoryTransport::new(FaultConfig {
        seed: 5,
        ..FaultConfig::default()
    });
    let hier = run_hier_round(
        &fed,
        &cfg,
        &HierTopology::flat(12),
        &transport,
        &HierPolicy::default(),
    )
    .expect("single-tier round over the clean framed link");
    assert_eq!(hier.wire.predictions, flat.predictions);
    assert!(hier.wire.excluded.is_empty());
    assert!(
        hier.wire.uplink_bytes > flat.uplink_bytes,
        "framed accounting must exceed payload accounting"
    );
}

#[test]
fn two_tier_tree_clusters_correctly() {
    let (fed, cfg) = deep_fixture(3, 12);
    let topo = HierTopology::new(12, vec![4]).expect("12→4→root tree");
    let hier = run_hier_round(
        &fed,
        &cfg,
        &topo,
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("two-tier round (seed-3 fixture)");
    let acc = clustering_accuracy(&fed.global_truth(), &hier.wire.predictions);
    assert!(acc > 90.0, "accuracy {acc}");
    assert!(hier.wire.excluded.is_empty());
    assert_eq!(hier.tiers.len(), 2);
    // Determinism: the staged driver is single-threaded and fully seeded.
    let again = run_hier_round(
        &fed,
        &cfg,
        &topo,
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("repeat two-tier round (seed-3 fixture)");
    assert_eq!(again.wire.predictions, hier.wire.predictions);
    // Every tier spent real (but run-specific) wall time; the rest of the
    // accounting is deterministic.
    let normalize = |tiers: &[TierTraffic]| -> Vec<TierTraffic> {
        tiers
            .iter()
            .map(|t| {
                assert!(t.wall_ns > 0, "tier reported zero wall time");
                TierTraffic {
                    wall_ns: 0,
                    ..t.clone()
                }
            })
            .collect()
    };
    assert_eq!(normalize(&again.tiers), normalize(&hier.tiers));
}

#[test]
fn three_tier_tree_clusters_correctly_over_tcp() {
    let (fed, cfg) = deep_fixture(4, 12);
    let reference = run_hier_round(
        &fed,
        &cfg,
        &HierTopology::new(12, vec![6, 2]).expect("12→6→2→root tree"),
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("three-tier in-memory round (seed-4 fixture)");
    let acc = clustering_accuracy(&fed.global_truth(), &reference.wire.predictions);
    assert!(acc > 90.0, "accuracy {acc}");
    let tcp = run_hier_round(
        &fed,
        &cfg,
        &HierTopology::new(12, vec![6, 2]).expect("12→6→2→root tree"),
        &TcpTransport::loopback(),
        &HierPolicy::default(),
    )
    .expect("three-tier TCP loopback round (seed-4 fixture)");
    // The transport carries opaque bytes: real sockets cannot perturb the
    // clustering, only the (framed) byte accounting.
    assert_eq!(tcp.wire.predictions, reference.wire.predictions);
    for (t, (mem_tier, tcp_tier)) in reference.tiers.iter().zip(tcp.tiers.iter()).enumerate() {
        assert!(
            tcp_tier.uplink_bytes > mem_tier.uplink_bytes,
            "tier {t}: TCP framing must exceed payload accounting"
        );
    }
}

#[test]
fn tier_zero_accounting_is_byte_exact() {
    let (fed, cfg) = fixture(2, 12);
    let topo = HierTopology::new(12, vec![3]).expect("12→3→root tree");
    let hier = run_hier_round(
        &fed,
        &cfg,
        &topo,
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("two-tier round (seed-2 fixture)");
    // The in-memory link counts payload bytes only, and every device's
    // payload is deterministic — recompute the exact tier-0 ingress.
    let expected_up: usize = (0..12)
        .map(|z| {
            let out = device_local_output(&fed.devices[z].data, z, &cfg)
                .expect("device local output is deterministic");
            UplinkMessage {
                dim: out.samples.rows(),
                samples: out.samples,
            }
            .encode()
            .len()
        })
        .sum();
    assert_eq!(hier.tiers[0].uplink_bytes, expected_up);
    assert_eq!(hier.tiers[0].uplink_messages, 12);
    // Root ingress carries at most one representative per merged cluster
    // per aggregator: 3 aggregators × (16-byte header + 3 reps × 20 f64s).
    let root_cap = 3 * (16 + 8 * 20 * 3);
    assert!(
        hier.root_uplink_bytes() <= root_cap,
        "root uplink {} exceeds the cluster-count cap {root_cap}",
        hier.root_uplink_bytes()
    );
    assert_eq!(hier.wire.uplink_bytes, hier.root_uplink_bytes());
    assert_eq!(
        hier.total_uplink_bytes(),
        hier.tiers.iter().map(|t| t.uplink_bytes).sum::<usize>()
    );
}

#[test]
fn failed_subtree_falls_back_without_failing_the_round() {
    let (fed, cfg) = deep_fixture(3, 12);
    // 12 devices → 4 aggregators of 3 children each. Kill all of
    // aggregator 0's children: it misses quorum and fails its subtree;
    // the root proceeds on 3 of 4 aggregators.
    let topo = HierTopology::new(12, vec![4]).expect("12→4→root tree");
    let policy = HierPolicy {
        tiers: vec![
            RoundPolicy {
                quorum: Some(1),
                deadline: Duration::from_millis(300),
                ..RoundPolicy::default()
            },
            RoundPolicy {
                quorum: Some(3),
                deadline: Duration::from_millis(300),
                ..RoundPolicy::default()
            },
        ],
    };
    let dead = [0usize, 1, 2];
    let hier = run_hier_round_with_dead(&fed, &cfg, &topo, &InMemoryTransport, &policy, &dead)
        .expect("round should survive one failed subtree");
    assert_eq!(hier.wire.excluded, dead.to_vec());
    assert_eq!(hier.tiers[0].excluded_children, dead.to_vec());
    // The failed aggregator surfaces as a straggler at the root tier.
    assert_eq!(hier.tiers[1].excluded_children, vec![0]);
    for &z in &dead {
        for i in 0..fed.devices[z].data.cols() {
            // Fallback labels for the points the round never clustered.
            let g = fed.global_index[z][i];
            assert_eq!(hier.wire.predictions[g], 0, "device {z} point {i}");
        }
    }
    // The healthy devices still cluster correctly.
    let truth = fed.global_truth();
    let healthy: Vec<usize> = (3..12).flat_map(|z| fed.global_index[z].clone()).collect();
    let t: Vec<usize> = healthy.iter().map(|&g| truth[g]).collect();
    let p: Vec<usize> = healthy.iter().map(|&g| hier.wire.predictions[g]).collect();
    let acc = clustering_accuracy(&t, &p);
    assert!(acc > 90.0, "healthy-device accuracy {acc}");
}

#[test]
fn root_quorum_miss_fails_the_round() {
    let (fed, cfg) = deep_fixture(7, 12);
    let topo = HierTopology::new(12, vec![4]).expect("12→4→root tree");
    let policy = HierPolicy {
        tiers: vec![
            RoundPolicy {
                quorum: Some(1),
                deadline: Duration::from_millis(200),
                ..RoundPolicy::default()
            },
            // The root insists on all 4 aggregators; killing one subtree
            // entirely starves it.
            RoundPolicy {
                quorum: Some(4),
                deadline: Duration::from_millis(200),
                ..RoundPolicy::default()
            },
        ],
    };
    let err = run_hier_round_with_dead(&fed, &cfg, &topo, &InMemoryTransport, &policy, &[0, 1, 2]);
    assert!(
        err.is_err(),
        "root quorum 4/4 with a dead subtree must fail"
    );
}

#[test]
fn single_aggregator_chain_and_single_device_degenerate_trees_run() {
    // Z devices → 1 aggregator → root: the aggregator pools everything.
    let (fed, cfg) = deep_fixture(8, 12);
    let chain = run_hier_round(
        &fed,
        &cfg,
        &HierTopology::new(12, vec![1]).expect("12→1→root chain"),
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("single-aggregator chain round");
    let acc = clustering_accuracy(&fed.global_truth(), &chain.wire.predictions);
    assert!(acc > 90.0, "chain accuracy {acc}");

    // One device straight to the root.
    let mut rng = StdRng::seed_from_u64(9);
    let model = SubspaceModel::random(&mut rng, 20, 3, 2);
    let ds = model.sample_dataset(&mut rng, &[40, 40], 0.0);
    let fed1 = partition_dataset(&ds, 1, Partition::Iid, &mut rng);
    let cfg1 = FedScConfig::new(2, CentralBackend::Ssc);
    let solo = run_hier_round(
        &fed1,
        &cfg1,
        &HierTopology::flat(1),
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("single-device degenerate round");
    assert_eq!(solo.wire.predictions.len(), 80);
    assert!(solo.wire.excluded.is_empty());
}

#[test]
fn topology_mismatch_is_rejected() {
    let (fed, cfg) = fixture(1, 12);
    let err = run_hier_round(
        &fed,
        &cfg,
        &HierTopology::flat(8), // dataset has 12 devices
        &InMemoryTransport,
        &HierPolicy::default(),
    );
    assert!(err.is_err(), "device-count mismatch must be rejected");
}
