//! # fedsc-hier — multi-tier aggregation tree for the Fed-SC round
//!
//! The flat wire round (`fedsc::wire`) has every device talk to a single
//! server, so the root's uplink traffic and Phase-2 clustering both grow
//! with the device count `Z`. This crate runs the same one-shot protocol
//! over an **aggregation tree**: devices upload to first-tier aggregators,
//! each aggregator clusters its children's samples (Phase 2 on the
//! subtree, through the same `candidate_threshold` cutover as the server)
//! and forwards **one representative sample per merged cluster** to its
//! parent, and the root clusters only the top tier's representatives.
//! Label broadcasts relay back down with composed relabel maps. Root-side
//! cost therefore grows with the *cluster* count, not the device count.
//!
//! The driver is **staged and single-threaded**: a bottom-up uplink sweep
//! (every node sends before its parent collects) followed by a top-down
//! downlink sweep. All three transports support this shape — the
//! in-memory links buffer unboundedly and TCP completes handshake and
//! uplink on its background endpoint threads — so the tree runs unchanged
//! over lossless, fault-injected, and real TCP links, with no thread
//! spawned by this crate.
//!
//! Guarantees:
//!
//! * **Degenerate tree ≡ flat round.** [`HierTopology::flat`] (no
//!   aggregator tier) reuses the exact flat-round helpers
//!   ([`fedsc::collect_uplinks`], [`fedsc::pool_uplinks`],
//!   [`fedsc::device_local_output`], [`fedsc::majority_relabel`]) and the
//!   root seeds its rng with [`fedsc::SERVER_RNG_SALT`], so its output is
//!   bit-identical to [`fedsc::run_over_wire`] (tested).
//! * **Byte-exact per-tier accounting.** [`HierRunOutput`] extends
//!   [`fedsc::WireRunOutput`] with one [`TierTraffic`] row per tier, summed
//!   from the same [`fedsc_transport::LinkStats`] the endpoints keep.
//! * **Per-tier straggler policy.** Each tier runs under its own
//!   [`fedsc::RoundPolicy`] ([`HierPolicy`]); an aggregator that misses
//!   quorum fails its *subtree* (children fall back to cluster 0, reported
//!   in `excluded`), while a root quorum miss fails the round — exactly
//!   the flat semantics at the root.

#![warn(missing_docs)]

pub mod output;
pub mod run;
pub mod topology;

pub use output::{HierRunOutput, TierTraffic};
pub use run::{run_hier_round, run_hier_round_with_dead};
pub use topology::{HierPolicy, HierTopology};
