//! Result of a hierarchical round: the flat-round output plus a per-tier
//! traffic breakdown.

use fedsc::WireRunOutput;

/// Wire accounting for one link tier, summed over every parent endpoint
/// at that tier — byte-exact against the transport's own
/// [`fedsc_transport::LinkStats`] (the lossless in-memory link counts
/// payload bytes; framed links count framing and handshake too).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierTraffic {
    /// Parent nodes at this tier (aggregators, or 1 for the root tier).
    pub parents: usize,
    /// Child nodes at this tier (devices at tier 0).
    pub children: usize,
    /// Bytes the tier's parents took off the wire (children's uplinks).
    pub uplink_bytes: usize,
    /// Bytes the tier's parents put on the wire (downlink broadcasts).
    pub downlink_bytes: usize,
    /// Uplink messages the tier's parents received.
    pub uplink_messages: u64,
    /// Downlink messages the tier's parents sent.
    pub downlink_messages: u64,
    /// Children whose uplink never arrived at this tier — stragglers, or
    /// roots of failed subtrees below. Indices are node ids at the
    /// tier's child level (device ids at tier 0).
    pub excluded_children: Vec<usize>,
    /// Wall time the driver spent working this tier: its children's
    /// compute-and-send stage (tier 0 only), its parents' uplink
    /// collection and clustering, and its downlink relay. Always
    /// non-zero on a completed round.
    pub wall_ns: u64,
    /// Serialized telemetry-envelope bytes this tier's parents absorbed
    /// from their children's uplinks — the exact share of `uplink_bytes`
    /// that is telemetry, 0 when tracing is off.
    pub envelope_bytes: usize,
}

/// Result of a hierarchical run: the flat [`WireRunOutput`] view (the
/// `uplink_bytes`/`downlink_bytes` fields are the **root's** accounting,
/// matching what the flat round reports for its single server) plus the
/// per-tier breakdown, bottom-up.
#[derive(Debug, Clone)]
pub struct HierRunOutput {
    /// Flat-round view: predictions in global-point order, root-tier
    /// byte accounting, and the devices that fell back to cluster 0.
    pub wire: WireRunOutput,
    /// Per-tier traffic, `tiers[0]` = device→first-parent links,
    /// `tiers.last()` = top-tier→root links (the same tier when flat).
    pub tiers: Vec<TierTraffic>,
}

impl HierRunOutput {
    /// Uplink bytes the root took off the wire — the quantity that must
    /// scale with the cluster count, not the device count.
    pub fn root_uplink_bytes(&self) -> usize {
        self.tiers.last().map_or(0, |t| t.uplink_bytes)
    }

    /// Uplink bytes summed over every tier (total tree ingress).
    pub fn total_uplink_bytes(&self) -> usize {
        self.tiers.iter().map(|t| t.uplink_bytes).sum()
    }

    /// Downlink bytes summed over every tier (total tree egress).
    pub fn total_downlink_bytes(&self) -> usize {
        self.tiers.iter().map(|t| t.downlink_bytes).sum()
    }
}
