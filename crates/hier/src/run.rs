//! The staged, single-threaded tree driver.
//!
//! One hierarchical round is two sweeps over the tree:
//!
//! 1. **Uplink sweep (bottom-up).** Every device runs Algorithm 2 and
//!    sends its encoded samples; then tier by tier each parent collects
//!    its children's uplinks under the tier's [`RoundPolicy`], pools them
//!    in ascending child order, runs the Phase-2 central clustering on the
//!    pooled samples (into `min(L, pooled)` merged clusters), and — unless
//!    it is the root — forwards one representative sample per non-empty
//!    merged cluster to its own parent.
//! 2. **Downlink sweep (top-down).** The root broadcasts global
//!    assignments for the top tier's representatives; each aggregator
//!    receives the labels of *its* representatives, composes them through
//!    its merged-cluster assignment (`child sample → merged cluster →
//!    global label`), and relays one downlink per included child. Devices
//!    finish with the flat round's majority relabel.
//!
//! The sweeps are sequential on the calling thread: every send at tier
//! `t` completes before any tier-`t` parent starts collecting, which all
//! three transports support (unbounded in-process buffering; TCP
//! handshake/uplink handled by the endpoint's own background threads).
//! This crate spawns no threads and opens no sockets of its own.
//!
//! Failure semantics: a child whose uplink misses the tier deadline is a
//! straggler; a parent that misses its quorum (or cannot reach its own
//! parent within the retry budget) fails its whole subtree — those
//! devices keep the fallback label 0 and are reported in
//! [`WireRunOutput::excluded`]. A quorum miss *at the root* fails the
//! round, exactly like the flat server.

use crate::output::{HierRunOutput, TierTraffic};
use crate::topology::{HierPolicy, HierTopology};
use bytes::Bytes;
use fedsc::central::{central_cluster, central_cluster_auto};
use fedsc::local::LocalOutput;
use fedsc::{
    agg_seed, collect_uplinks_fleet, device_local_output, majority_relabel, pool_uplinks, wire_err,
    FedScConfig, SERVER_RNG_SALT,
};
use fedsc_federated::channel::{DownlinkMessage, UplinkMessage};
use fedsc_federated::partition::FederatedDataset;
use fedsc_linalg::{LinalgError, Matrix, Result};
use fedsc_obs::{Envelope, FleetCollector, LazyCounter, Stopwatch, TraceContext};
use fedsc_transport::{with_retry, DeviceTransport, LinkStats, ServerTransport, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Device rounds completed (uplink sent, downlink applied).
static HIER_DEVICE_ROUNDS: LazyCounter = LazyCounter::new("hier.device_rounds");
/// Aggregator rounds completed (children pooled, representatives sent up).
static HIER_AGG_ROUNDS: LazyCounter = LazyCounter::new("hier.agg_rounds");
/// Root rounds completed.
static HIER_ROOT_ROUNDS: LazyCounter = LazyCounter::new("hier.root_rounds");
/// Children excluded as stragglers across all tiers.
static HIER_STRAGGLERS: LazyCounter = LazyCounter::new("hier.stragglers_excluded");
/// Aggregators that failed their subtree (quorum miss or unreachable parent).
static HIER_SUBTREES_FAILED: LazyCounter = LazyCounter::new("hier.subtrees_failed");
/// Uplink bytes observed by parents, summed over every tier.
static HIER_UPLINK_BYTES: LazyCounter = LazyCounter::new("hier.uplink_bytes");
/// Downlink bytes sent by parents, summed over every tier.
static HIER_DOWNLINK_BYTES: LazyCounter = LazyCounter::new("hier.downlink_bytes");

/// Wraps an uplink payload with a ctx-only telemetry envelope when
/// tracing is on. The whole tree runs in one process here, so spans and
/// metrics stay in the shared ring/registry and only the causal context
/// rides the wire — the receiver's per-uplink span links to
/// `ctx.parent_span` as its remote parent.
fn wrap_ctx(payload: Bytes, traced: bool, ctx: TraceContext) -> Bytes {
    if !traced {
        return payload;
    }
    Bytes::from(
        Envelope {
            ctx: Some(ctx),
            ..Envelope::default()
        }
        .wrap(payload.as_slice()),
    )
}

/// What an aggregator remembers between the uplink and downlink sweeps.
struct AggState {
    /// Local (in-group) indices of the children that reported.
    included: Vec<usize>,
    /// Sample count per included child, in `included` order.
    counts: Vec<usize>,
    /// Merged-cluster assignment per pooled sample.
    assignments: Vec<usize>,
    /// Merged cluster → upload slot of its representative.
    rep_slot: Vec<usize>,
    /// Number of representatives uploaded.
    reps: usize,
}

/// Runs one hierarchical Fed-SC round over `transport` with the given
/// tree shape and per-tier policy. See the module docs for the staged
/// execution model and failure semantics.
pub fn run_hier_round<T: Transport>(
    fed: &FederatedDataset,
    cfg: &FedScConfig,
    topology: &HierTopology,
    transport: &T,
    policy: &HierPolicy,
) -> Result<HierRunOutput> {
    run_hier_round_with_dead(fed, cfg, topology, transport, policy, &[])
}

/// [`run_hier_round`] with the devices in `dead_devices` never speaking —
/// the deterministic straggler model the quorum tests and the perf
/// harness drive (a dead device neither computes nor sends, exactly like
/// a crashed client).
pub fn run_hier_round_with_dead<T: Transport>(
    fed: &FederatedDataset,
    cfg: &FedScConfig,
    topology: &HierTopology,
    transport: &T,
    policy: &HierPolicy,
    dead_devices: &[usize],
) -> Result<HierRunOutput> {
    let z_count = fed.devices.len();
    topology.validate()?;
    if topology.devices != z_count {
        return Err(LinalgError::InvalidArgument(
            "hier topology device count does not match the dataset",
        ));
    }
    let widths = topology.widths();
    let num_tiers = topology.num_tiers();
    let _span = fedsc_obs::span("hier", "hier.run")
        .field("devices", z_count)
        .field("tiers", num_tiers);
    let traced = fedsc_obs::trace::is_enabled();
    // Child → parent index per tier, for stamping trace contexts.
    let parent_of: Vec<Vec<usize>> = (0..num_tiers)
        .map(|t| {
            let mut v = vec![0usize; widths[t]];
            for p in 0..widths[t + 1] {
                for c in topology.children_range(t, p) {
                    v[c] = p;
                }
            }
            v
        })
        .collect();
    // Per-tier wall time and absorbed telemetry-envelope bytes.
    let mut tier_wall_ns = vec![0u64; num_tiers];
    let mut tier_env_bytes = vec![0usize; num_tiers];

    // Open every tier's fan-ins: one (server, children) group per parent.
    // Child endpoints land in a flat per-tier vector (group ranges are
    // contiguous and ascending), parent endpoints in per-tier vectors.
    let mut servers: Vec<Vec<T::Server>> = Vec::with_capacity(num_tiers);
    let mut child_links: Vec<Vec<T::Device>> = Vec::with_capacity(num_tiers);
    for t in 0..num_tiers {
        let parents = widths[t + 1];
        let mut tier_servers = Vec::with_capacity(parents);
        let mut tier_children = Vec::with_capacity(widths[t]);
        for p in 0..parents {
            let range = topology.children_range(t, p);
            let (server, children) = transport.open(range.len()).map_err(wire_err)?;
            tier_servers.push(server);
            tier_children.extend(children);
        }
        servers.push(tier_servers);
        child_links.push(tier_children);
    }

    // ---- Uplink sweep, stage 0: every live device computes and sends. ----
    let mut is_dead = vec![false; z_count];
    for &d in dead_devices {
        if d < z_count {
            is_dead[d] = true;
        }
    }
    let device_policy = policy.tier(0);
    let mut local_outs: Vec<Option<LocalOutput>> = (0..z_count).map(|_| None).collect();
    let stage0_sw = Stopwatch::start();
    for z in 0..z_count {
        if is_dead[z] {
            continue;
        }
        let dev_span = fedsc_obs::span("hier", "hier.device_uplink").field("device", z);
        let dev_span_id = dev_span.id();
        let out = device_local_output(&fed.devices[z].data, z, cfg)?;
        let payload = wrap_ctx(
            UplinkMessage {
                dim: out.samples.rows(),
                samples: out.samples.clone(),
            }
            .encode(),
            traced,
            TraceContext {
                run_id: cfg.seed,
                round: 0,
                tier: 0,
                node: z as u64,
                parent: parent_of[0][z] as u64,
                pid: 1,
                parent_span: dev_span_id,
            },
        );
        let link = &mut child_links[0][z];
        if with_retry(
            device_policy.max_retries,
            device_policy.retry_backoff,
            || link.send_uplink(&payload),
        )
        .is_err()
        {
            // Retry budget exhausted: the device becomes a straggler its
            // parent's quorum policy will account for, not a fatal error.
            continue;
        }
        local_outs[z] = Some(out);
    }
    tier_wall_ns[0] += stage0_sw.elapsed_ns();

    // ---- Uplink sweep, stages 1..: tier-by-tier aggregation. ----
    // `agg_states[t][p]`: what parent `p` of tier `t` remembers for the
    // downlink sweep (None = failed subtree, or the root which needs none).
    let mut agg_states: Vec<Vec<Option<AggState>>> = (0..num_tiers)
        .map(|t| (0..widths[t + 1]).map(|_| None).collect())
        .collect();
    // `answered[t][c]`: node `c` at level `t` was sent a downlink.
    let mut answered: Vec<Vec<bool>> = widths[..num_tiers]
        .iter()
        .map(|&w| vec![false; w])
        .collect();
    let mut excluded_at: Vec<Vec<usize>> = (0..num_tiers).map(|_| Vec::new()).collect();

    for t in 0..num_tiers {
        let tier_sw = Stopwatch::start();
        let is_root = t + 1 == num_tiers;
        let tier_policy = policy.tier(t);
        let mut tier_fleet = FleetCollector::new();
        for p in 0..widths[t + 1] {
            let range = topology.children_range(t, p);
            let n_children = range.len();
            let agg_span = fedsc_obs::span(
                "hier",
                if is_root {
                    "hier.root_uplink"
                } else {
                    "hier.agg_uplink"
                },
            )
            .field("tier", t)
            .field("node", p)
            .field("children", n_children);
            let agg_span_id = agg_span.id();
            let payloads = collect_uplinks_fleet(
                &mut servers[t][p],
                n_children,
                tier_policy.deadline,
                Some(&mut tier_fleet),
            )?;
            let received = payloads.iter().filter(|m| m.is_some()).count();
            for (local, m) in payloads.iter().enumerate() {
                if m.is_none() {
                    excluded_at[t].push(range.start + local);
                }
            }
            drop(agg_span.field("received", received));
            if received < tier_policy.required(n_children) {
                if is_root {
                    return Err(LinalgError::InvalidArgument(
                        "root quorum not met before the round deadline",
                    ));
                }
                HIER_SUBTREES_FAILED.inc();
                continue;
            }
            let (included, counts, pooled) = pool_uplinks(payloads)?;
            if pooled.cols() == 0 {
                // Quorum of empty uploads (all included devices hold zero
                // points): nothing to cluster, nothing to forward.
                if is_root {
                    return Err(LinalgError::InvalidArgument(
                        "root received no samples to cluster",
                    ));
                }
                HIER_SUBTREES_FAILED.inc();
                continue;
            }

            if is_root {
                // The root is the flat server: cluster into L under the
                // flat rng stream, answer every included child.
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ SERVER_RNG_SALT);
                let central = central_cluster(
                    &pooled,
                    cfg.num_clusters,
                    included.len(),
                    cfg.central,
                    cfg.candidate_threshold,
                    &mut rng,
                )?;
                let mut offset = 0usize;
                for (&c, &r) in included.iter().zip(counts.iter()) {
                    let assignments: Vec<u32> = central.assignments[offset..offset + r]
                        .iter()
                        .map(|&a| a as u32)
                        .collect();
                    offset += r;
                    let reply = DownlinkMessage { assignments }.encode();
                    with_retry(tier_policy.max_retries, tier_policy.retry_backoff, || {
                        servers[t][p].send_downlink(c, &reply)
                    })
                    .map_err(wire_err)?;
                    answered[t][range.start + c] = true;
                }
                HIER_ROOT_ROUNDS.inc();
            } else {
                // Merge the children's clusters and forward one
                // representative per non-empty merged cluster. The merged
                // count is eigengap-estimated (capped at L): a subtree
                // may cover only a few of the global clusters, and
                // forcing L partitions onto fewer natural groups makes
                // spectral k-means mix subspaces.
                let mut rng = StdRng::seed_from_u64(agg_seed(cfg.seed, t, p));
                let (central, l_merge) = central_cluster_auto(
                    &pooled,
                    cfg.num_clusters.min(pooled.cols()),
                    included.len(),
                    cfg.central,
                    cfg.candidate_threshold,
                    &mut rng,
                )?;
                let mut rep_slot = vec![usize::MAX; l_merge];
                let mut rep_cols: Vec<&[f64]> = Vec::with_capacity(l_merge);
                for (s, &m) in central.assignments.iter().enumerate() {
                    if rep_slot[m] == usize::MAX {
                        rep_slot[m] = rep_cols.len();
                        rep_cols.push(pooled.col(s));
                    }
                }
                let reps = Matrix::from_columns(&rep_cols)?;
                let payload = wrap_ctx(
                    UplinkMessage {
                        dim: reps.rows(),
                        samples: reps,
                    }
                    .encode(),
                    traced,
                    TraceContext {
                        run_id: cfg.seed,
                        round: 0,
                        tier: (t + 1) as u32,
                        node: p as u64,
                        parent: parent_of[t + 1][p] as u64,
                        pid: 1,
                        parent_span: agg_span_id,
                    },
                );
                let up_policy = policy.tier(t + 1);
                let link = &mut child_links[t + 1][p];
                if with_retry(up_policy.max_retries, up_policy.retry_backoff, || {
                    link.send_uplink(&payload)
                })
                .is_err()
                {
                    // Unreachable parent: the subtree fails as a unit.
                    HIER_SUBTREES_FAILED.inc();
                    continue;
                }
                HIER_AGG_ROUNDS.inc();
                agg_states[t][p] = Some(AggState {
                    reps: rep_cols.len(),
                    included,
                    counts,
                    assignments: central.assignments,
                    rep_slot,
                });
            }
        }
        tier_env_bytes[t] = tier_fleet.envelope_bytes;
        tier_wall_ns[t] += tier_sw.elapsed_ns();
    }

    // ---- Downlink sweep: relay composed labels tier by tier. ----
    for t in (0..num_tiers.saturating_sub(1)).rev() {
        let tier_sw = Stopwatch::start();
        let tier_policy = policy.tier(t);
        let parent_policy = policy.tier(t + 1);
        for p in 0..widths[t + 1] {
            let Some(state) = agg_states[t][p].take() else {
                continue; // failed subtree: children stay unanswered
            };
            if !answered[t + 1][p] {
                continue; // our own parent excluded or failed us
            }
            let _span = fedsc_obs::span("hier", "hier.agg_downlink")
                .field("tier", t)
                .field("node", p)
                .field("children", state.included.len());
            let reply = child_links[t + 1][p]
                .recv_downlink(parent_policy.downlink_wait())
                .map_err(wire_err)?;
            let down = DownlinkMessage::decode(reply)
                .ok_or(LinalgError::InvalidArgument("malformed downlink"))?;
            if down.assignments.len() != state.reps {
                return Err(LinalgError::InvalidArgument(
                    "downlink assignment count mismatch at an aggregator",
                ));
            }
            // Compose: child sample → merged cluster → representative
            // slot → global label.
            let range = topology.children_range(t, p);
            let mut offset = 0usize;
            for (&c, &r) in state.included.iter().zip(state.counts.iter()) {
                let assignments: Vec<u32> = state.assignments[offset..offset + r]
                    .iter()
                    .map(|&m| down.assignments[state.rep_slot[m]])
                    .collect();
                offset += r;
                let child_reply = DownlinkMessage { assignments }.encode();
                if with_retry(tier_policy.max_retries, tier_policy.retry_backoff, || {
                    servers[t][p].send_downlink(c, &child_reply)
                })
                .is_ok()
                {
                    answered[t][range.start + c] = true;
                }
            }
        }
        tier_wall_ns[t] += tier_sw.elapsed_ns();
    }

    // ---- Device finish: flat Phase 3 on every answered device. ----
    let finish_sw = Stopwatch::start();
    let mut gathered: Vec<Vec<usize>> = Vec::with_capacity(z_count);
    let mut excluded_devices = Vec::new();
    for z in 0..z_count {
        if !answered[0][z] {
            gathered.push(vec![0usize; fed.devices[z].data.cols()]);
            excluded_devices.push(z);
            continue;
        }
        let reply = child_links[0][z]
            .recv_downlink(device_policy.downlink_wait())
            .map_err(wire_err)?;
        let down = DownlinkMessage::decode(reply)
            .ok_or(LinalgError::InvalidArgument("malformed downlink"))?;
        let out = local_outs[z]
            .take()
            .ok_or(LinalgError::InvalidArgument("answered device never ran"))?;
        if down.assignments.len() != out.sample_cluster.len() {
            return Err(LinalgError::InvalidArgument(
                "downlink assignment count mismatch",
            ));
        }
        let cluster_to_global = majority_relabel(
            &out.sample_cluster,
            out.num_local_clusters,
            &down.assignments,
            cfg.num_clusters,
        );
        gathered.push(
            out.local_labels
                .iter()
                .map(|&c| cluster_to_global[c])
                .collect(),
        );
        HIER_DEVICE_ROUNDS.inc();
    }
    tier_wall_ns[0] += finish_sw.elapsed_ns();

    // ---- Per-tier accounting from the endpoints' own stats. ----
    let mut tiers = Vec::with_capacity(num_tiers);
    for (t, tier_servers) in servers.iter().enumerate() {
        let mut stats = LinkStats::default();
        for s in tier_servers {
            stats.merge(&s.stats());
        }
        HIER_UPLINK_BYTES.add(stats.bytes_received as u64);
        HIER_DOWNLINK_BYTES.add(stats.bytes_sent as u64);
        HIER_STRAGGLERS.add(excluded_at[t].len() as u64);
        tiers.push(TierTraffic {
            parents: widths[t + 1],
            children: widths[t],
            uplink_bytes: stats.bytes_received,
            downlink_bytes: stats.bytes_sent,
            uplink_messages: stats.messages_received,
            downlink_messages: stats.messages_sent,
            excluded_children: std::mem::take(&mut excluded_at[t]),
            wall_ns: tier_wall_ns[t],
            envelope_bytes: tier_env_bytes[t],
        });
    }

    let root_uplink = tiers.last().map_or(0, |t| t.uplink_bytes);
    let root_downlink = tiers.last().map_or(0, |t| t.downlink_bytes);
    let root_envelope = tiers.last().map_or(0, |t| t.envelope_bytes);
    Ok(HierRunOutput {
        wire: fedsc::WireRunOutput {
            predictions: fed.scatter_predictions(&gathered),
            uplink_bytes: root_uplink,
            downlink_bytes: root_downlink,
            excluded: excluded_devices,
            envelope_bytes: root_envelope,
        },
        tiers,
    })
}
