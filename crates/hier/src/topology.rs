//! Tree shape and per-tier policy for the hierarchical round.
//!
//! Levels are numbered bottom-up: level 0 holds the `Z` leaf devices,
//! levels `1..=A` the aggregator tiers, and the implicit top level the
//! single root. **Tier `t`** names the link layer between level-`t`
//! children and their level-`t+1` parents, so a tree with `A` aggregator
//! tiers has `A + 1` link tiers; a flat topology (`A = 0`) has exactly one
//! — the shape of `fedsc::run_over_wire`.
//!
//! Children are assigned to parents in contiguous balanced chunks: parent
//! `p` of `P` at a tier with `C` children owns `[C*p/P, C*(p+1)/P)`.
//! Widths must be non-increasing so every parent owns at least one child.

use fedsc::RoundPolicy;
use fedsc_linalg::{LinalgError, Result};
use std::ops::Range;

/// The shape of the aggregation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierTopology {
    /// Number of leaf devices `Z` (level 0).
    pub devices: usize,
    /// Width of each aggregator tier, bottom-up. Empty means the devices
    /// talk straight to the root — the degenerate tree bit-identical to
    /// the flat round.
    pub aggregators: Vec<usize>,
}

impl HierTopology {
    /// A validated tree: `devices` leaves, then one aggregator tier per
    /// entry of `aggregators` (bottom-up), then the root.
    pub fn new(devices: usize, aggregators: Vec<usize>) -> Result<Self> {
        let topo = HierTopology {
            devices,
            aggregators,
        };
        topo.validate()?;
        Ok(topo)
    }

    /// The degenerate tree: every device is a direct child of the root.
    pub fn flat(devices: usize) -> Self {
        HierTopology {
            devices,
            aggregators: Vec::new(),
        }
    }

    /// Checks the shape invariants: at least one device, no empty tier,
    /// and non-increasing widths (so every parent owns ≥ 1 child).
    pub fn validate(&self) -> Result<()> {
        if self.devices == 0 {
            return Err(LinalgError::InvalidArgument(
                "hier topology needs at least one device",
            ));
        }
        let mut below = self.devices;
        for &w in &self.aggregators {
            if w == 0 {
                return Err(LinalgError::InvalidArgument(
                    "hier topology has an empty aggregator tier",
                ));
            }
            if w > below {
                return Err(LinalgError::InvalidArgument(
                    "hier topology tier is wider than the tier below it",
                ));
            }
            below = w;
        }
        Ok(())
    }

    /// Node count per level, bottom-up: `[Z, a_1, …, a_A, 1]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w = Vec::with_capacity(self.aggregators.len() + 2);
        w.push(self.devices);
        w.extend_from_slice(&self.aggregators);
        w.push(1);
        w
    }

    /// Number of link tiers (`aggregators.len() + 1`).
    pub fn num_tiers(&self) -> usize {
        self.aggregators.len() + 1
    }

    /// The level-`tier` children owned by parent `parent` at level
    /// `tier + 1`: the contiguous balanced chunk `[C*p/P, C*(p+1)/P)`.
    pub fn children_range(&self, tier: usize, parent: usize) -> Range<usize> {
        let widths = self.widths();
        let children = widths[tier];
        let parents = widths[tier + 1];
        (children * parent / parents)..(children * (parent + 1) / parents)
    }
}

/// Per-tier straggler and reliability policy: `tiers[t]` governs link
/// tier `t` (bottom-up); the last entry repeats for any deeper tier, so a
/// single-entry policy is uniform across the whole tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierPolicy {
    /// Bottom-up per-tier policies. May be empty: every tier then runs
    /// under `RoundPolicy::default()`.
    pub tiers: Vec<RoundPolicy>,
}

impl HierPolicy {
    /// The same policy at every tier.
    pub fn uniform(policy: RoundPolicy) -> Self {
        HierPolicy {
            tiers: vec![policy],
        }
    }

    /// The policy governing link tier `t` (last entry repeats; defaults
    /// when no entry was given at all).
    pub fn tier(&self, t: usize) -> RoundPolicy {
        self.tiers
            .get(t)
            .or(self.tiers.last())
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_tiers() {
        let topo = HierTopology::new(12, vec![4, 2]).expect("valid 12→4→2→root tree");
        assert_eq!(topo.widths(), vec![12, 4, 2, 1]);
        assert_eq!(topo.num_tiers(), 3);
        assert_eq!(HierTopology::flat(7).num_tiers(), 1);
    }

    #[test]
    fn children_ranges_partition_each_tier() {
        let topo = HierTopology::new(10, vec![3]).expect("valid 10→3→root tree");
        for t in 0..topo.num_tiers() {
            let widths = topo.widths();
            let mut covered = 0usize;
            for p in 0..widths[t + 1] {
                let r = topo.children_range(t, p);
                assert_eq!(r.start, covered, "tier {t} parent {p} is contiguous");
                assert!(!r.is_empty(), "tier {t} parent {p} owns no child");
                covered = r.end;
            }
            assert_eq!(covered, widths[t], "tier {t} covers every child");
        }
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(HierTopology::new(0, vec![]).is_err(), "zero devices");
        assert!(HierTopology::new(4, vec![0]).is_err(), "empty tier");
        assert!(HierTopology::new(4, vec![8]).is_err(), "widening tier");
        assert!(
            HierTopology::new(4, vec![4, 2]).is_ok(),
            "equal width is fine"
        );
    }

    #[test]
    fn policy_last_entry_repeats() {
        let strict = RoundPolicy {
            quorum: Some(1),
            ..RoundPolicy::default()
        };
        let p = HierPolicy {
            tiers: vec![RoundPolicy::default(), strict.clone()],
        };
        assert_eq!(p.tier(0), RoundPolicy::default());
        assert_eq!(p.tier(1), strict);
        assert_eq!(p.tier(5), strict, "last entry repeats upward");
        assert_eq!(HierPolicy::default().tier(2), RoundPolicy::default());
    }
}
