//! Restricted-Gram Lasso with an **exact** full-dictionary certificate —
//! the solver half of the subquadratic SSC pipeline.
//!
//! The dense SSC path builds the full `n x n` Gram and solves every
//! self-expression Lasso over all `n - 1` atoms. Here each point `i` is
//! solved over a small **candidate neighborhood** `C_i` (`|C_i| = k << n`,
//! pre-selected upstream from a Johnson–Lindenstrauss sketch, see
//! `fedsc_linalg::sketch`): the `k x k` Gram and `b_C = X_C^T x_i` are
//! computed on the *exact* data, the per-point lambda rule uses the exact
//! restricted correlation maximum, and the solve itself is the standard
//! gap-safe screened coordinate descent ([`crate::lasso::LassoSolver`]) on
//! the restricted problem — PR 6's sphere test runs unchanged on the exact
//! restricted Gram.
//!
//! ## Why the certificate must scan the full dictionary
//!
//! A restricted optimum is the *global* optimum iff every out-of-set atom
//! satisfies the KKT bound `|x_j^T r_i| <= lambda_i^{-1}`, and the paper's
//! lambda rule itself needs `mu_i = max_{j != i} |x_j^T x_i|` over the full
//! dictionary. Cheap certificates fail here: the Cauchy–Schwarz bound
//! `|x_j^T r_i| <= ||r_i||` collapses to exactly the KKT threshold whenever
//! the dual scaling is active, and a sketched residual scan cannot resolve
//! correlations at threshold precision (`O(sqrt(ln n / s))` sketch error
//! dwarfs the `1/lambda` margin). So the certificate is computed **exactly**
//! and amortized: points are verified in panels, one blocked
//! `X^T [U | F]` product per panel (`U` = residuals, `F` = fitted vectors),
//! which yields both the full residual correlations `X^T r_i` (KKT scan)
//! and the full `b_i = X^T x_i = X^T r_i + X^T f_i` (exact `mu_i`) at
//! `O(n d)` per point — the same flop class as one Gram *row* of the dense
//! path, with `O(n * panel)` memory instead of the `n x n` Gram.
//!
//! Points whose scan is clean are **certified**: their restricted problem
//! provably shares its optimum with the dense path's problem (same lambda
//! rule, no violated atom). Anything else **escalates** deterministically:
//! the violators (plus the true correlation argmax when the restricted
//! lambda was wrong) join the candidate set, the point re-solves at the
//! exact lambda, and re-verifies against the full dictionary (`O(n d)`
//! matvec per round) until clean — the ORGEN oracle loop, so escalated
//! points are exact too, they just paid more rounds. The candidate set
//! grows strictly every round, so termination is structural.
//!
//! Because the certificate reads every atom, certified-exact mode costs
//! `Theta(n^2 d)` overall — the dense Gram's flop class — and buys
//! exactness, not asymptotics. [`solve_candidates`] therefore also offers
//! **screening-only** mode (`verify = false`): skip the certificate and
//! the escalation loop, return the restricted optima as-is with every
//! `certified` flag `false`. That is the classical neighborhood-screened
//! SSC trade (exactness for a genuinely subquadratic solve stage), and it
//! is what the large-`n` bench rows run; see `DESIGN.md` §9.5 for when
//! each mode wins.
//!
//! Everything is bitwise thread-invariant: per-point arithmetic never
//! depends on the fan-out, panels are assembled in fixed order, and the
//! blocked products are the pool's thread-invariant kernels.

use crate::lasso::{LassoOptions, LassoSolver, LassoWorkspace};
use crate::vec::SparseVec;
use fedsc_linalg::{par, vector, LinalgError, Matrix, Result};
use fedsc_obs::LazyCounter;

/// Candidate atoms offered to the restricted solves, summed over points
/// (final sets, after any escalation growth); divide by the point count for
/// the mean neighborhood size.
static LASSO_CANDIDATES: LazyCounter = LazyCounter::new("lasso.candidates_per_point");
/// Escalation rounds taken because the certificate found KKT violators or a
/// wrong restricted lambda (one count per point per round).
static LASSO_ESCALATIONS: LazyCounter = LazyCounter::new("lasso.escalations");

/// Points verified per blocked `X^T [U | F]` slab.
const VERIFY_PANEL: usize = 128;

/// Relative slack on the KKT threshold before an out-of-set atom counts as
/// a violator, as a multiple of the coordinate tolerance (with a floor).
/// Coordinate descent converges the *coefficients* to `LassoOptions::tol`,
/// so residual correlations carry solver-tolerance noise — a slack below it
/// would make the certificate chase phantom violators forever, while a
/// slack far above it would silently drop borderline atoms the dense path
/// activates. Coupling the two keeps the certificate exactly as tight as
/// the solve: default `tol = 1e-6` gives a `1e-4` band; tightening `tol`
/// tightens the certificate with it.
fn escalate_slack(tol: f64) -> f64 {
    (100.0 * tol).max(1e-7)
}

/// Relative slack when comparing the restricted correlation maximum against
/// the exact one — covers summation-order rounding between the plain-dot
/// restricted quantities and the blocked verification product.
const MU_SLACK: f64 = 1e-12;

/// Result of a candidate-restricted batch solve.
#[derive(Debug)]
pub struct CandidateOutcome {
    /// Per-point self-expression codes over the full `n` atoms. With
    /// verification on, every code is exact — the optimum of the
    /// full-dictionary problem at its lambda; with verification off the
    /// codes are the restricted optima over the offered candidates.
    pub codes: Vec<SparseVec>,
    /// Per point: `true` when the first verification pass was already clean
    /// (gap-safe restricted solve + exact full-dictionary scan found no
    /// violator and the restricted lambda was exact). `false` means the
    /// point escalated — its code is still exact, it just took extra rounds.
    pub certified: Vec<bool>,
    /// Points that needed at least one escalation round.
    pub escalated_points: usize,
}

/// Per-point working state across the verify/escalate rounds.
struct PointState {
    /// Ascending candidate atoms (never contains the point itself).
    cand: Vec<usize>,
    /// Lambda the current code was solved at.
    lambda: f64,
    /// Best known correlation maximum: restricted after the first solve,
    /// exact after the first verification.
    mu: f64,
    /// Current code, local `(candidate-position, value)` pairs sorted by
    /// position.
    local: Vec<(usize, f64)>,
}

/// Solves the SSC self-expression Lasso for every column of `x` over its
/// candidate neighborhood, certifies each solution against the **full**
/// dictionary, and escalates until every code is a full-dictionary optimum.
///
/// `candidates[i]` are the atoms offered to point `i` (strictly ascending,
/// without `i` itself). `alpha` is the paper's lambda-rule multiplier;
/// `opts.threads` fans both the per-point solves and the blocked
/// verification products out over the shared pool. Codes are bitwise
/// identical for every thread count.
///
/// `verify = false` skips the certificate and the escalation loop: every
/// point keeps its restricted optimum and reports `certified = false`. The
/// certificate is exact and therefore costs `O(n d)` per point — the same
/// flop class as one dense Gram row — so screening-only mode is the one
/// whose *solve* cost is genuinely subquadratic; use it when the sketched
/// neighborhoods are trusted (or checked at the clustering level) and the
/// full-dictionary guarantee is not worth a Gram-sized pass.
pub fn solve_candidates(
    x: &Matrix,
    candidates: &[Vec<usize>],
    alpha: f64,
    opts: &LassoOptions,
    verify: bool,
) -> Result<CandidateOutcome> {
    let n = x.cols();
    let d = x.rows();
    if candidates.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (candidates.len(), 1),
        });
    }
    for (i, cand) in candidates.iter().enumerate() {
        let ascending = cand.windows(2).all(|w| w[0] < w[1]);
        let in_range = cand.iter().all(|&c| c < n && c != i);
        if !ascending || !in_range {
            return Err(LinalgError::InvalidArgument(
                "candidate sets must be strictly ascending atoms excluding the point itself",
            ));
        }
    }
    // Touch both counters so a fully-certified run still exports them.
    LASSO_CANDIDATES.add(0);
    LASSO_ESCALATIONS.add(0);
    let threads = opts.threads.max(1);
    let slack = escalate_slack(opts.tol);

    // Round 0: restricted gap-safe solves over the candidate sets.
    let solved = par::par_map_with(n, threads, LassoWorkspace::new, |ws, i| {
        solve_restricted(x, i, &candidates[i], alpha, None, opts, ws)
    });
    let mut states: Vec<PointState> = Vec::with_capacity(n);
    for (i, s) in solved.into_iter().enumerate() {
        let (local, lambda, mu) = s?;
        states.push(PointState {
            cand: candidates[i].clone(),
            lambda,
            mu,
            local,
        });
    }

    // Verification: one blocked X^T [U | F] product per panel of points,
    // then exact per-point KKT + lambda-rule scans.
    let mut certified = vec![false; n];
    // (point, violators, exact mu, index attaining it)
    let mut pending: Vec<(usize, Vec<usize>, f64, usize)> = Vec::new();
    let panels = if verify { n.div_ceil(VERIFY_PANEL) } else { 0 };
    for panel in 0..panels {
        let p0 = panel * VERIFY_PANEL;
        let p1 = ((panel + 1) * VERIFY_PANEL).min(n);
        let p = p1 - p0;
        let mut slab = Matrix::zeros(d, 2 * p);
        for q in 0..p {
            let i = p0 + q;
            let f = fitted(x, &states[i]);
            let u: Vec<f64> = x.col(i).iter().zip(&f).map(|(&xv, &fv)| xv - fv).collect();
            slab.col_mut(q).copy_from_slice(&u);
            slab.col_mut(p + q).copy_from_slice(&f);
        }
        let w = x.tr_matmul_threaded(&slab, threads)?;
        let scans = par::par_map_heavy(p, threads, |q| {
            scan_point(p0 + q, &states[p0 + q], w.col(q), w.col(p + q), slack)
        });
        for (q, outcome) in scans.into_iter().enumerate() {
            let i = p0 + q;
            match outcome {
                None => certified[i] = true,
                Some((violators, mu_exact, mu_idx)) => {
                    pending.push((i, violators, mu_exact, mu_idx));
                }
            }
        }
    }
    let escalated_points = pending.len();

    // Escalation: grow the candidate set by the violators (and the exact
    // correlation argmax), re-solve at the exact lambda, re-verify against
    // the full dictionary — per point, O(n d) per round, until clean.
    while !pending.is_empty() {
        LASSO_ESCALATIONS.add(pending.len() as u64);
        let rounds = par::par_map_with(pending.len(), threads, LassoWorkspace::new, |ws, e| {
            let (i, ref violators, mu_exact, mu_idx) = pending[e];
            let state = &states[i];
            let mut cand = state.cand.clone();
            for &v in violators.iter().chain(std::iter::once(&mu_idx)) {
                if v != i && cand.binary_search(&v).is_err() {
                    let pos = cand.partition_point(|&c| c < v);
                    cand.insert(pos, v);
                }
            }
            let lambda = if mu_exact > 0.0 {
                alpha / mu_exact
            } else {
                1.0
            };
            let (local, lambda, _) = solve_restricted(x, i, &cand, alpha, Some(lambda), opts, ws)?;
            // Re-verify: full residual correlations via one exact matvec.
            let next = PointState {
                cand,
                lambda,
                mu: mu_exact,
                local,
            };
            let f = fitted(x, &next);
            let u: Vec<f64> = x.col(i).iter().zip(&f).map(|(&xv, &fv)| xv - fv).collect();
            let r = x.tr_matvec(&u)?;
            let t = 1.0 / next.lambda;
            let bound = t * (1.0 + slack);
            let violators: Vec<usize> = (0..x.cols())
                .filter(|&j| j != i && next.cand.binary_search(&j).is_err() && r[j].abs() > bound)
                .collect();
            Ok::<_, LinalgError>((next, violators))
        });
        let mut still = Vec::new();
        for (e, round) in rounds.into_iter().enumerate() {
            let (i, _, mu_exact, mu_idx) = pending[e];
            let (next, violators) = round?;
            states[i] = next;
            if !violators.is_empty() {
                still.push((i, violators, mu_exact, mu_idx));
            }
        }
        pending = still;
    }

    // Assemble global codes; count the final neighborhood sizes.
    let mut codes = Vec::with_capacity(n);
    let mut offered = 0u64;
    for state in &states {
        offered += state.cand.len() as u64;
        let indices: Vec<usize> = state.local.iter().map(|&(p, _)| state.cand[p]).collect();
        let values: Vec<f64> = state.local.iter().map(|&(_, v)| v).collect();
        codes.push(SparseVec::from_parts(n, indices, values));
    }
    LASSO_CANDIDATES.add(offered);
    Ok(CandidateOutcome {
        codes,
        certified,
        escalated_points,
    })
}

/// A restricted solve's outcome: the code as sorted local
/// `(candidate-position, value)` pairs, the lambda used, and the restricted
/// correlation maximum.
type RestrictedSolve = (Vec<(usize, f64)>, f64, f64);

/// One restricted solve: exact `b_C` / `G_C` / restricted lambda rule plus
/// the gap-safe screened coordinate descent.
fn solve_restricted(
    x: &Matrix,
    i: usize,
    cand: &[usize],
    alpha: f64,
    lambda_override: Option<f64>,
    opts: &LassoOptions,
    ws: &mut LassoWorkspace,
) -> Result<RestrictedSolve> {
    let k = cand.len();
    let xi = x.col(i);
    let b: Vec<f64> = cand.iter().map(|&c| vector::dot(x.col(c), xi)).collect();
    let mu = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    // Mirrors `crate::lasso::ssc_lambda`, restricted to the candidates.
    let lambda = lambda_override.unwrap_or(if mu <= 0.0 { 1.0 } else { alpha / mu });
    let mut gram = Matrix::zeros(k, k);
    for p in 0..k {
        let cp = x.col(cand[p]);
        for q in p..k {
            let g = vector::dot(cp, x.col(cand[q]));
            gram[(p, q)] = g;
            gram[(q, p)] = g;
        }
    }
    let solver = LassoSolver::new(&gram, opts.clone());
    let code = solver.solve_screened(&b, lambda, usize::MAX, vector::dot(xi, xi), ws)?;
    let mut local: Vec<(usize, f64)> = code.iter().collect();
    local.sort_unstable_by_key(|&(p, _)| p);
    Ok((local, lambda, mu))
}

/// `X_C c` for the point's current code, accumulated in ascending candidate
/// order (fixed order keeps the fitted vector bitwise thread-invariant).
fn fitted(x: &Matrix, state: &PointState) -> Vec<f64> {
    let mut f = vec![0.0f64; x.rows()];
    for &(p, v) in &state.local {
        vector::axpy(v, x.col(state.cand[p]), &mut f);
    }
    f
}

/// Exact certificate scan for one point given its slab columns
/// `r = X^T (x_i - X_C c)` and `xf = X^T X_C c`. Returns `None` when
/// certified, else the KKT violators plus the exact correlation maximum
/// and its argmax atom.
fn scan_point(
    i: usize,
    state: &PointState,
    r: &[f64],
    xf: &[f64],
    slack: f64,
) -> Option<(Vec<usize>, f64, usize)> {
    let t = 1.0 / state.lambda;
    let bound = t * (1.0 + slack);
    let mut violators = Vec::new();
    let mut mu_exact = 0.0f64;
    let mut mu_idx = i;
    for j in 0..r.len() {
        if j == i {
            continue;
        }
        let bj = (r[j] + xf[j]).abs();
        if bj > mu_exact {
            mu_exact = bj;
            mu_idx = j;
        }
        if r[j].abs() > bound && state.cand.binary_search(&j).is_err() {
            violators.push(j);
        }
    }
    let mu_ok = mu_exact <= state.mu * (1.0 + MU_SLACK);
    if violators.is_empty() && mu_ok {
        None
    } else {
        Some((violators, mu_exact, mu_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lasso::ssc_lambda;

    /// Deterministic data: three 2-dim subspaces in R^12, 10 points each.
    fn subspace_mix(n_per: usize) -> Matrix {
        let d = 12usize;
        let l = 3usize;
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let bases: Vec<Vec<Vec<f64>>> = (0..l)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        let mut v: Vec<f64> = (0..d).map(|_| next()).collect();
                        let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt();
                        v.iter_mut().for_each(|a| *a /= norm);
                        v
                    })
                    .collect()
            })
            .collect();
        let mut m = Matrix::zeros(d, l * n_per);
        for s in 0..l {
            for p in 0..n_per {
                let (a, b) = (next(), next());
                for r in 0..d {
                    m[(r, s * n_per + p)] = a * bases[s][0][r] + b * bases[s][1][r];
                }
            }
        }
        m.normalize_columns(1e-12);
        m
    }

    fn dense_codes(x: &Matrix, alpha: f64, opts: &LassoOptions) -> Vec<SparseVec> {
        let n = x.cols();
        let gram = x.gram();
        let solver = LassoSolver::new(&gram, opts.clone());
        let mut ws = LassoWorkspace::new();
        (0..n)
            .map(|i| {
                let b = gram.col(i);
                let lambda = ssc_lambda(b, i, alpha);
                solver
                    .solve_screened(b, lambda, i, gram[(i, i)], &mut ws)
                    .unwrap()
            })
            .collect()
    }

    fn all_candidates(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect()
    }

    #[test]
    fn full_candidate_set_matches_dense_path() {
        // With C_i = everything, the restricted problem *is* the dense
        // problem; codes must agree to solver tolerance and every point must
        // certify on the first scan.
        let x = subspace_mix(10);
        let n = x.cols();
        let opts = LassoOptions::default();
        let out = solve_candidates(&x, &all_candidates(n), 50.0, &opts, true).unwrap();
        assert!(out.certified.iter().all(|&c| c), "all must certify");
        assert_eq!(out.escalated_points, 0);
        let dense = dense_codes(&x, 50.0, &opts);
        for i in 0..n {
            let a = out.codes[i].to_dense();
            let b = dense[i].to_dense();
            for j in 0..n {
                assert!(
                    (a[j] - b[j]).abs() < 1e-6,
                    "code[{i}][{j}]: {} vs {}",
                    a[j],
                    b[j]
                );
            }
        }
    }

    #[test]
    fn starved_candidates_escalate_to_exact_codes() {
        // Give every point only 2 (mostly wrong) candidates: the certificate
        // must catch the violations and the escalation loop must still land
        // on the dense-path codes.
        let x = subspace_mix(8);
        let n = x.cols();
        let opts = LassoOptions::default();
        let starved: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let a = (i + 1) % n;
                let b = (i + n / 2) % n;
                let mut c: Vec<usize> = [a, b].into_iter().filter(|&j| j != i).collect();
                c.sort_unstable();
                c.dedup();
                c
            })
            .collect();
        let out = solve_candidates(&x, &starved, 50.0, &opts, true).unwrap();
        assert!(out.escalated_points > 0, "starved sets must escalate");
        let dense = dense_codes(&x, 50.0, &opts);
        for i in 0..n {
            let a = out.codes[i].to_dense();
            let b = dense[i].to_dense();
            for j in 0..n {
                assert!(
                    (a[j] - b[j]).abs() < 1e-4,
                    "code[{i}][{j}]: {} vs {}",
                    a[j],
                    b[j]
                );
            }
        }
    }

    #[test]
    fn thread_invariance() {
        let x = subspace_mix(8);
        let n = x.cols();
        let cands = all_candidates(n);
        let serial = solve_candidates(&x, &cands, 50.0, &LassoOptions::default(), true).unwrap();
        for threads in [2usize, 8] {
            let opts = LassoOptions {
                threads,
                ..Default::default()
            };
            let par = solve_candidates(&x, &cands, 50.0, &opts, true).unwrap();
            for i in 0..n {
                assert_eq!(
                    par.codes[i].to_dense(),
                    serial.codes[i].to_dense(),
                    "threads = {threads}, point {i}"
                );
            }
            assert_eq!(par.certified, serial.certified);
        }
    }

    #[test]
    fn screening_only_skips_certificate_but_keeps_restricted_optima() {
        // verify = false: nothing certifies, nothing escalates, and with the
        // full candidate set the restricted optimum *is* the dense optimum —
        // so the codes still match the dense path even though no certificate
        // ran.
        let x = subspace_mix(10);
        let n = x.cols();
        let opts = LassoOptions::default();
        let out = solve_candidates(&x, &all_candidates(n), 50.0, &opts, false).unwrap();
        assert!(out.certified.iter().all(|&c| !c), "nothing may certify");
        assert_eq!(out.escalated_points, 0);
        let dense = dense_codes(&x, 50.0, &opts);
        for i in 0..n {
            let a = out.codes[i].to_dense();
            let b = dense[i].to_dense();
            for j in 0..n {
                assert!(
                    (a[j] - b[j]).abs() < 1e-6,
                    "code[{i}][{j}]: {} vs {}",
                    a[j],
                    b[j]
                );
            }
        }
    }

    #[test]
    fn rejects_malformed_candidates() {
        let x = subspace_mix(4);
        let bad = vec![vec![0usize]; 3]; // wrong length
        assert!(solve_candidates(&x, &bad, 50.0, &LassoOptions::default(), true).is_err());
        let n = x.cols();
        let mut self_ref = all_candidates(n);
        self_ref[3] = vec![3]; // contains the point itself
        assert!(solve_candidates(&x, &self_ref, 50.0, &LassoOptions::default(), true).is_err());
    }
}
