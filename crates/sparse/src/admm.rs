//! ADMM Lasso backend.
//!
//! The reference SSC implementation (Elhamifar & Vidal) solves Eq. (2) with
//! the Alternating Direction Method of Multipliers; the paper swaps it for
//! the SPAMS coordinate-descent solver for speed. We keep an ADMM backend as
//! a cross-check oracle and for the solver ablation bench: both backends
//! optimize the identical objective, so their solutions must agree to solver
//! tolerance.
//!
//! Splitting `min (lambda/2)||X c - x||^2 + ||z||_1  s.t.  c = z`:
//!
//! ```text
//!   c^{k+1} = (lambda G + rho I)^{-1} (lambda b + rho (z^k - u^k))
//!   z^{k+1} = soft(c^{k+1} + u^k, 1/rho)        (with z_excluded forced to 0)
//!   u^{k+1} = u^k + c^{k+1} - z^{k+1}
//! ```
//!
//! The `(lambda G + rho I)` Cholesky factor is computed once per dictionary
//! and reused for every right-hand side.

use crate::vec::SparseVec;
use fedsc_linalg::solve::Cholesky;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};

/// Options for the ADMM Lasso.
#[derive(Debug, Clone)]
pub struct AdmmOptions {
    /// Augmented-Lagrangian penalty `rho`.
    pub rho: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Primal/dual residual tolerance.
    pub tol: f64,
    /// Support threshold applied to the reported `z`.
    pub support_tol: f64,
}

impl Default for AdmmOptions {
    fn default() -> Self {
        Self {
            rho: 1.0,
            max_iters: 500,
            tol: 1e-7,
            support_tol: 1e-8,
        }
    }
}

/// ADMM Lasso solver bound to one dictionary Gram matrix and one `lambda`.
pub struct AdmmLasso {
    chol: Cholesky,
    lambda: f64,
    opts: AdmmOptions,
    n: usize,
}

impl AdmmLasso {
    /// Factorizes `lambda G + rho I` for the given Gram matrix.
    pub fn new(gram: &Matrix, lambda: f64, opts: AdmmOptions) -> Result<Self> {
        if gram.rows() != gram.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: (gram.rows(), gram.rows()),
                got: gram.shape(),
            });
        }
        if lambda <= 0.0 || opts.rho <= 0.0 {
            return Err(LinalgError::InvalidArgument(
                "lambda and rho must be positive",
            ));
        }
        let n = gram.rows();
        let mut a = gram.clone();
        a.scale(lambda);
        for i in 0..n {
            a[(i, i)] += opts.rho;
        }
        Ok(Self {
            chol: Cholesky::new(&a)?,
            lambda,
            opts,
            n,
        })
    }

    /// Solves for one right-hand side `b = X^T x`, forcing `z[excluded] = 0`
    /// (pass `usize::MAX` for no exclusion).
    pub fn solve(&self, b: &[f64], excluded: usize) -> Result<SparseVec> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.n, 1),
                got: (b.len(), 1),
            });
        }
        let mut z = vec![0.0; self.n];
        let mut u = vec![0.0; self.n];
        let mut rhs = vec![0.0; self.n];
        let thresh = 1.0 / self.opts.rho;
        let mut c = vec![0.0; self.n];
        for _ in 0..self.opts.max_iters {
            for i in 0..self.n {
                rhs[i] = self.lambda * b[i] + self.opts.rho * (z[i] - u[i]);
            }
            c = self.chol.solve(&rhs)?;
            let mut primal = 0.0f64;
            let mut dual = 0.0f64;
            for i in 0..self.n {
                let z_new = if i == excluded {
                    0.0
                } else {
                    vector::soft_threshold(c[i] + u[i], thresh)
                };
                dual = dual.max((z_new - z[i]).abs() * self.opts.rho);
                z[i] = z_new;
                let r = c[i] - z[i];
                primal = primal.max(r.abs());
                u[i] += r;
            }
            if primal < self.opts.tol && dual < self.opts.tol {
                break;
            }
        }
        let _ = c; // c's final value is consensus-equal to z at convergence
        Ok(SparseVec::from_dense(&z, self.opts.support_tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lasso::{LassoOptions, LassoSolver};

    fn dictionary() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.2, -0.3, 0.5],
            &[0.1, 1.0, 0.4, -0.2],
            &[-0.2, 0.3, 1.0, 0.6],
        ])
        .unwrap()
    }

    #[test]
    fn admm_matches_coordinate_descent() {
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[0.7, -0.4, 0.9]).unwrap();
        for &lambda in &[1.0, 10.0, 100.0] {
            let admm = AdmmLasso::new(&g, lambda, AdmmOptions::default()).unwrap();
            let za = admm.solve(&b, usize::MAX).unwrap().to_dense();
            let cd = LassoSolver::new(&g, LassoOptions::default())
                .solve(&b, lambda, usize::MAX)
                .unwrap();
            let zc = cd.to_dense();
            for (a, c) in za.iter().zip(&zc) {
                assert!((a - c).abs() < 1e-4, "lambda {lambda}: {a} vs {c}");
            }
        }
    }

    #[test]
    fn admm_respects_exclusion() {
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[1.0, 0.1, -0.2]).unwrap();
        let admm = AdmmLasso::new(&g, 50.0, AdmmOptions::default()).unwrap();
        let z = admm.solve(&b, 0).unwrap().to_dense();
        assert_eq!(z[0], 0.0);
    }

    #[test]
    fn admm_rejects_bad_arguments() {
        let g = Matrix::identity(3);
        assert!(AdmmLasso::new(&g, -1.0, AdmmOptions::default()).is_err());
        assert!(AdmmLasso::new(&Matrix::zeros(2, 3), 1.0, AdmmOptions::default()).is_err());
        let ok = AdmmLasso::new(&g, 1.0, AdmmOptions::default()).unwrap();
        assert!(ok.solve(&[1.0], usize::MAX).is_err());
    }

    #[test]
    fn tiny_lambda_gives_zero_solution() {
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[0.5, 0.5, 0.5]).unwrap();
        let admm = AdmmLasso::new(&g, 1e-9, AdmmOptions::default()).unwrap();
        assert_eq!(admm.solve(&b, usize::MAX).unwrap().nnz(), 0);
    }
}
