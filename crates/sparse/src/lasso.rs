//! Lasso solver via cyclic coordinate descent with active-set shrinking,
//! gap-safe atom screening, and reusable per-thread workspaces.
//!
//! Solves the paper's Eq. (2), the noisy-SSC self-expression problem
//!
//! ```text
//!   min_c  (lambda / 2) ||X c - x||_2^2 + ||c||_1     s.t.  c_i = 0
//! ```
//!
//! in the Gram-precomputed form used by SSC: for a dictionary `X` with Gram
//! matrix `G = X^T X` and correlations `b = X^T x`, the coordinate update is
//!
//! ```text
//!   c_j  <-  soft(b_j - sum_{k != j} G_jk c_k, 1/lambda) / G_jj
//! ```
//!
//! Precomputing `G` once per device and reusing it across the device's `N`
//! per-point problems is what makes local SSC `O(N^2 d)` instead of
//! `O(N^3)` per point.
//!
//! ## Solver structure (DESIGN.md §9)
//!
//! Each working-set round copies the active atoms into a compact `m x m`
//! sub-Gram panel and sweeps coordinate descent there, so every residual
//! update is a contiguous length-`m` axpy instead of a length-`n` strided
//! pass over the full Gram. Between rounds the full residual `r = b - G c`
//! is rebuilt from the (small) support, KKT violators re-enter in a batch,
//! and — when the caller supplies `||x||^2` via [`LassoSolver::solve_screened`]
//! — a gap-safe sphere test permanently discards atoms that provably cannot
//! enter any optimal support at this `lambda`. Screening is exact: it only
//! removes atoms whose optimal coefficient is zero, so screened and
//! unscreened solves agree within the coordinate tolerance.

use crate::vec::SparseVec;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};
use fedsc_obs::LazyCounter;

/// Coordinate-descent sweeps executed (one panel pass each).
static LASSO_SWEEPS: LazyCounter = LazyCounter::new("lasso.sweeps");
/// Atoms permanently discarded by the gap-safe screening rule.
static LASSO_ATOMS_SCREENED: LazyCounter = LazyCounter::new("lasso.atoms_screened");
/// Working-set growth rounds across all solves.
static LASSO_WS_ROUNDS: LazyCounter = LazyCounter::new("lasso.ws_rounds");

/// Relative slack that makes the screening inequality strictly conservative
/// under floating-point evaluation: an atom is only discarded when its bound
/// clears the threshold by this margin.
const SCREEN_SLACK: f64 = 1e-9;

/// Options for the coordinate-descent Lasso.
///
/// The default sweep budget is tuned for the self-expression workloads this
/// solver serves (unit-norm dictionaries): cyclic CD converges in tens of
/// sweeps there. Adversarially ill-conditioned dictionaries (rank-deficient
/// Grams with strongly correlated atoms) can need orders of magnitude more
/// sweeps to reach KKT optimality — callers that care about worst-case
/// optimality should raise `max_iters` explicitly (the property tests do).
#[derive(Debug, Clone)]
pub struct LassoOptions {
    /// Maximum coordinate-descent sweeps per working-set round.
    pub max_iters: usize,
    /// Stop when the largest coordinate change in a sweep falls below this.
    pub tol: f64,
    /// Entries with `|c_j|` below this are dropped from the reported support.
    pub support_tol: f64,
    /// Initial working-set size (most-correlated atoms). The working set
    /// grows with KKT violators until optimality, so this only tunes speed.
    pub working_set: usize,
    /// Maximum working-set growth rounds.
    pub max_rounds: usize,
    /// Worker threads for *batches* of independent solves (one per point in
    /// SSC's self-expression sweep). A single `solve` call is always
    /// sequential; batch drivers such as `Ssc::coefficients` fan the
    /// per-point problems out over `fedsc_linalg::par` with this many
    /// workers. `1` (the default) keeps everything on the caller's thread.
    /// Results are index-ordered and bitwise independent of this knob.
    pub threads: usize,
}

impl Default for LassoOptions {
    fn default() -> Self {
        Self {
            max_iters: 2000,
            tol: 1e-6,
            support_tol: 1e-8,
            working_set: 48,
            max_rounds: 20,
            threads: 1,
        }
    }
}

/// Reusable scratch buffers for a sequence of Lasso solves over Grams of
/// (possibly varying) size.
///
/// Batch drivers keep one workspace per worker thread and pass it to every
/// [`LassoSolver::solve_in`] / [`LassoSolver::solve_screened`] call: the
/// allocations persist, while every value is re-initialized per solve, so
/// results never depend on what the workspace previously computed (this is
/// what keeps batch solves bitwise thread-invariant).
#[derive(Debug, Default)]
pub struct LassoWorkspace {
    /// Dense coefficients, length `n`.
    c: Vec<f64>,
    /// Residual correlations `r = b - G c`, length `n` (exact on all live
    /// atoms at round boundaries; maintained only on the panel inside a
    /// round).
    r: Vec<f64>,
    /// Unscreened candidate atoms (global indices).
    live: Vec<usize>,
    /// Working set (global indices).
    active: Vec<usize>,
    /// Membership mask for `active`, length `n`.
    in_active: Vec<bool>,
    /// Column-major `m x m` sub-Gram over the active atoms.
    panel: Vec<f64>,
    /// Residual restricted to the active atoms.
    rc: Vec<f64>,
    /// Coefficients restricted to the active atoms.
    cc: Vec<f64>,
    /// Gram diagonal restricted to the active atoms.
    diag: Vec<f64>,
    /// KKT violators found in the current round.
    violators: Vec<usize>,
}

impl LassoWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-initializes every per-solve value for a problem of size `n`.
    fn reset(&mut self, n: usize, b: &[f64]) {
        self.c.clear();
        self.c.resize(n, 0.0);
        self.r.clear();
        self.r.extend_from_slice(b);
        self.live.clear();
        self.active.clear();
        self.in_active.clear();
        self.in_active.resize(n, false);
        self.violators.clear();
    }
}

/// A Lasso solver bound to one dictionary Gram matrix.
///
/// `gram` must be `X^T X` for a column dictionary `X`; the same solver is
/// then used for every column's self-expression problem.
pub struct LassoSolver<'a> {
    gram: &'a Matrix,
    opts: LassoOptions,
}

impl<'a> LassoSolver<'a> {
    /// Creates a solver over a Gram matrix (must be square; checked).
    pub fn new(gram: &'a Matrix, opts: LassoOptions) -> Self {
        assert_eq!(gram.rows(), gram.cols(), "Gram matrix must be square");
        Self { gram, opts }
    }

    /// Solves `min (lambda/2)||X c - x||^2 + ||c||_1` given `b = X^T x`,
    /// forcing `c[excluded] = 0` when `excluded` is in range (pass
    /// `usize::MAX` for no exclusion).
    ///
    /// Returns the solution as a sparse vector. Errors on a correlation
    /// vector of the wrong length or a non-positive `lambda`.
    pub fn solve(&self, b: &[f64], lambda: f64, excluded: usize) -> Result<SparseVec> {
        let mut ws = LassoWorkspace::new();
        self.solve_impl(b, lambda, excluded, None, &mut ws)
    }

    /// [`LassoSolver::solve`] with caller-owned scratch buffers, the
    /// warm-start entry point for batch drivers: allocations in `ws` are
    /// reused across solves while every value is re-initialized, so the
    /// result is bitwise identical to a fresh [`LassoSolver::solve`].
    pub fn solve_in(
        &self,
        b: &[f64],
        lambda: f64,
        excluded: usize,
        ws: &mut LassoWorkspace,
    ) -> Result<SparseVec> {
        self.solve_impl(b, lambda, excluded, None, ws)
    }

    /// [`LassoSolver::solve_in`] plus gap-safe atom screening.
    ///
    /// `x_norm_sq` must be `||x||^2` for the target `x` behind
    /// `b = X^T x` — for SSC self-expression of point `i` that is simply
    /// `gram[(i, i)]`. Knowing `||x||^2` lets the solver evaluate the duality
    /// gap in Gram form and permanently discard atoms that provably take no
    /// part in any optimal support at this `lambda` (DESIGN.md §9 has the
    /// exactness argument), which shrinks every later KKT scan and keeps the
    /// working set small. Errors when `x_norm_sq` is negative or non-finite.
    pub fn solve_screened(
        &self,
        b: &[f64],
        lambda: f64,
        excluded: usize,
        x_norm_sq: f64,
        ws: &mut LassoWorkspace,
    ) -> Result<SparseVec> {
        if !x_norm_sq.is_finite() || x_norm_sq < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "lasso x_norm_sq must be finite and non-negative",
            ));
        }
        self.solve_impl(b, lambda, excluded, Some(x_norm_sq), ws)
    }

    fn solve_impl(
        &self,
        b: &[f64],
        lambda: f64,
        excluded: usize,
        x_norm_sq: Option<f64>,
        ws: &mut LassoWorkspace,
    ) -> Result<SparseVec> {
        let n = self.gram.cols();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        if lambda <= 0.0 {
            return Err(LinalgError::InvalidArgument(
                "lasso lambda must be positive",
            ));
        }
        let thresh = 1.0 / lambda;
        ws.reset(n, b);

        // Candidate atoms: everything with a usable curvature, minus the
        // excluded coordinate. Zero-diagonal atoms can never move off zero,
        // so dropping them up front is exact.
        ws.live
            .extend((0..n).filter(|&j| j != excluded && self.gram[(j, j)] > 0.0));

        // Working-set seeding (ORGEN-style): the most-correlated atoms — the
        // Lasso support is contained in high-correlation atoms for the
        // self-expression problems this solver serves — converge there, then
        // grow with KKT violators until none remain. Starting small avoids
        // the first-sweep blowup where every coordinate above the threshold
        // goes transiently nonzero.
        let seed = self.opts.working_set.max(1).min(ws.live.len());
        ws.active.extend_from_slice(&ws.live);
        let by_corr_desc = |&i: &usize, &j: &usize| b[j].abs().total_cmp(&b[i].abs());
        if seed < ws.active.len() {
            ws.active.select_nth_unstable_by(seed - 1, by_corr_desc);
            ws.active.truncate(seed);
        }
        ws.active.sort_unstable_by(by_corr_desc);
        for &j in &ws.active {
            ws.in_active[j] = true;
        }

        let mut rounds = 0u64;
        for _round in 0..self.opts.max_rounds.max(1) {
            rounds += 1;
            self.sweep_panel(thresh, ws);

            // Rebuild the exact residual from the support: `r = b - G c`,
            // one contiguous column axpy per nonzero coefficient.
            ws.r.copy_from_slice(b);
            for p in 0..ws.active.len() {
                let cj = ws.cc[p];
                if cj != 0.0 {
                    vector::axpy(-cj, self.gram.col(ws.active[p]), &mut ws.r);
                }
            }

            if let Some(x_sq) = x_norm_sq {
                self.screen(b, thresh, x_sq, ws);
            }

            // Batched KKT re-entry: every remaining dormant atom whose
            // gradient escapes the subdifferential joins the working set at
            // once.
            ws.violators.clear();
            for &j in &ws.live {
                if !ws.in_active[j] && ws.r[j].abs() > thresh * (1.0 + 1e-9) {
                    ws.violators.push(j);
                }
            }
            if ws.violators.is_empty() {
                break;
            }
            for i in 0..ws.violators.len() {
                let j = ws.violators[i];
                ws.in_active[j] = true;
                ws.active.push(j);
            }
        }
        LASSO_WS_ROUNDS.add(rounds);
        Ok(SparseVec::from_dense(&ws.c, self.opts.support_tol))
    }

    /// Copies the active atoms into a compact column-major panel and runs
    /// cyclic CD sweeps there until the largest coordinate change falls
    /// below `tol`. Inside the panel every residual update is a contiguous
    /// length-`m` axpy; converged coefficients are scattered back to `ws.c`.
    fn sweep_panel(&self, thresh: f64, ws: &mut LassoWorkspace) {
        let m = ws.active.len();
        ws.panel.resize(m * m, 0.0);
        ws.rc.resize(m, 0.0);
        ws.cc.resize(m, 0.0);
        ws.diag.resize(m, 0.0);
        for q in 0..m {
            let col = self.gram.col(ws.active[q]);
            let dst = &mut ws.panel[q * m..(q + 1) * m];
            for (p, slot) in dst.iter_mut().enumerate() {
                *slot = col[ws.active[p]];
            }
        }
        for p in 0..m {
            let j = ws.active[p];
            ws.rc[p] = ws.r[j];
            ws.cc[p] = ws.c[j];
            ws.diag[p] = self.gram[(j, j)];
        }

        let mut sweeps = 0u64;
        for _ in 0..self.opts.max_iters {
            sweeps += 1;
            let mut max_delta = 0.0f64;
            for p in 0..m {
                let old = ws.cc[p];
                // Correlation with atom p excluding its own contribution.
                let rho = ws.rc[p] + ws.diag[p] * old;
                let new = vector::soft_threshold(rho, thresh) / ws.diag[p];
                let delta = new - old;
                if delta != 0.0 {
                    ws.cc[p] = new;
                    vector::axpy(-delta, &ws.panel[p * m..(p + 1) * m], &mut ws.rc);
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.opts.tol {
                break;
            }
        }
        LASSO_SWEEPS.add(sweeps);

        for p in 0..m {
            ws.c[ws.active[p]] = ws.cc[p];
        }
    }

    /// Gap-safe sphere screening over the dormant live atoms.
    ///
    /// In the standard Lasso scaling (`min 0.5||x - Xc||^2 + t||c||_1` with
    /// `t = 1/lambda`) the dual point `theta = (x - Xc)/s` with
    /// `s = max(1, ||r||_inf / t)` over the live atoms is feasible for the
    /// reduced problem, and strong concavity of the dual gives
    /// `||theta - theta*|| <= sqrt(2 * gap)`. Any dormant atom `j` with
    ///
    /// ```text
    ///   |r_j| / s + sqrt(G_jj) * sqrt(2 * gap)  <  t
    /// ```
    ///
    /// therefore satisfies `|x_j^T theta*| < t` strictly, which forces
    /// `c*_j = 0` in every optimum — the atom is removed from `live` for
    /// good. All quantities are computed in Gram form:
    /// `||x - Xc||^2 = ||x||^2 - b.c - r.c` and `(x - Xc).x = ||x||^2 - b.c`.
    fn screen(&self, b: &[f64], thresh: f64, x_sq: f64, ws: &mut LassoWorkspace) {
        let mut b_dot_c = 0.0;
        let mut r_dot_c = 0.0;
        let mut l1 = 0.0;
        for p in 0..ws.active.len() {
            let cj = ws.cc[p];
            if cj != 0.0 {
                let j = ws.active[p];
                b_dot_c += b[j] * cj;
                r_dot_c += ws.r[j] * cj;
                l1 += cj.abs();
            }
        }
        let rho_sq = (x_sq - b_dot_c - r_dot_c).max(0.0);
        let r_inf = ws
            .live
            .iter()
            .fold(0.0f64, |acc, &j| acc.max(ws.r[j].abs()));
        let s = (r_inf / thresh).max(1.0);
        let gap =
            (0.5 * rho_sq * (1.0 + 1.0 / (s * s)) + thresh * l1 - (x_sq - b_dot_c) / s).max(0.0);
        let radius = (2.0 * gap).sqrt();

        let before = ws.live.len();
        let (gram, in_active, r) = (self.gram, &ws.in_active, &ws.r);
        ws.live.retain(|&j| {
            in_active[j]
                || r[j].abs() / s + gram[(j, j)].sqrt() * radius >= thresh * (1.0 - SCREEN_SLACK)
        });
        LASSO_ATOMS_SCREENED.add((before - ws.live.len()) as u64);
    }

    /// Maximum absolute KKT violation of a candidate solution — `0` at the
    /// optimum. Exposed for tests and for solver cross-validation:
    /// stationarity demands `lambda * (G c - b)_j + sign(c_j) = 0` on the
    /// support and `|lambda * (G c - b)_j| <= 1` off it. Errors when the
    /// candidate's dimension does not match the Gram matrix.
    pub fn kkt_violation(
        &self,
        b: &[f64],
        lambda: f64,
        excluded: usize,
        c: &SparseVec,
    ) -> Result<f64> {
        let n = self.gram.cols();
        let dense = c.to_dense();
        let gc = self.gram.matvec(&dense)?;
        let mut worst = 0.0f64;
        for j in 0..n {
            if j == excluded {
                continue;
            }
            let grad = lambda * (gc[j] - b[j]);
            let v = if dense[j] != 0.0 {
                (grad + dense[j].signum()).abs()
            } else {
                (grad.abs() - 1.0).max(0.0)
            };
            worst = worst.max(v);
        }
        Ok(worst)
    }
}

/// The paper's lambda rule (after Proposition 1 of Elhamifar & Vidal):
/// `lambda = alpha / max_{j != i} |x_j^T x_i|` would make the all-zero
/// solution optimal at `alpha = 1`, so SSC uses a multiple of the critical
/// value. The paper sets `lambda` such that the threshold `1/lambda` is
/// `max_j |x_j^T x_i| / alpha` with `alpha = 50`.
///
/// Given the correlation vector `b = X^T x_i` (with the self-correlation at
/// `excluded`), returns that lambda.
pub fn ssc_lambda(b: &[f64], excluded: usize, alpha: f64) -> f64 {
    let mu = b
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != excluded)
        .map(|(_, &v)| v.abs())
        .fold(0.0f64, f64::max);
    if mu <= 0.0 {
        // Degenerate point orthogonal to every other point: any lambda
        // yields the zero code; pick 1 to stay finite.
        return 1.0;
    }
    alpha / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dictionary: identity-ish columns in R^3.
    fn simple_dictionary() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 0.6], &[0.0, 1.0, 0.8], &[0.0, 0.0, 0.0]]).unwrap()
    }

    #[test]
    fn zero_lambda_threshold_gives_zero_solution() {
        // With a huge threshold (tiny lambda) the solution collapses to 0.
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let b = x.tr_matvec(&[1.0, 1.0, 0.0]).unwrap();
        let c = solver.solve(&b, 1e-9, usize::MAX).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn large_lambda_recovers_exact_representation() {
        // x = first column exactly; huge lambda forces a faithful fit.
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [1.0, 0.0, 0.0];
        let b = x.tr_matvec(&target).unwrap();
        let c = solver.solve(&b, 1e6, usize::MAX).unwrap();
        let dense = c.to_dense();
        let fit = x.matvec(&dense).unwrap();
        let err: f64 = fit
            .iter()
            .zip(&target)
            .map(|(f, t)| (f - t).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "fit error {err}");
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.2, -0.3, 0.5],
            &[0.1, 1.0, 0.4, -0.2],
            &[-0.2, 0.3, 1.0, 0.6],
        ])
        .unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [0.7, -0.4, 0.9];
        let b = x.tr_matvec(&target).unwrap();
        for &lambda in &[0.5, 2.0, 10.0, 100.0] {
            let c = solver.solve(&b, lambda, usize::MAX).unwrap();
            let viol = solver.kkt_violation(&b, lambda, usize::MAX, &c).unwrap();
            // The coordinate tolerance translates to a KKT residual of
            // roughly lambda * tol, so scale the acceptance accordingly.
            assert!(
                viol < 1e-6 * lambda.max(10.0) * 2.0,
                "lambda {lambda}: KKT violation {viol}"
            );
        }
    }

    #[test]
    fn excluded_coordinate_stays_zero() {
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        // Target equal to column 0; with column 0 excluded the solver must
        // lean on the others.
        let b = x.tr_matvec(&[0.6, 0.8, 0.0]).unwrap();
        let c = solver.solve(&b, 1e4, 2).unwrap();
        assert!(c.to_dense()[2] == 0.0);
        assert!(c.nnz() > 0);
    }

    #[test]
    fn self_expression_prefers_same_direction() {
        // Two nearly parallel columns and one orthogonal: the code for a
        // point near the pair should be supported on the pair.
        let x =
            Matrix::from_rows(&[&[1.0, 0.99, 0.0], &[0.0, 0.14, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [1.0, 0.05, 0.0];
        let b = x.tr_matvec(&target).unwrap();
        let lambda = ssc_lambda(&b, usize::MAX, 50.0);
        let c = solver.solve(&b, lambda, usize::MAX).unwrap();
        let dense = c.to_dense();
        assert!(
            dense[2].abs() < 1e-9,
            "orthogonal atom must stay out: {dense:?}"
        );
        assert!(dense[0].abs() + dense[1].abs() > 0.1);
    }

    #[test]
    fn ssc_lambda_rule() {
        let b = [0.3, -0.8, 0.5];
        assert!((ssc_lambda(&b, usize::MAX, 50.0) - 50.0 / 0.8).abs() < 1e-12);
        // Excluding the max changes the rule.
        assert!((ssc_lambda(&b, 1, 50.0) - 50.0 / 0.5).abs() < 1e-12);
        // Degenerate all-zero correlations.
        assert_eq!(ssc_lambda(&[0.0, 0.0], usize::MAX, 50.0), 1.0);
    }

    #[test]
    fn warm_active_set_reaches_an_optimum() {
        // With more atoms than ambient dimensions the Lasso optimum need not
        // be unique, so we verify optimality (KKT), not a particular
        // solution: active-set shrinking must still land on *an* optimum.
        let x = Matrix::from_rows(&[
            &[1.0, 0.9, 0.1, -0.4, 0.3],
            &[0.0, 0.3, 1.0, 0.5, -0.2],
            &[0.2, -0.1, 0.0, 0.8, 0.9],
        ])
        .unwrap();
        let g = x.gram();
        let b = x.tr_matvec(&[0.5, 0.5, 0.5]).unwrap();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let fast = solver.solve(&b, 20.0, usize::MAX).unwrap();
        let viol = solver.kkt_violation(&b, 20.0, usize::MAX, &fast).unwrap();
        assert!(viol < 1e-5, "KKT violation {viol}");
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_fresh_solves() {
        // The warm-start contract: reused allocations, re-initialized
        // values. Solving a batch through one workspace must reproduce
        // fresh per-solve results bit for bit, in any order.
        let x = Matrix::from_rows(&[
            &[1.0, 0.9, 0.1, -0.4, 0.3, 0.2],
            &[0.0, 0.3, 1.0, 0.5, -0.2, -0.7],
            &[0.2, -0.1, 0.0, 0.8, 0.9, 0.4],
        ])
        .unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let mut ws = LassoWorkspace::new();
        for i in 0..g.cols() {
            let b = g.col(i);
            let lambda = ssc_lambda(b, i, 50.0);
            let fresh = solver.solve(b, lambda, i).unwrap();
            let warm = solver.solve_in(b, lambda, i, &mut ws).unwrap();
            assert_eq!(fresh.to_dense(), warm.to_dense(), "point {i}");
        }
    }

    #[test]
    fn screened_solve_matches_unscreened() {
        // Self-expression over a small dictionary: screening must not move
        // a single coefficient beyond the coordinate tolerance.
        let x = Matrix::from_rows(&[
            &[1.0, 0.9, 0.1, -0.4, 0.3, 0.2],
            &[0.0, 0.3, 1.0, 0.5, -0.2, -0.7],
            &[0.2, -0.1, 0.0, 0.8, 0.9, 0.4],
        ])
        .unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let mut ws = LassoWorkspace::new();
        for i in 0..g.cols() {
            let b = g.col(i);
            for factor in [0.5, 1.0, 2.0] {
                let lambda = ssc_lambda(b, i, 50.0) * factor;
                let plain = solver.solve(b, lambda, i).unwrap().to_dense();
                let screened = solver
                    .solve_screened(b, lambda, i, g[(i, i)], &mut ws)
                    .unwrap()
                    .to_dense();
                for (j, (p, s)) in plain.iter().zip(&screened).enumerate() {
                    assert!(
                        (p - s).abs() < 1e-6,
                        "point {i} lambda x{factor} coef {j}: {p} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn screening_fires_on_self_expression() {
        // A deterministic 40-atom self-expression instance must actually
        // discard atoms (the exactness tests alone would pass even if the
        // screening rule never fired). Counters are global and monotone, so
        // a strict increase is safe to assert under parallel test threads.
        let mut x = Matrix::zeros(8, 40);
        for j in 0..40 {
            for i in 0..8 {
                x[(i, j)] = ((i * 13 + j * 5 + 1) % 11) as f64 - 5.0;
            }
        }
        x.normalize_columns(1e-12);
        let g = x.gram();
        // Seed below the atom count so dormant atoms exist: only dormant
        // atoms are screening candidates (active ones stay live).
        let opts = LassoOptions {
            working_set: 8,
            ..Default::default()
        };
        let solver = LassoSolver::new(&g, opts);
        let mut ws = LassoWorkspace::new();
        let before = fedsc_obs::metrics::snapshot()
            .counters
            .get("lasso.atoms_screened")
            .copied()
            .unwrap_or(0);
        let b = g.col(0);
        let lambda = ssc_lambda(b, 0, 50.0);
        let _ = solver
            .solve_screened(b, lambda, 0, g[(0, 0)], &mut ws)
            .unwrap();
        let after = fedsc_obs::metrics::snapshot()
            .counters
            .get("lasso.atoms_screened")
            .copied()
            .unwrap_or(0);
        assert!(after > before, "screening never fired: {before} -> {after}");
    }

    #[test]
    fn solve_screened_rejects_bad_norm() {
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let b = vec![0.0; g.cols()];
        let mut ws = LassoWorkspace::new();
        assert!(solver
            .solve_screened(&b, 1.0, usize::MAX, -1.0, &mut ws)
            .is_err());
        assert!(solver
            .solve_screened(&b, 1.0, usize::MAX, f64::NAN, &mut ws)
            .is_err());
    }
}
