//! Lasso solver via cyclic coordinate descent with active-set shrinking.
//!
//! Solves the paper's Eq. (2), the noisy-SSC self-expression problem
//!
//! ```text
//!   min_c  (lambda / 2) ||X c - x||_2^2 + ||c||_1     s.t.  c_i = 0
//! ```
//!
//! in the Gram-precomputed form used by SSC: for a dictionary `X` with Gram
//! matrix `G = X^T X` and correlations `b = X^T x`, the coordinate update is
//!
//! ```text
//!   c_j  <-  soft(b_j - sum_{k != j} G_jk c_k, 1/lambda) / G_jj
//! ```
//!
//! Precomputing `G` once per device and reusing it across the device's `N`
//! per-point problems is what makes local SSC `O(N^2 d)` instead of
//! `O(N^3)` per point.

use crate::vec::SparseVec;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};

/// Options for the coordinate-descent Lasso.
///
/// The default sweep budget is tuned for the self-expression workloads this
/// solver serves (unit-norm dictionaries): cyclic CD converges in tens of
/// sweeps there. Adversarially ill-conditioned dictionaries (rank-deficient
/// Grams with strongly correlated atoms) can need orders of magnitude more
/// sweeps to reach KKT optimality — callers that care about worst-case
/// optimality should raise `max_iters` explicitly (the property tests do).
#[derive(Debug, Clone)]
pub struct LassoOptions {
    /// Maximum coordinate-descent sweeps per working-set round.
    pub max_iters: usize,
    /// Stop when the largest coordinate change in a sweep falls below this.
    pub tol: f64,
    /// Entries with `|c_j|` below this are dropped from the reported support.
    pub support_tol: f64,
    /// Initial working-set size (most-correlated atoms). The working set
    /// grows with KKT violators until optimality, so this only tunes speed.
    pub working_set: usize,
    /// Maximum working-set growth rounds.
    pub max_rounds: usize,
    /// Worker threads for *batches* of independent solves (one per point in
    /// SSC's self-expression sweep). A single `solve` call is always
    /// sequential; batch drivers such as `Ssc::coefficients` fan the
    /// per-point problems out over `fedsc_linalg::par` with this many
    /// workers. `1` (the default) keeps everything on the caller's thread.
    /// Results are index-ordered and bitwise independent of this knob.
    pub threads: usize,
}

impl Default for LassoOptions {
    fn default() -> Self {
        Self {
            max_iters: 2000,
            tol: 1e-6,
            support_tol: 1e-8,
            working_set: 48,
            max_rounds: 20,
            threads: 1,
        }
    }
}

/// A Lasso solver bound to one dictionary Gram matrix.
///
/// `gram` must be `X^T X` for a column dictionary `X`; the same solver is
/// then used for every column's self-expression problem.
pub struct LassoSolver<'a> {
    gram: &'a Matrix,
    opts: LassoOptions,
}

impl<'a> LassoSolver<'a> {
    /// Creates a solver over a Gram matrix (must be square; checked).
    pub fn new(gram: &'a Matrix, opts: LassoOptions) -> Self {
        assert_eq!(gram.rows(), gram.cols(), "Gram matrix must be square");
        Self { gram, opts }
    }

    /// Solves `min (lambda/2)||X c - x||^2 + ||c||_1` given `b = X^T x`,
    /// forcing `c[excluded] = 0` when `excluded` is in range (pass
    /// `usize::MAX` for no exclusion).
    ///
    /// Returns the solution as a sparse vector. Errors on a correlation
    /// vector of the wrong length or a non-positive `lambda`.
    pub fn solve(&self, b: &[f64], lambda: f64, excluded: usize) -> Result<SparseVec> {
        let n = self.gram.cols();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        if lambda <= 0.0 {
            return Err(LinalgError::InvalidArgument(
                "lasso lambda must be positive",
            ));
        }
        let thresh = 1.0 / lambda;

        let mut c = vec![0.0; n];
        // residual correlations r_j = b_j - (G c)_j, maintained incrementally
        // over ALL coordinates so KKT screening is an O(n) scan.
        let mut r = b.to_vec();

        // Working-set strategy (ORGEN-style): start from the most-correlated
        // atoms — the Lasso support is contained in high-correlation atoms
        // for the self-expression problems this solver serves — converge on
        // that set, then grow it with KKT violators until none remain.
        // Starting small avoids the first-sweep blowup where every
        // coordinate above the threshold goes transiently nonzero at O(n)
        // apiece.
        let mut order: Vec<usize> = (0..n).filter(|&j| j != excluded).collect();
        order.sort_by(|&i, &j| b[j].abs().total_cmp(&b[i].abs()));
        let mut active: Vec<usize> = order
            .iter()
            .copied()
            .take(self.opts.working_set.max(1))
            .collect();
        let mut in_active = vec![false; n];
        for &j in &active {
            in_active[j] = true;
        }

        for _round in 0..self.opts.max_rounds.max(1) {
            for _ in 0..self.opts.max_iters {
                let mut max_delta = 0.0f64;
                for &j in &active {
                    let gjj = self.gram[(j, j)];
                    if gjj <= 0.0 {
                        continue;
                    }
                    let cj_old = c[j];
                    // Correlation with j excluding its own contribution.
                    let rho = r[j] + gjj * cj_old;
                    let cj_new = vector::soft_threshold(rho, thresh) / gjj;
                    let delta = cj_new - cj_old;
                    if delta != 0.0 {
                        c[j] = cj_new;
                        // r -= delta * G[:, j]
                        let gcol = self.gram.col(j);
                        for (rk, &g) in r.iter_mut().zip(gcol) {
                            *rk -= delta * g;
                        }
                        max_delta = max_delta.max(delta.abs());
                    }
                }
                if max_delta < self.opts.tol {
                    break;
                }
            }
            // KKT screening outside the working set.
            let mut violators: Vec<usize> = (0..n)
                .filter(|&j| j != excluded && !in_active[j] && r[j].abs() > thresh * (1.0 + 1e-9))
                .collect();
            if violators.is_empty() {
                break;
            }
            for &j in &violators {
                in_active[j] = true;
            }
            active.append(&mut violators);
        }
        Ok(SparseVec::from_dense(&c, self.opts.support_tol))
    }

    /// Maximum absolute KKT violation of a candidate solution — `0` at the
    /// optimum. Exposed for tests and for solver cross-validation:
    /// stationarity demands `lambda * (G c - b)_j + sign(c_j) = 0` on the
    /// support and `|lambda * (G c - b)_j| <= 1` off it. Errors when the
    /// candidate's dimension does not match the Gram matrix.
    pub fn kkt_violation(
        &self,
        b: &[f64],
        lambda: f64,
        excluded: usize,
        c: &SparseVec,
    ) -> Result<f64> {
        let n = self.gram.cols();
        let dense = c.to_dense();
        let gc = self.gram.matvec(&dense)?;
        let mut worst = 0.0f64;
        for j in 0..n {
            if j == excluded {
                continue;
            }
            let grad = lambda * (gc[j] - b[j]);
            let v = if dense[j] != 0.0 {
                (grad + dense[j].signum()).abs()
            } else {
                (grad.abs() - 1.0).max(0.0)
            };
            worst = worst.max(v);
        }
        Ok(worst)
    }
}

/// The paper's lambda rule (after Proposition 1 of Elhamifar & Vidal):
/// `lambda = alpha / max_{j != i} |x_j^T x_i|` would make the all-zero
/// solution optimal at `alpha = 1`, so SSC uses a multiple of the critical
/// value. The paper sets `lambda` such that the threshold `1/lambda` is
/// `max_j |x_j^T x_i| / alpha` with `alpha = 50`.
///
/// Given the correlation vector `b = X^T x_i` (with the self-correlation at
/// `excluded`), returns that lambda.
pub fn ssc_lambda(b: &[f64], excluded: usize, alpha: f64) -> f64 {
    let mu = b
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != excluded)
        .map(|(_, &v)| v.abs())
        .fold(0.0f64, f64::max);
    if mu <= 0.0 {
        // Degenerate point orthogonal to every other point: any lambda
        // yields the zero code; pick 1 to stay finite.
        return 1.0;
    }
    alpha / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dictionary: identity-ish columns in R^3.
    fn simple_dictionary() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 0.6], &[0.0, 1.0, 0.8], &[0.0, 0.0, 0.0]]).unwrap()
    }

    #[test]
    fn zero_lambda_threshold_gives_zero_solution() {
        // With a huge threshold (tiny lambda) the solution collapses to 0.
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let b = x.tr_matvec(&[1.0, 1.0, 0.0]).unwrap();
        let c = solver.solve(&b, 1e-9, usize::MAX).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn large_lambda_recovers_exact_representation() {
        // x = first column exactly; huge lambda forces a faithful fit.
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [1.0, 0.0, 0.0];
        let b = x.tr_matvec(&target).unwrap();
        let c = solver.solve(&b, 1e6, usize::MAX).unwrap();
        let dense = c.to_dense();
        let fit = x.matvec(&dense).unwrap();
        let err: f64 = fit
            .iter()
            .zip(&target)
            .map(|(f, t)| (f - t).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "fit error {err}");
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.2, -0.3, 0.5],
            &[0.1, 1.0, 0.4, -0.2],
            &[-0.2, 0.3, 1.0, 0.6],
        ])
        .unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [0.7, -0.4, 0.9];
        let b = x.tr_matvec(&target).unwrap();
        for &lambda in &[0.5, 2.0, 10.0, 100.0] {
            let c = solver.solve(&b, lambda, usize::MAX).unwrap();
            let viol = solver.kkt_violation(&b, lambda, usize::MAX, &c).unwrap();
            // The coordinate tolerance translates to a KKT residual of
            // roughly lambda * tol, so scale the acceptance accordingly.
            assert!(
                viol < 1e-6 * lambda.max(10.0) * 2.0,
                "lambda {lambda}: KKT violation {viol}"
            );
        }
    }

    #[test]
    fn excluded_coordinate_stays_zero() {
        let x = simple_dictionary();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        // Target equal to column 0; with column 0 excluded the solver must
        // lean on the others.
        let b = x.tr_matvec(&[0.6, 0.8, 0.0]).unwrap();
        let c = solver.solve(&b, 1e4, 2).unwrap();
        assert!(c.to_dense()[2] == 0.0);
        assert!(c.nnz() > 0);
    }

    #[test]
    fn self_expression_prefers_same_direction() {
        // Two nearly parallel columns and one orthogonal: the code for a
        // point near the pair should be supported on the pair.
        let x =
            Matrix::from_rows(&[&[1.0, 0.99, 0.0], &[0.0, 0.14, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let g = x.gram();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let target = [1.0, 0.05, 0.0];
        let b = x.tr_matvec(&target).unwrap();
        let lambda = ssc_lambda(&b, usize::MAX, 50.0);
        let c = solver.solve(&b, lambda, usize::MAX).unwrap();
        let dense = c.to_dense();
        assert!(
            dense[2].abs() < 1e-9,
            "orthogonal atom must stay out: {dense:?}"
        );
        assert!(dense[0].abs() + dense[1].abs() > 0.1);
    }

    #[test]
    fn ssc_lambda_rule() {
        let b = [0.3, -0.8, 0.5];
        assert!((ssc_lambda(&b, usize::MAX, 50.0) - 50.0 / 0.8).abs() < 1e-12);
        // Excluding the max changes the rule.
        assert!((ssc_lambda(&b, 1, 50.0) - 50.0 / 0.5).abs() < 1e-12);
        // Degenerate all-zero correlations.
        assert_eq!(ssc_lambda(&[0.0, 0.0], usize::MAX, 50.0), 1.0);
    }

    #[test]
    fn warm_active_set_reaches_an_optimum() {
        // With more atoms than ambient dimensions the Lasso optimum need not
        // be unique, so we verify optimality (KKT), not a particular
        // solution: active-set shrinking must still land on *an* optimum.
        let x = Matrix::from_rows(&[
            &[1.0, 0.9, 0.1, -0.4, 0.3],
            &[0.0, 0.3, 1.0, 0.5, -0.2],
            &[0.2, -0.1, 0.0, 0.8, 0.9],
        ])
        .unwrap();
        let g = x.gram();
        let b = x.tr_matvec(&[0.5, 0.5, 0.5]).unwrap();
        let solver = LassoSolver::new(&g, LassoOptions::default());
        let fast = solver.solve(&b, 20.0, usize::MAX).unwrap();
        let viol = solver.kkt_violation(&b, 20.0, usize::MAX, &fast).unwrap();
        assert!(viol < 1e-5, "KKT violation {viol}");
    }
}
