//! # fedsc-sparse
//!
//! Sparse data structures and sparse-optimization solvers for the Fed-SC
//! reproduction.
//!
//! * [`vec::SparseVec`] — sparse self-expression codes.
//! * [`csr::CsrMatrix`] — compressed sparse row storage for affinity graphs.
//! * [`lasso`] — cyclic coordinate descent with active-set shrinking for the
//!   SSC Lasso (paper Eq. (2)), plus the paper's `lambda` selection rule.
//! * [`admm`] — ADMM Lasso backend (cross-check oracle / ablation).
//! * [`omp`] — Orthogonal Matching Pursuit for SSC-OMP.
//! * [`elastic_net`] — elastic-net coordinate descent with ORGEN-style
//!   oracle active sets for EnSC.
//! * [`restricted`] — candidate-restricted SSC Lasso with an exact
//!   full-dictionary certificate and deterministic escalation (the solver
//!   half of the subquadratic pipeline).

#![warn(missing_docs)]
// Indexed loops over matrix dimensions are the idiom in numerical kernels
// (parallel indexing of several buffers); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod admm;
pub mod csr;
pub mod elastic_net;
pub mod lasso;
pub mod omp;
pub mod restricted;
pub mod vec;

pub use csr::CsrMatrix;
pub use vec::SparseVec;
