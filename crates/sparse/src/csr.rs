//! Compressed sparse row matrix.
//!
//! Affinity graphs built by the SC algorithms are stored sparsely (the paper
//! notes "the affinity matrices built by all the above algorithms are stored
//! as sparse matrices, which can be efficiently computed").

use crate::vec::SparseVec;
use fedsc_linalg::lanczos::SymOp;
use fedsc_linalg::{par, LinalgError, Matrix, Result};

/// A CSR matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets
            .iter()
            .copied()
            .filter(|&(r, c, v)| {
                assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
                v != 0.0
            })
            .collect();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates in place.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for &(r, c, v) in &merged {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Entry lookup (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut s = 0.0;
            for (c, v) in self.row(r) {
                s += v * x[c];
            }
            y[r] = s;
        }
        y
    }

    /// Sparse matrix × multi-vector product (SpMM): `ncols` operand vectors
    /// stored **interleaved** (`x[i * ncols + j]` is row `i` of vector `j`),
    /// result in the same layout.
    ///
    /// This is the block-Lanczos hot kernel: each stored entry `(r, c, v)`
    /// is loaded from memory **once** and multiplied against all `ncols`
    /// operand values `x[c * ncols + ..]` (contiguous, so the inner loop is
    /// a stride-1 axpy), instead of re-traversing the matrix per vector the
    /// way `ncols` separate [`CsrMatrix::matvec`] calls would.
    ///
    /// Rows fan out over the persistent pool in contiguous chunks; every
    /// output element is written by exactly one task with a fixed
    /// accumulation order, so the result is bitwise identical for every
    /// `threads` value.
    pub fn matvec_block(&self, x: &[f64], ncols: usize, threads: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.cols * ncols, "operand length mismatch");
        if ncols == 0 || self.rows == 0 {
            return vec![0.0; self.rows * ncols];
        }
        let threads = threads.max(1);
        // One chunk per pool participant is enough: chunk cost is uniform
        // in expectation (rows of a k-NN-bounded affinity have similar
        // nnz), and fewer chunks keep dispatch overhead off the kernel.
        let chunks = threads.min(self.rows);
        let per = self.rows.div_ceil(chunks);
        let parts: Vec<Vec<f64>> = par::par_map_heavy(chunks, threads, |ci| {
            let lo = (ci * per).min(self.rows);
            let hi = ((ci + 1) * per).min(self.rows);
            let mut out = vec![0.0; (hi - lo) * ncols];
            for r in lo..hi {
                let dst = &mut out[(r - lo) * ncols..(r - lo + 1) * ncols];
                for (c, v) in self.row(r) {
                    let src = &x[c * ncols..(c + 1) * ncols];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += v * s;
                    }
                }
            }
            out
        });
        let mut y = Vec::with_capacity(self.rows * ncols);
        for part in parts {
            y.extend_from_slice(&part);
        }
        y
    }

    /// Densifies (testing / small-graph use).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Row sums (degrees for an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Builds the symmetrized SSC affinity `|C| + |C|^T` (zero diagonal)
    /// from per-point self-expression codes, where `codes[i]` is column `i`
    /// of the coefficient matrix `C`.
    ///
    /// This is the sparse counterpart of the dense
    /// `AffinityGraph::from_coefficients` arithmetic: entry `(i, j)` becomes
    /// `|c_ij| + |c_ji|`, with absent coefficients contributing `0.0` — the
    /// triplet merge performs exactly that one addition, so the stored
    /// values are bitwise the dense ones.
    pub fn symmetrized_affinity(codes: &[SparseVec]) -> Self {
        let n = codes.len();
        let mut triplets = Vec::new();
        for (i, code) in codes.iter().enumerate() {
            assert_eq!(code.dim(), n, "code {i} has dimension {}", code.dim());
            for (j, v) in code.iter() {
                if j == i {
                    continue;
                }
                let a = v.abs();
                triplets.push((j, i, a));
                triplets.push((i, j, a));
            }
        }
        Self::from_triplets(n, n, &triplets)
    }
}

/// The CSR matrix as a symmetric Lanczos operator: lets the spectral stage
/// run `lanczos_smallest_op` directly on a sparse normalized Laplacian
/// without densifying (`O(nnz)` per iteration instead of `O(n^2)`).
impl SymOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.rows
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        Ok(self.matvec(x))
    }

    fn apply_block(&self, x: &[f64], ncols: usize, threads: usize) -> Result<Vec<f64>> {
        if x.len() != self.cols * ncols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols * ncols, 1),
                got: (x.len(), 1),
            });
        }
        Ok(self.matvec_block(x, ncols, threads))
    }

    fn gershgorin(&self) -> (f64, f64) {
        // Mirrors the dense impl: stored entries iterate in ascending column
        // order and the skipped zeros would have contributed `+0.0`, which is
        // a bitwise no-op on these non-negative partial sums.
        let mut sigma = f64::NEG_INFINITY;
        let mut scale = 0.0f64;
        for r in 0..self.rows {
            let mut row_sum = 0.0;
            for (c, v) in self.row(r) {
                row_sum += if r == c { v } else { v.abs() };
                scale = scale.max(v.abs());
            }
            sigma = sigma.max(row_sum);
        }
        (sigma, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_round_trip() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, -1.0), (1, 1, 3.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, -2.0]);
        let d = m.to_dense();
        assert_eq!(d.matvec(&[1.0, 2.0, 3.0]).unwrap(), y);
    }

    #[test]
    fn row_iteration_and_sums() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 4.0)]);
        let row0: Vec<(usize, f64)> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(m.row_sums(), vec![3.0, 4.0]);
    }

    #[test]
    fn matvec_block_matches_per_vector_matvec_bitwise() {
        // Deterministic sparse-ish rectangular matrix.
        let mut triplets = Vec::new();
        let mut state = 0x9e37u64;
        for r in 0..23 {
            for c in 0..17 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(3) {
                    triplets.push((r, c, (state as f64 / u64::MAX as f64) - 0.5));
                }
            }
        }
        let m = CsrMatrix::from_triplets(23, 17, &triplets);
        let ncols = 5;
        let mut x = vec![0.0; 17 * ncols];
        for (i, slot) in x.iter_mut().enumerate() {
            *slot = ((i * 7 + 3) % 11) as f64 - 5.0;
        }
        let base = m.matvec_block(&x, ncols, 1);
        for j in 0..ncols {
            let col: Vec<f64> = (0..17).map(|i| x[i * ncols + j]).collect();
            let y = m.matvec(&col);
            for i in 0..23 {
                assert_eq!(
                    base[i * ncols + j].to_bits(),
                    y[i].to_bits(),
                    "entry ({i}, {j})"
                );
            }
        }
        for threads in [2usize, 4, 7] {
            let yt = m.matvec_block(&x, ncols, threads);
            for (a, b) in yt.iter().zip(&base) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_triplet() {
        CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
