//! Elastic-net coordinate descent with ORGEN-style oracle active sets —
//! the solver behind EnSC (You, Li, Robinson & Vidal, CVPR 2016).
//!
//! Solves the per-point elastic-net self-expression problem
//!
//! ```text
//!   min_c  lambda ||c||_1 + (1 - lambda)/2 ||c||_2^2
//!            + gamma/2 ||x - X c||_2^2          s.t. c_i = 0
//! ```
//!
//! with `lambda in (0, 1]` trading sparsity against connectivity. The ORGEN
//! strategy starts from a small oracle set of highly correlated atoms, solves
//! the restricted problem with coordinate descent, and grows the set with
//! KKT-violating atoms until none remain — keeping the per-solve cost far
//! below a dense sweep for large dictionaries.

use crate::vec::SparseVec;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};

/// Options for the elastic-net solver.
#[derive(Debug, Clone)]
pub struct ElasticNetOptions {
    /// Sparsity/connectivity mixing weight `lambda` in `(0, 1]`.
    pub lambda: f64,
    /// Data-fidelity weight `gamma`.
    pub gamma: f64,
    /// Initial oracle-set size.
    pub oracle_size: usize,
    /// Maximum active-set growth rounds.
    pub max_rounds: usize,
    /// Maximum coordinate-descent sweeps per round.
    pub max_sweeps: usize,
    /// Coordinate-change convergence tolerance.
    pub tol: f64,
    /// Support threshold applied to the reported solution.
    pub support_tol: f64,
}

impl Default for ElasticNetOptions {
    fn default() -> Self {
        Self {
            lambda: 0.95,
            gamma: 50.0,
            oracle_size: 32,
            max_rounds: 10,
            max_sweeps: 2000,
            tol: 1e-9,
            support_tol: 1e-8,
        }
    }
}

/// Elastic-net solver bound to one dictionary Gram matrix.
pub struct ElasticNetSolver<'a> {
    gram: &'a Matrix,
    opts: ElasticNetOptions,
}

impl<'a> ElasticNetSolver<'a> {
    /// Creates a solver over a Gram matrix (must be square; checked).
    pub fn new(gram: &'a Matrix, opts: ElasticNetOptions) -> Self {
        assert_eq!(gram.rows(), gram.cols(), "Gram matrix must be square");
        assert!(
            opts.lambda > 0.0 && opts.lambda <= 1.0,
            "lambda must be in (0, 1]"
        );
        assert!(opts.gamma > 0.0, "gamma must be positive");
        Self { gram, opts }
    }

    /// Solves for one right-hand side `b = X^T x` with `c[excluded] = 0`
    /// (pass `usize::MAX` for no exclusion). Errors on a correlation vector
    /// of the wrong length.
    pub fn solve(&self, b: &[f64], excluded: usize) -> Result<SparseVec> {
        let n = self.gram.cols();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        let o = &self.opts;

        // Oracle set: atoms most correlated with the target.
        let mut order: Vec<usize> = (0..n).filter(|&j| j != excluded).collect();
        order.sort_by(|&i, &j| b[j].abs().total_cmp(&b[i].abs()));
        let mut active: Vec<usize> = order.iter().copied().take(o.oracle_size.max(1)).collect();
        active.sort_unstable();

        let mut c = vec![0.0; n];
        // r_j = gamma * (b_j - (G c)_j), maintained incrementally over ALL
        // coordinates so KKT screening is cheap.
        let mut r: Vec<f64> = b.iter().map(|&v| o.gamma * v).collect();

        for _ in 0..o.max_rounds {
            // Coordinate descent on the active set.
            for _ in 0..o.max_sweeps {
                let mut max_delta = 0.0f64;
                for &j in &active {
                    let gjj = self.gram[(j, j)];
                    let denom = o.gamma * gjj + (1.0 - o.lambda);
                    if denom <= 0.0 {
                        continue;
                    }
                    let cj_old = c[j];
                    let rho = r[j] + o.gamma * gjj * cj_old;
                    let cj_new = vector::soft_threshold(rho, o.lambda) / denom;
                    let delta = cj_new - cj_old;
                    if delta != 0.0 {
                        c[j] = cj_new;
                        let gcol = self.gram.col(j);
                        for (rk, &g) in r.iter_mut().zip(gcol) {
                            *rk -= o.gamma * delta * g;
                        }
                        max_delta = max_delta.max(delta.abs());
                    }
                }
                if max_delta < o.tol {
                    break;
                }
            }
            // KKT screening outside the active set.
            let mut violators: Vec<usize> = (0..n)
                .filter(|&j| {
                    j != excluded && !active.contains(&j) && r[j].abs() > o.lambda * (1.0 + 1e-9)
                })
                .collect();
            if violators.is_empty() {
                break;
            }
            active.append(&mut violators);
            active.sort_unstable();
            active.dedup();
        }
        Ok(SparseVec::from_dense(&c, o.support_tol))
    }

    /// Maximum absolute KKT violation of a candidate solution (0 at the
    /// optimum); exposed for tests. Errors when the candidate's dimension
    /// does not match the Gram matrix.
    pub fn kkt_violation(&self, b: &[f64], excluded: usize, c: &SparseVec) -> Result<f64> {
        let o = &self.opts;
        let dense = c.to_dense();
        let gc = self.gram.matvec(&dense)?;
        let mut worst = 0.0f64;
        for j in 0..self.gram.cols() {
            if j == excluded {
                continue;
            }
            let grad = o.gamma * (gc[j] - b[j]) + (1.0 - o.lambda) * dense[j];
            let v = if dense[j] != 0.0 {
                (grad + o.lambda * dense[j].signum()).abs()
            } else {
                (grad.abs() - o.lambda).max(0.0)
            };
            worst = worst.max(v);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dictionary() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.2, -0.3, 0.5, 0.0],
            &[0.1, 1.0, 0.4, -0.2, 0.3],
            &[-0.2, 0.3, 1.0, 0.6, -0.5],
        ])
        .unwrap()
    }

    #[test]
    fn kkt_holds_at_solution() {
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[0.7, -0.4, 0.9]).unwrap();
        for &lambda in &[0.5, 0.9, 1.0] {
            let opts = ElasticNetOptions {
                lambda,
                ..Default::default()
            };
            let solver = ElasticNetSolver::new(&g, opts);
            let c = solver.solve(&b, usize::MAX).unwrap();
            let viol = solver.kkt_violation(&b, usize::MAX, &c).unwrap();
            assert!(viol < 1e-5, "lambda {lambda}: violation {viol}");
        }
    }

    #[test]
    fn lambda_one_reduces_to_lasso() {
        // With lambda = 1 the ridge term vanishes: compare to the Lasso CD
        // solver on the equivalent problem
        //   gamma/2 ||x - Xc||^2 + ||c||_1.
        use crate::lasso::{LassoOptions, LassoSolver};
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[0.5, 0.2, -0.8]).unwrap();
        let en_opts = ElasticNetOptions {
            lambda: 1.0,
            gamma: 30.0,
            ..Default::default()
        };
        let en = ElasticNetSolver::new(&g, en_opts)
            .solve(&b, usize::MAX)
            .unwrap()
            .to_dense();
        let la = LassoSolver::new(&g, LassoOptions::default())
            .solve(&b, 30.0, usize::MAX)
            .unwrap()
            .to_dense();
        for (a, l) in en.iter().zip(&la) {
            assert!((a - l).abs() < 1e-5, "{a} vs {l}");
        }
    }

    #[test]
    fn small_oracle_set_still_reaches_optimum() {
        // Start with an oracle set of 1: the ORGEN loop must grow it to
        // cover all KKT violators.
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[0.7, -0.4, 0.9]).unwrap();
        let opts = ElasticNetOptions {
            oracle_size: 1,
            ..Default::default()
        };
        let solver = ElasticNetSolver::new(&g, opts);
        let c = solver.solve(&b, usize::MAX).unwrap();
        assert!(solver.kkt_violation(&b, usize::MAX, &c).unwrap() < 1e-5);
    }

    #[test]
    fn exclusion_is_respected() {
        let x = dictionary();
        let g = x.gram();
        let b = x.tr_matvec(&[1.0, 0.1, -0.2]).unwrap();
        let solver = ElasticNetSolver::new(&g, ElasticNetOptions::default());
        assert_eq!(solver.solve(&b, 0).unwrap().to_dense()[0], 0.0);
    }

    #[test]
    fn ridge_spreads_weight_over_correlated_atoms() {
        // Two identical atoms: pure Lasso picks one arbitrarily, elastic net
        // must split the weight (the connectivity argument for EnSC).
        let x = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let g = x.gram();
        let b = x.tr_matvec(&[1.0, 0.0]).unwrap();
        let opts = ElasticNetOptions {
            lambda: 0.5,
            gamma: 10.0,
            ..Default::default()
        };
        let c = ElasticNetSolver::new(&g, opts)
            .solve(&b, usize::MAX)
            .unwrap()
            .to_dense();
        assert!(c[0] > 1e-3 && c[1] > 1e-3, "weight must split: {c:?}");
        assert!(
            (c[0] - c[1]).abs() < 1e-4,
            "equal atoms get equal weight: {c:?}"
        );
    }
}
