//! Orthogonal Matching Pursuit — the greedy sparse coder behind SSC-OMP
//! (You, Robinson & Vidal, CVPR 2016).
//!
//! Greedily grows a support by picking the dictionary atom most correlated
//! with the current residual, then re-fits the target on the support by
//! least squares. Terminates at `k_max` atoms or when the residual norm
//! drops below `tol`.

use crate::vec::SparseVec;
use fedsc_linalg::qr::Qr;
use fedsc_linalg::{vector, LinalgError, Matrix, Result};

/// Options for OMP.
#[derive(Debug, Clone)]
pub struct OmpOptions {
    /// Maximum support size.
    pub k_max: usize,
    /// Residual Euclidean-norm stopping threshold.
    pub tol: f64,
}

impl Default for OmpOptions {
    fn default() -> Self {
        Self {
            k_max: 10,
            tol: 1e-6,
        }
    }
}

/// Runs OMP for target `x` over the columns of `dict`, never selecting
/// `excluded` (pass `usize::MAX` for no exclusion). Errors when the target
/// length does not match the dictionary's row count.
pub fn omp(dict: &Matrix, x: &[f64], excluded: usize, opts: &OmpOptions) -> Result<SparseVec> {
    let n = dict.cols();
    if x.len() != dict.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (dict.rows(), 1),
            got: (x.len(), 1),
        });
    }
    let mut residual = x.to_vec();
    let mut support: Vec<usize> = Vec::with_capacity(opts.k_max);
    let mut coeffs: Vec<f64> = Vec::new();

    for _ in 0..opts.k_max.min(n) {
        if vector::norm2(&residual) <= opts.tol {
            break;
        }
        // Most correlated unused atom.
        let mut best = usize::MAX;
        let mut best_corr = 0.0f64;
        for j in 0..n {
            if j == excluded || support.contains(&j) {
                continue;
            }
            let corr = vector::dot(dict.col(j), &residual).abs();
            if corr > best_corr {
                best_corr = corr;
                best = j;
            }
        }
        if best == usize::MAX || best_corr <= f64::EPSILON {
            break;
        }
        support.push(best);
        // Least-squares refit on the support.
        let sub = dict.select_columns(&support);
        match Qr::new(sub.clone()).and_then(|qr| qr.solve_least_squares(x)) {
            Ok(c) => {
                coeffs = c;
                let fit = sub.matvec(&coeffs)?;
                for (r, (&xi, &fi)) in residual.iter_mut().zip(x.iter().zip(&fit)) {
                    *r = xi - fi;
                }
            }
            Err(_) => {
                // Newly added atom is numerically dependent on the support;
                // discard it and stop growing.
                support.pop();
                break;
            }
        }
    }

    let mut pairs: Vec<(usize, f64)> = support
        .into_iter()
        .zip(coeffs)
        .filter(|&(_, v)| v != 0.0)
        .collect();
    pairs.sort_by_key(|&(j, _)| j);
    let (idx, val): (Vec<usize>, Vec<f64>) = pairs.into_iter().unzip();
    Ok(SparseVec::from_parts(n, idx, val))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_single_atom() {
        let dict = Matrix::from_rows(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5]]).unwrap();
        let c = omp(&dict, &[0.0, 2.0], usize::MAX, &OmpOptions::default()).unwrap();
        let d = c.to_dense();
        assert!((d[1] - 2.0).abs() < 1e-10);
        assert!(d[0].abs() < 1e-10 && d[2].abs() < 1e-10);
    }

    #[test]
    fn recovers_two_atom_combination() {
        let dict =
            Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let x = [2.0, -3.0, 0.0];
        let c = omp(
            &dict,
            &x,
            usize::MAX,
            &OmpOptions {
                k_max: 2,
                tol: 1e-9,
            },
        )
        .unwrap();
        let d = c.to_dense();
        assert!((d[0] - 2.0).abs() < 1e-10);
        assert!((d[1] + 3.0).abs() < 1e-10);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn respects_k_max() {
        let dict = Matrix::identity(4);
        let x = [1.0, 1.0, 1.0, 1.0];
        let c = omp(&dict, &x, usize::MAX, &OmpOptions { k_max: 2, tol: 0.0 }).unwrap();
        assert!(c.nnz() <= 2);
    }

    #[test]
    fn respects_exclusion() {
        let dict = Matrix::identity(3);
        let x = [5.0, 0.0, 0.0];
        let c = omp(&dict, &x, 0, &OmpOptions::default()).unwrap();
        assert_eq!(c.to_dense()[0], 0.0);
    }

    #[test]
    fn stops_on_small_residual() {
        let dict = Matrix::identity(3);
        let x = [1.0, 0.0, 0.0];
        let c = omp(
            &dict,
            &x,
            usize::MAX,
            &OmpOptions {
                k_max: 3,
                tol: 1e-9,
            },
        )
        .unwrap();
        // One atom reproduces the target exactly; no more should be added.
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn zero_target_gives_empty_code() {
        let dict = Matrix::identity(3);
        let c = omp(&dict, &[0.0, 0.0, 0.0], usize::MAX, &OmpOptions::default()).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn dependent_atoms_do_not_break_solver() {
        // Duplicate columns: the refit QR becomes singular once both are
        // selected; the solver must degrade gracefully.
        let dict = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        let c = omp(
            &dict,
            &[1.0, 1.0],
            usize::MAX,
            &OmpOptions { k_max: 2, tol: 0.0 },
        )
        .unwrap();
        assert!(c.nnz() >= 1);
    }
}
