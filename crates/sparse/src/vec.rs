//! Sparse vector: sorted index/value pairs.
//!
//! The self-expression codes SSC produces are extremely sparse (support size
//! ~ subspace dimension, out of hundreds of columns), so per-point solutions
//! are stored sparsely before being assembled into the affinity graph.

/// A sparse vector with strictly increasing indices.
#[derive(Debug, Clone, PartialEq, Default)]
#[must_use = "dropping a solver's sparse code discards the solve"]
pub struct SparseVec {
    indices: Vec<usize>,
    values: Vec<f64>,
    /// Logical dimension of the vector.
    dim: usize,
}

impl SparseVec {
    /// An all-zero sparse vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
            dim,
        }
    }

    /// Builds from a dense slice, keeping entries with `|v| > tol`.
    pub fn from_dense(dense: &[f64], tol: f64) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() > tol {
                indices.push(i);
                values.push(v);
            }
        }
        Self {
            indices,
            values,
            dim: dense.len(),
        }
    }

    /// Builds from parallel index/value arrays. Indices must be strictly
    /// increasing and below `dim`; panics otherwise (programmer error).
    pub fn from_parts(dim: usize, indices: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!(last < dim, "index {last} out of range for dim {dim}");
        }
        Self {
            indices,
            values,
            dim,
        }
    }

    /// Logical dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterator over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Stored indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Materializes as a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            d[i] = v;
        }
        d
    }

    /// `l1` norm of the stored values.
    pub fn norm1(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Largest absolute stored value (0 for an empty vector).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_thresholds() {
        let s = SparseVec::from_dense(&[0.0, 2.0, 1e-12, -3.0], 1e-9);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[2.0, -3.0]);
        assert_eq!(s.dim(), 4);
    }

    #[test]
    fn round_trip_dense() {
        let d = vec![1.0, 0.0, -2.5, 0.0];
        let s = SparseVec::from_dense(&d, 0.0);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn norms() {
        let s = SparseVec::from_parts(5, vec![0, 4], vec![3.0, -4.0]);
        assert_eq!(s.norm1(), 7.0);
        assert_eq!(s.max_abs(), 4.0);
        assert_eq!(SparseVec::zeros(3).max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_indices() {
        let _ = SparseVec::from_parts(5, vec![3, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = SparseVec::from_parts(2, vec![0, 2], vec![1.0, 2.0]);
    }
}
