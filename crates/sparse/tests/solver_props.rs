//! Property-based tests for the sparse solvers: optimality conditions and
//! cross-backend agreement on random instances.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use fedsc_linalg::random::gaussian_matrix;
use fedsc_linalg::Matrix;
use fedsc_sparse::admm::{AdmmLasso, AdmmOptions};
use fedsc_sparse::elastic_net::{ElasticNetOptions, ElasticNetSolver};
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};
use fedsc_sparse::omp::{omp, OmpOptions};
use fedsc_sparse::SparseVec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64, rows: usize, cols: usize) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = gaussian_matrix(&mut rng, rows, cols);
    let gram = x.gram();
    (x, gram)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lasso_cd_satisfies_kkt(seed in 0u64..2000, cols in 3usize..9, lambda in 0.5f64..50.0) {
        let (_, gram) = instance(seed, 4, cols);
        // Worst-case budget: see LassoOptions docs.
        let opts = LassoOptions { max_iters: 100_000, ..Default::default() };
        let solver = LassoSolver::new(&gram, opts);
        let b = gram.col(0);
        let c = solver.solve(b, lambda, 0).unwrap();
        let viol = solver.kkt_violation(b, lambda, 0, &c).unwrap();
        prop_assert!(viol < 1e-4 * lambda.max(1.0), "violation {viol}");
        prop_assert_eq!(c.to_dense()[0], 0.0);
    }

    #[test]
    fn gap_safe_screening_is_exact(
        seed in 0u64..2000,
        cols in 4usize..12,
        factor_idx in 0usize..3,
    ) {
        // Screening must be invisible in the result: for random unit-norm
        // dictionaries (the SSC convention) and lambdas bracketing the
        // ssc_lambda rule, the screened and unscreened solvers return the
        // same support and the same coefficients within support_tol.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = gaussian_matrix(&mut rng, 5, cols);
        x.normalize_columns(1e-12);
        let gram = x.gram();
        let b = gram.col(0);
        let lambda = ssc_lambda(b, 0, 50.0) * [0.5, 1.0, 2.0][factor_idx];
        // Tight tolerance so both solve paths land on the optimum rather
        // than on path-dependent approximations of it.
        let opts = LassoOptions { max_iters: 200_000, tol: 1e-12, ..Default::default() };
        let support_tol = opts.support_tol;
        let solver = LassoSolver::new(&gram, opts);
        let plain = solver.solve(b, lambda, 0).unwrap().to_dense();
        let mut ws = LassoWorkspace::new();
        let screened = solver
            .solve_screened(b, lambda, 0, gram[(0, 0)], &mut ws)
            .unwrap()
            .to_dense();
        for (j, (p, s)) in plain.iter().zip(&screened).enumerate() {
            prop_assert!(
                (p - s).abs() <= support_tol,
                "coef {j}: unscreened {p} vs screened {s}"
            );
            prop_assert_eq!(
                p.abs() > support_tol,
                s.abs() > support_tol,
                "support mismatch at atom {}: unscreened {} vs screened {}",
                j, p, s
            );
        }
    }

    #[test]
    fn cd_and_admm_reach_equal_objective(seed in 0u64..2000, cols in 3usize..8) {
        let (x, gram) = instance(seed, 5, cols);
        let lambda = 5.0;
        let b = gram.col(0);
        let cd = LassoSolver::new(&gram, LassoOptions::default()).solve(b, lambda, 0).unwrap();
        let admm = AdmmLasso::new(&gram, lambda, AdmmOptions::default())
            .unwrap()
            .solve(b, 0)
            .unwrap();
        // Objectives agree even when the minimizer is non-unique.
        let obj = |c: &SparseVec| {
            let dense = c.to_dense();
            let fit = x.matvec(&dense).unwrap();
            let target = x.col(0);
            let resid: f64 = fit.iter().zip(target).map(|(f, t)| (f - t) * (f - t)).sum();
            lambda / 2.0 * resid + c.norm1()
        };
        let diff = (obj(&cd) - obj(&admm)).abs();
        prop_assert!(diff < 1e-3, "objective gap {diff}");
    }

    #[test]
    fn elastic_net_kkt(seed in 0u64..2000, cols in 3usize..8, lambda in 0.3f64..1.0) {
        let (_, gram) = instance(seed, 5, cols);
        let opts = ElasticNetOptions { lambda, gamma: 20.0, max_sweeps: 100_000, ..Default::default() };
        let solver = ElasticNetSolver::new(&gram, opts);
        let b = gram.col(0);
        let c = solver.solve(b, 0).unwrap();
        let viol = solver.kkt_violation(b, 0, &c).unwrap();
        prop_assert!(viol < 1e-4, "violation {viol}");
    }

    #[test]
    fn omp_residual_orthogonal_to_support(seed in 0u64..2000, cols in 4usize..9) {
        let (x, _) = instance(seed, 6, cols);
        let target = x.col(0).to_vec();
        let code = omp(&x, &target, 0, &OmpOptions { k_max: 3, tol: 1e-10 }).unwrap();
        // Least-squares refit implies the residual is orthogonal to every
        // selected atom.
        let dense = code.to_dense();
        let fit = x.matvec(&dense).unwrap();
        let resid: Vec<f64> = target.iter().zip(&fit).map(|(t, f)| t - f).collect();
        for (j, _) in code.iter() {
            let ip = fedsc_linalg::vector::dot(x.col(j), &resid);
            prop_assert!(ip.abs() < 1e-8, "atom {j} correlation {ip}");
        }
    }

    #[test]
    fn sparse_vec_dense_round_trip(values in proptest::collection::vec(-3.0f64..3.0, 0..16)) {
        let sv = SparseVec::from_dense(&values, 0.0);
        prop_assert_eq!(sv.to_dense(), values);
    }
}
