//! # fedsc-bench
//!
//! Shared harness behind the per-figure/per-table binaries (`fig4`..`fig7`,
//! `table3`, `table4`) and the Criterion micro/ablation benches.
//!
//! Every binary prints the same rows/series the paper reports. Absolute
//! numbers differ from the paper's (different hardware, scaled-down sizes);
//! the *shapes* — who wins, by what rough factor, where crossovers fall —
//! are the reproduction target, and `EXPERIMENTS.md` records both sides.
//!
//! Scale is controlled by the `FEDSC_SCALE` environment variable:
//! `quick` (default) finishes each harness in roughly a minute;
//! `full` approaches the paper's grids (long-running).

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod instances;
pub mod methods;

pub use harness::{scale, Scale};
pub use methods::MethodResult;
