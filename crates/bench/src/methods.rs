//! Uniform runners for every method in the paper's evaluation: the two
//! Fed-SC variants, k-FED (plus PCA variants), and the five centralized SC
//! baselines — all returning the same metric bundle (ACC, NMI, CONN, time).

use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_clustering::conn::connectivity;
use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_clustering::{clustering_accuracy, normalized_mutual_information};
use fedsc_federated::kfed::{kfed, KFedConfig};
use fedsc_federated::partition::FederatedDataset;
use fedsc_obs::Stopwatch;
use fedsc_subspace::model::LabeledData;
use fedsc_subspace::SubspaceClusterer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The metric bundle every experiment reports.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name as the paper spells it.
    pub name: String,
    /// Clustering accuracy, percent.
    pub acc: f64,
    /// Normalized mutual information, percent.
    pub nmi: f64,
    /// CONN minimum (`c`); NaN when not computed.
    pub conn_min: f64,
    /// CONN mean (`c-bar`); NaN when not computed.
    pub conn_mean: f64,
    /// The paper's running time `T = sum_z T^(z) + T_c` (or total wall time
    /// for centralized methods).
    pub time: Duration,
}

impl MethodResult {
    /// Time in seconds.
    pub fn secs(&self) -> f64 {
        self.time.as_secs_f64()
    }
}

/// Runs Fed-SC with the given central backend over a partitioned dataset.
///
/// `compute_conn` toggles the induced-graph CONN computation (it is
/// `O(N^2)` in the total point count, so the big sweeps skip it).
pub fn run_fed_sc(
    fed: &FederatedDataset,
    l: usize,
    backend: CentralBackend,
    seed: u64,
    compute_conn: bool,
) -> MethodResult {
    let mut cfg = FedScConfig::new(l, backend);
    cfg.seed = seed;
    run_fed_sc_with(fed, cfg, compute_conn)
}

/// Runs Fed-SC with the paper's upper-bound cluster-count policy
/// `r^(z) = l_prime` (Remark 1's choice for complex data; also the reliable
/// choice when local graphs are too weakly separated for the eigengap
/// heuristic, as in the IID synthetic regime).
pub fn run_fed_sc_fixed(
    fed: &FederatedDataset,
    l: usize,
    l_prime: usize,
    backend: CentralBackend,
    seed: u64,
    compute_conn: bool,
) -> MethodResult {
    let mut cfg = FedScConfig::new(l, backend);
    cfg.cluster_count = fedsc::ClusterCountPolicy::Fixed(l_prime);
    cfg.seed = seed;
    run_fed_sc_with(fed, cfg, compute_conn)
}

/// Runs Fed-SC with a fully custom configuration.
pub fn run_fed_sc_with(
    fed: &FederatedDataset,
    cfg: FedScConfig,
    compute_conn: bool,
) -> MethodResult {
    let name = match cfg.central {
        CentralBackend::Ssc => "Fed-SC (SSC)",
        CentralBackend::Tsc { .. } => "Fed-SC (TSC)",
    };
    let truth = fed.global_truth();
    let out = FedSc::new(cfg).run(fed).expect("Fed-SC run");
    let (conn_min, conn_mean) = if compute_conn {
        let g = out.induced_global_affinity();
        let c = connectivity(&g, &truth).expect("connectivity");
        (c.min, c.mean)
    } else {
        (f64::NAN, f64::NAN)
    };
    MethodResult {
        name: name.to_string(),
        acc: clustering_accuracy(&truth, &out.predictions),
        nmi: normalized_mutual_information(&truth, &out.predictions),
        conn_min,
        conn_mean,
        time: out.sequential_time(),
    }
}

/// Runs k-FED (optionally with local PCA) over a partitioned dataset.
/// `local_k` is the per-device cluster count `k'`.
pub fn run_kfed(
    fed: &FederatedDataset,
    l: usize,
    local_k: usize,
    pca_dim: Option<usize>,
    seed: u64,
) -> MethodResult {
    let mut cfg = KFedConfig::new(l, local_k);
    cfg.pca_dim = pca_dim;
    cfg.seed = seed;
    let truth = fed.global_truth();
    let sw = Stopwatch::start();
    let out = kfed(fed, &cfg).expect("k-FED run");
    let wall = sw.elapsed();
    let name = match pca_dim {
        None => "k-FED".to_string(),
        Some(p) => format!("k-FED + PCA-{p}"),
    };
    MethodResult {
        name,
        acc: clustering_accuracy(&truth, &out.predictions),
        nmi: normalized_mutual_information(&truth, &out.predictions),
        conn_min: f64::NAN, // the paper marks k-FED CONN as '-'
        conn_mean: f64::NAN,
        time: (out.local_timing.sequential + out.server_time).min(wall.max(Duration::ZERO)),
    }
}

/// Runs a centralized SC baseline on the pooled dataset.
pub fn run_centralized<A: SubspaceClusterer>(
    algo: &A,
    data: &LabeledData,
    l: usize,
    seed: u64,
    compute_conn: bool,
) -> MethodResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let sw = Stopwatch::start();
    let graph = algo.affinity(&data.data).expect("affinity");
    let pred = spectral_clustering(&graph, &SpectralOptions::new(l), &mut rng)
        .expect("spectral clustering");
    let time = sw.elapsed();
    let (conn_min, conn_mean) = if compute_conn {
        let c = connectivity(&graph, &data.labels).expect("connectivity");
        (c.min, c.mean)
    } else {
        (f64::NAN, f64::NAN)
    };
    MethodResult {
        name: algo.name().to_string(),
        acc: clustering_accuracy(&data.labels, &pred),
        nmi: normalized_mutual_information(&data.labels, &pred),
        conn_min,
        conn_mean,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsc_federated::partition::{partition_dataset, Partition};
    use fedsc_subspace::{Ssc, SubspaceModel};

    fn small_fed() -> (FederatedDataset, usize) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SubspaceModel::random(&mut rng, 20, 3, 3);
        let ds = model.sample_dataset(&mut rng, &[48, 48, 48], 0.0);
        let fed = partition_dataset(&ds, 12, Partition::NonIid { l_prime: 2 }, &mut rng);
        (fed, 3)
    }

    #[test]
    fn fed_sc_runner_produces_metrics() {
        let (fed, l) = small_fed();
        let r = run_fed_sc(&fed, l, CentralBackend::Ssc, 7, true);
        assert!(r.acc > 80.0, "acc {}", r.acc);
        assert!(r.nmi > 60.0);
        assert!(r.conn_min.is_finite());
        assert!(r.secs() >= 0.0);
    }

    #[test]
    fn kfed_runner_reports_nan_conn() {
        let (fed, l) = small_fed();
        let r = run_kfed(&fed, l, 2, None, 7);
        assert!(r.conn_min.is_nan());
        assert!(r.acc >= 0.0 && r.acc <= 100.0);
    }

    #[test]
    fn centralized_runner_matches_direct_ssc() {
        let (fed, l) = small_fed();
        let pooled = fed.pooled();
        let r = run_centralized(&Ssc::default(), &pooled, l, 7, false);
        assert_eq!(r.name, "SSC");
        assert!(r.acc > 90.0, "acc {}", r.acc);
    }
}
