//! Scale selection and table printing shared by the harness binaries.

/// Run scale, selected by the `FEDSC_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale grids (default).
    Quick,
    /// Paper-scale grids (long-running).
    Full,
}

/// Reads `FEDSC_SCALE` (`quick` | `full`, case-insensitive; default quick).
pub fn scale() -> Scale {
    match std::env::var("FEDSC_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "full" => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Picks the quick or full variant of a grid.
pub fn pick<T: Clone>(s: Scale, quick: &[T], full: &[T]) -> Vec<T> {
    match s {
        Scale::Quick => quick.to_vec(),
        Scale::Full => full.to_vec(),
    }
}

/// Prints a header row followed by a separator, with the given column
/// widths.
pub fn print_header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$}  ", w = *w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
}

/// Formats a float cell, mapping NaN to `-` (the paper's "metric cannot be
/// computed" marker).
pub fn cell(v: f64, decimals: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set FEDSC_SCALE=full.
        if std::env::var("FEDSC_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }

    #[test]
    fn pick_selects_grid() {
        assert_eq!(pick(Scale::Quick, &[1, 2], &[3, 4]), vec![1, 2]);
        assert_eq!(pick(Scale::Full, &[1, 2], &[3, 4]), vec![3, 4]);
    }

    #[test]
    fn nan_prints_dash() {
        assert_eq!(cell(f64::NAN, 2), "-");
        assert_eq!(cell(1.234, 2), "1.23");
    }
}
