//! Deterministic graph instances shared by the harness binaries.
//!
//! Benchmark inputs must not depend on an rng stream that could drift
//! between runs or toolchains, so these are built from closed-form index
//! arithmetic only.

use fedsc_graph::SparseAffinity;
use fedsc_sparse::SparseVec;

/// Ideal k-cluster spectral instance: `blocks` complete blocks of `per`
/// nodes (coefficient 0.5 inside a block) with no inter-block edges — the
/// affinity a perfect self-expression run produces, whose normalized
/// Laplacian carries an exact `blocks`-fold zero eigenvalue. This is the
/// degenerate regime the kernel-seeded thick-restart solver captures by
/// construction and a lock-and-restart deflation has to dig out one copy
/// at a time.
pub fn block_affinity(blocks: usize, per: usize) -> SparseAffinity {
    ring_block_affinity_with(blocks, per, 0.0)
}

/// Connected spectral instance: `blocks` complete blocks of `per` nodes
/// (coefficient 0.5 everywhere inside a block) plus a weak ring (1e-3)
/// threading each block's first node to its neighbours' — the graph stays
/// connected, so the normalized Laplacian carries one exact zero plus
/// `blocks - 1` near-degenerate eigenvalues of order the ring weight, the
/// adversarial regime for a one-vector-at-a-time deflated solver.
pub fn ring_block_affinity(blocks: usize, per: usize) -> SparseAffinity {
    ring_block_affinity_with(blocks, per, 1e-3)
}

fn ring_block_affinity_with(blocks: usize, per: usize, ring: f64) -> SparseAffinity {
    let n = blocks * per;
    let mut codes = Vec::with_capacity(n);
    for b in 0..blocks {
        for p in 0..per {
            let mut entries: Vec<(usize, f64)> = Vec::with_capacity(per + 1);
            if p == 0 && blocks > 1 && ring > 0.0 {
                let prev = ((b + blocks - 1) % blocks) * per;
                let next = ((b + 1) % blocks) * per;
                entries.push((prev, ring));
                if next != prev {
                    entries.push((next, ring));
                }
            }
            for q in 0..per {
                if q != p {
                    entries.push((b * per + q, 0.5));
                }
            }
            entries.sort_unstable_by_key(|&(i, _)| i);
            let (ind, val) = entries.into_iter().unzip();
            codes.push(SparseVec::from_parts(n, ind, val));
        }
    }
    SparseAffinity::from_codes(&codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_instance_is_connected_and_symmetric() {
        let w = ring_block_affinity(4, 5);
        assert_eq!(w.len(), 20);
        assert_eq!(w.connected_components(0.0), 1);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(w.weight(i, j).to_bits(), w.weight(j, i).to_bits());
            }
        }
        // Single block degenerates to a plain complete graph.
        let one = ring_block_affinity(1, 6);
        assert_eq!(one.connected_components(0.0), 1);
    }

    #[test]
    fn block_instance_is_disconnected() {
        let w = block_affinity(4, 5);
        assert_eq!(w.connected_components(0.0), 4);
    }
}
