//! Thin wrapper: see `fedsc_bench::figures::fig4`.

fn main() {
    fedsc_bench::figures::fig4::run();
}
