//! Thin wrapper: see `fedsc_bench::figures::table3`.

fn main() {
    fedsc_bench::figures::table3::run();
}
