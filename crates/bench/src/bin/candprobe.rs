//! Scratch probe for the candidate pipeline's work profile at bench sizes.
//! Not part of the perf contract; run ad hoc when tuning
//! `CandidateOptions` defaults.

use fedsc_linalg::Matrix;
use fedsc_obs::Stopwatch;
use fedsc_subspace::{CandidateOptions, Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(4096);
    let k: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(64);
    let s: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(32);
    let cl: usize = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(8);
    let csub: usize = args.get(5).and_then(|v| v.parse().ok()).unwrap_or(6);
    let noise: f64 = args.get(6).and_then(|v| v.parse().ok()).unwrap_or(0.01);
    let cd = 64usize;
    let mut rng = StdRng::seed_from_u64(23);
    let model = fedsc_subspace::SubspaceModel::random(&mut rng, cd, csub, cl);
    let ds = model.sample_dataset(&mut rng, &vec![n / cl; cl], noise);
    let ssc = Ssc {
        candidates: Some(CandidateOptions {
            k,
            sketch_dim: s,
            min_points: 2,
            verify: !std::env::args().any(|a| a == "--no-verify"),
            ..CandidateOptions::default()
        }),
        ..Ssc::default()
    };
    if std::env::args().any(|a| a == "--dense") {
        let dense = Ssc {
            candidates: None,
            ..Ssc::default()
        };
        let sw = Stopwatch::start();
        let _g = dense.affinity(&ds.data).expect("dense affinity");
        eprintln!("dense affinity total {:?}", sw.elapsed());
        return;
    }
    if std::env::args().any(|a| a == "--e2e-dense") {
        let dense = Ssc {
            candidates: None,
            ..Ssc::default()
        };
        let mut opts = fedsc_clustering::SpectralOptions::new(cl);
        if let Some(r) = std::env::var("PROBE_RESTARTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            opts.kmeans.restarts = r;
        }
        let mut crng = StdRng::seed_from_u64(7);
        let sw = Stopwatch::start();
        let g = dense.affinity(&ds.data).expect("dense affinity");
        let t_aff = sw.elapsed();
        let a = fedsc_clustering::spectral_clustering(&g, &opts, &mut crng).expect("spectral");
        eprintln!(
            "e2e dense: affinity {t_aff:?}, total {:?}, acc {:.2}",
            sw.elapsed(),
            fedsc_clustering::clustering_accuracy(&ds.labels, &a)
        );
        return;
    }
    if std::env::args().any(|a| a == "--e2e-cand") {
        let mut opts = fedsc_clustering::SpectralOptions::new(cl);
        if let Some(r) = std::env::var("PROBE_RESTARTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            opts.kmeans.restarts = r;
        }
        let mut crng = StdRng::seed_from_u64(7);
        let sw = Stopwatch::start();
        let w = ssc.sparse_affinity(&ds.data).expect("sparse affinity");
        let t_aff = sw.elapsed();
        let lap = fedsc_graph::sparse::sparse_normalized_laplacian(&w);
        let t_lap = sw.elapsed();
        let _eig = fedsc_linalg::lanczos::lanczos_smallest_op(&lap, cl, cl + 40).expect("lanczos");
        let t_lan = sw.elapsed();
        let a = fedsc_clustering::spectral_clustering_sparse(&w, &opts, &mut crng)
            .expect("sparse spectral");
        eprintln!(
            "e2e cand: affinity {t_aff:?}, +lap {t_lap:?}, +lanczos {t_lan:?}, total-with-repeat {:?}, acc {:.2}",
            sw.elapsed(),
            fedsc_clustering::clustering_accuracy(&ds.labels, &a)
        );
        return;
    }
    let sw = Stopwatch::start();
    let out = ssc.candidate_codes(&ds.data).expect("codes");
    let t_codes = sw.elapsed();
    let certified = out.certified.iter().filter(|&&c| c).count();
    eprintln!(
        "n={n} k={k} s={s}: codes {t_codes:?}, certified {certified}/{}, escalated {}",
        out.certified.len(),
        out.escalated_points
    );
    let sw = Stopwatch::start();
    let _w = ssc.sparse_affinity(&ds.data).expect("affinity");
    eprintln!("sparse_affinity total {:?}", sw.elapsed());
    if std::env::args().any(|a| a == "--dense-kkt") {
        dense_kkt_audit(&ds.data, n.min(1024));
    }
    let snap = fedsc_obs::metrics::snapshot();
    for key in [
        "sketch.calls",
        "sketch.columns",
        "lasso.candidates_per_point",
        "lasso.escalations",
        "lasso.sweeps",
        "lasso.atoms_screened",
        "lasso.ws_rounds",
    ] {
        eprintln!("{key} = {}", snap.counters.get(key).copied().unwrap_or(0));
    }
    let _ = Matrix::zeros(1, 1);
}

/// How far the *dense* solver's accepted codes sit from exact KKT: for each
/// point, the max out-of-support |X^T rho| over the threshold 1/lambda.
fn dense_kkt_audit(data: &Matrix, n_audit: usize) {
    use fedsc_linalg::vector;
    use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};
    let mut x = data.clone();
    x.normalize_columns(1e-12);
    let sw = Stopwatch::start();
    let gram = x.gram_threaded(1);
    let solver = LassoSolver::new(&gram, LassoOptions::default());
    let mut ws = LassoWorkspace::new();
    let mut worst = 0.0f64;
    let mut over_1e4 = 0usize;
    let mut over_1e2 = 0usize;
    let mut ratios: Vec<f64> = Vec::new();
    for i in 0..n_audit {
        let b = gram.col(i);
        let lambda = ssc_lambda(b, i, 50.0);
        let code = solver
            .solve_screened(b, lambda, i, gram[(i, i)], &mut ws)
            .expect("screened solve");
        let mut f = vec![0.0f64; x.rows()];
        for (j, v) in code.iter() {
            vector::axpy(v, x.col(j), &mut f);
        }
        let u: Vec<f64> = x.col(i).iter().zip(&f).map(|(&xv, &fv)| xv - fv).collect();
        let r = x.tr_matvec(&u).expect("residual correlations");
        let t = 1.0 / lambda;
        let supp: Vec<usize> = code.iter().map(|(j, _)| j).collect();
        let mut m = 0.0f64;
        for (j, &rj) in r.iter().enumerate() {
            if j != i && !supp.contains(&j) {
                m = m.max(rj.abs() / t);
            }
        }
        ratios.push(supp.len() as f64);
        worst = worst.max(m);
        if m > 1.0 + 1e-4 {
            over_1e4 += 1;
        }
        if m > 1.01 {
            over_1e2 += 1;
        }
    }
    ratios.sort_by(f64::total_cmp);
    eprintln!(
        "dense KKT over {} pts in {:?}: worst ratio {worst:.6}, median support {}, >1+1e-4: {over_1e4}, >1.01: {over_1e2}",
        n_audit,
        sw.elapsed(),
        ratios[ratios.len() / 2]
    );
}
