//! Hierarchical-round perf scenario: a 10k+ device fleet through a
//! three-level aggregation tree, asserting the tree's defining scaling
//! property — **root uplink bytes grow with the cluster count, not the
//! device count** — plus clean-run accuracy and the `hier.*` metrics
//! contract.
//!
//! The fleet is the regime hierarchical aggregation is built for: many
//! tiny devices (8 points each on one of `L = 8` rank-2 subspaces of
//! R^16) through an aggregation tree — **two aggregator tiers** in the
//! full profile — so each node only ever clusters a few hundred pooled
//! samples (below the dense spectral cutover — bounded per-node work is
//! the point of the tree) and the root sees at most `top_aggs × L`
//! representatives no matter how large Z grows. Rank 2 matters: a
//! rank-1 subspace's unit sphere is the two-point set `{±u}`, so every
//! device would upload the *same* column and the pooled SSC graph
//! fragments into duplicate pairs. Two fleet sizes run back to back (4×
//! apart in Z, same aggregator tiers) and the harness asserts tier-0
//! ingress scales with Z while root ingress stays put.
//!
//! Output mirrors `perf.rs`: `{"rows": [...], "metrics": {...}}` written
//! to `BENCH_PR9.json` (full) or `BENCH_SMOKE_HIER.json` (`--smoke`, the
//! CI grid) at the workspace root. Each fleet produces one `wire_hier`
//! row (median wall time + byte totals) and one `wire_hier_tier` row per
//! tier with the per-tier traffic breakdown CI validates.

use fedsc::{CentralBackend, FedScConfig};
use fedsc_clustering::clustering_accuracy;
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_hier::{run_hier_round, HierPolicy, HierRunOutput, HierTopology};
use fedsc_obs::Stopwatch;
use fedsc_subspace::SubspaceModel;
use fedsc_transport::InMemoryTransport;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One JSON row, `extra` holding pre-formatted scenario fields.
struct Entry {
    kernel: &'static str,
    size: String,
    median_ns: u128,
    extra: String,
}

impl Entry {
    fn to_json(&self) -> String {
        format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"threads\": 1, \"median_ns\": {}, \"speedup\": 1.0{}}}",
            self.kernel, self.size, self.median_ns, self.extra
        )
    }
}

/// Walks up from the bench crate's manifest dir to the `[workspace]` root.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

/// Ambient dimension of the fleet's data.
const DIM: usize = 16;
/// Global cluster count `L`.
const CLUSTERS: usize = 8;
/// Points per device (tiny-device regime; enough to pin a rank-2 basis).
const POINTS_PER_DEVICE: usize = 8;

/// Builds the fleet and runs one hierarchical round, returning the output
/// and the wall time of the round itself (dataset generation excluded).
fn run_fleet(devices: usize, aggregators: &[usize]) -> (HierRunOutput, f64, u128) {
    let mut rng = StdRng::seed_from_u64(97);
    let model = SubspaceModel::random(&mut rng, DIM, 2, CLUSTERS);
    let per = devices * POINTS_PER_DEVICE / CLUSTERS;
    let ds = model.sample_dataset(&mut rng, &[per; CLUSTERS], 0.0);
    let fed = partition_dataset(&ds, devices, Partition::NonIid { l_prime: 1 }, &mut rng);
    let mut cfg = FedScConfig::new(CLUSTERS, CentralBackend::Ssc);
    // Four samples per local cluster: each aggregator then pools several
    // spread-out samples per subspace, which SSC self-expression needs.
    // Root ingress is unaffected — still one representative per merged
    // cluster — so the scaling contract below tightens, not loosens.
    cfg.samples_per_cluster = 4;
    let topo = HierTopology::new(devices, aggregators.to_vec()).expect("valid fleet topology");
    let sw = Stopwatch::start();
    let out = run_hier_round(
        &fed,
        &cfg,
        &topo,
        &InMemoryTransport,
        &HierPolicy::default(),
    )
    .expect("clean hierarchical round");
    let elapsed = sw.elapsed().as_nanos();
    let acc = clustering_accuracy(&fed.global_truth(), &out.wire.predictions);
    (out, acc, elapsed)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Fleet sizes 4× apart; the aggregator tiers stay fixed so the root's
    // child count — and therefore its ingress — must not follow Z. Tier
    // widths obey two bounds at every node: pools stay below the dense
    // spectral cutover (a few hundred samples), and stay above SSC's
    // self-expression floor (~8 same-subspace samples — each point needs
    // enough subspace-mates in the dictionary). That floor is what forces
    // ≥16 devices per tier-1 aggregator and ≥8 children above, so the
    // smoke fleets (Z ≤ 1024) run one aggregator tier and only the full
    // profile has the headroom for two.
    let (z_large, z_small, aggs) = if smoke {
        (1_024, 256, vec![16])
    } else {
        (10_240, 2_560, vec![160, 16])
    };

    let top_aggs = *aggs.last().expect("at least one aggregator tier");
    let aggs_label = aggs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join("-");
    let mut entries: Vec<Entry> = Vec::new();
    let mut outputs: Vec<(usize, HierRunOutput)> = Vec::new();
    for z in [z_small, z_large] {
        let (out, acc, ns) = run_fleet(z, &aggs);
        eprintln!(
            "wire_hier Z={z:>6} aggs={aggs_label}  {:>12} ns  acc {acc:.2}%  root_up {} B  tier0_up {} B",
            ns,
            out.root_uplink_bytes(),
            out.tiers[0].uplink_bytes
        );
        assert!(
            out.wire.excluded.is_empty(),
            "clean fleet Z={z} excluded {:?}",
            out.wire.excluded
        );
        assert!(acc > 90.0, "fleet Z={z} accuracy {acc}");
        // The scaling contract: the root ingests at most one
        // representative per merged cluster per top-tier aggregator —
        // `top_aggs × (header + L samples)` — however many devices feed
        // them.
        let root_cap = top_aggs * (16 + 8 * DIM * CLUSTERS);
        assert!(
            out.root_uplink_bytes() <= root_cap,
            "Z={z}: root uplink {} exceeds the cluster-count cap {root_cap}",
            out.root_uplink_bytes()
        );
        assert!(
            4 * out.root_uplink_bytes() <= out.tiers[0].uplink_bytes,
            "Z={z}: root uplink {} is not well separated from tier-0 ingress {}",
            out.root_uplink_bytes(),
            out.tiers[0].uplink_bytes
        );
        entries.push(Entry {
            kernel: "wire_hier",
            size: format!("Z={z},aggs={aggs_label}"),
            median_ns: ns,
            extra: format!(
                ", \"devices\": {z}, \"aggregators\": \"{aggs_label}\", \"accuracy\": {acc:.2}, \
                 \"root_uplink_bytes\": {}, \"total_uplink_bytes\": {}, \"total_downlink_bytes\": {}",
                out.root_uplink_bytes(),
                out.total_uplink_bytes(),
                out.total_downlink_bytes()
            ),
        });
        for (t, tier) in out.tiers.iter().enumerate() {
            // A completed tier always did work (collection, clustering,
            // and downlink relay at minimum): a zero here means the
            // driver stopped timing the tier, not that it was free.
            assert!(tier.wall_ns > 0, "tier {t} reported zero wall time");
            entries.push(Entry {
                kernel: "wire_hier_tier",
                size: format!("Z={z},tier={t}"),
                median_ns: u128::from(tier.wall_ns),
                extra: format!(
                    ", \"tier\": {t}, \"parents\": {}, \"children\": {}, \
                     \"uplink_bytes\": {}, \"downlink_bytes\": {}, \
                     \"uplink_messages\": {}, \"downlink_messages\": {}, \"excluded\": {}, \
                     \"envelope_bytes\": {}",
                    tier.parents,
                    tier.children,
                    tier.uplink_bytes,
                    tier.downlink_bytes,
                    tier.uplink_messages,
                    tier.downlink_messages,
                    tier.excluded_children.len(),
                    tier.envelope_bytes
                ),
            });
        }
        outputs.push((z, out));
    }

    // Cross-fleet scaling: quadrupling the devices must scale tier-0
    // ingress near-linearly while leaving root ingress (bounded by
    // top_aggs × L representatives) essentially unchanged.
    let small = &outputs[0].1;
    let large = &outputs[1].1;
    assert!(
        large.tiers[0].uplink_bytes >= 3 * small.tiers[0].uplink_bytes,
        "tier-0 ingress did not scale with the fleet: {} vs {}",
        large.tiers[0].uplink_bytes,
        small.tiers[0].uplink_bytes
    );
    assert!(
        4 * large.root_uplink_bytes() <= 5 * small.root_uplink_bytes(),
        "root ingress followed the fleet size: {} (Z={z_large}) vs {} (Z={z_small})",
        large.root_uplink_bytes(),
        small.root_uplink_bytes()
    );

    // Telemetry leg: the small fleet again with tracing on. The traced
    // round must be bitwise-identical in its labels, byte-identical in
    // payload accounting modulo the declared envelope bytes, and its
    // merged trace must pass the cross-process validator CI runs over
    // the written artifact.
    fedsc_obs::trace::install_ring(1 << 16);
    let (traced, _, _) = run_fleet(z_small, &aggs);
    let events = fedsc_obs::trace::uninstall();
    assert_eq!(
        traced.wire.predictions, small.wire.predictions,
        "telemetry perturbed the fleet's clustering"
    );
    for (t, (tr, un)) in traced.tiers.iter().zip(small.tiers.iter()).enumerate() {
        assert!(
            tr.envelope_bytes > 0,
            "traced tier {t} declared no envelope bytes"
        );
        assert_eq!(
            tr.uplink_bytes,
            un.uplink_bytes + tr.envelope_bytes,
            "tier {t} uplink delta is not the declared envelope bytes"
        );
    }
    let mut fleet = fedsc_obs::FleetCollector::new();
    fleet.add_local_events(&events, 1);
    let trace =
        fedsc_obs::export::fleet_chrome_trace_json(&fleet.spans, &[(1, "hier".to_string())]);
    let (span_count, edges) =
        fedsc_obs::export::validate_cross_process(&trace).expect("merged trace validates");
    eprintln!("wire_hier trace Z={z_small}: {span_count} spans, {edges} parent edges");
    let trace_file = if smoke {
        "trace_hier_smoke.json"
    } else {
        "trace_hier.json"
    };
    let trace_path = workspace_root().join(trace_file);
    std::fs::write(&trace_path, &trace).expect("write merged trace JSON");

    // Metrics contract: the hierarchical counters must have been exported
    // (CI's bench-smoke job checks the same keys in the written JSON).
    let snap = fedsc_obs::metrics::snapshot();
    for key in [
        "hier.device_rounds",
        "hier.agg_rounds",
        "hier.root_rounds",
        "hier.uplink_bytes",
        "hier.downlink_bytes",
    ] {
        assert!(
            snap.counters.get(key).copied().unwrap_or(0) > 0,
            "metrics snapshot missing or zero: {key}"
        );
    }

    let rows: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let metrics = fedsc_obs::export::metrics_json(&snap);
    let json = format!(
        "{{\"rows\": [\n{}\n], \"metrics\": {}}}\n",
        rows.join(",\n"),
        metrics
    );
    let file = if smoke {
        "BENCH_SMOKE_HIER.json"
    } else {
        "BENCH_PR9.json"
    };
    let path = workspace_root().join(file);
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!("wrote {}", path.display());
    println!("wrote {}", trace_path.display());
}
