//! Thin wrapper: see `fedsc_bench::figures::fig7`.

fn main() {
    fedsc_bench::figures::fig7::run();
}
