//! Thin wrapper: see `fedsc_bench::figures::ablation`.

fn main() {
    fedsc_bench::figures::ablation::run();
}
