//! Thin wrapper: see `fedsc_bench::figures::table4`.

fn main() {
    fedsc_bench::figures::table4::run();
}
