//! Thin wrapper: see `fedsc_bench::figures::privacy`.

fn main() {
    fedsc_bench::figures::privacy::run();
}
