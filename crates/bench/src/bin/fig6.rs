//! Thin wrapper: see `fedsc_bench::figures::fig6`.

fn main() {
    fedsc_bench::figures::fig6::run();
}
