//! PR perf-tracking harness: times the Fed-SC hot-path kernels at fixed
//! seeds and writes a machine-readable JSON snapshot next to the workspace
//! root, so successive PRs can be compared number-to-number.
//!
//! Kernels covered (threads in {1, max(default_threads, 2)} each; override
//! the upper point with `--max-threads <n>`):
//! - `gram` — the blocked `X^T X` product behind every SSC run.
//! - `matmul` — the blocked general product.
//! - `lasso_batch` — N screened self-expression solves over one shared
//!   Gram, the unit of work behind `ssc_affinity`.
//! - `ssc_affinity` — the per-point Lasso sweep (Phase 1's hot path).
//! - `pool_overhead` — many tiny `par_map` calls; below the
//!   `MIN_INLINE_ITEMS` threshold these run inline on the caller, so this
//!   scenario now measures the inline fast path.
//! - `pool_wake` — back-to-back `par_map` calls big enough to engage the
//!   pool; measures publish/wake latency (the spin-before-park path).
//! - `fedsc_e2e` — a full seeded Fed-SC run over a partitioned dataset.
//!
//! Output: `BENCH_PR7.json`, an object `{"rows": [...], "metrics": {...}}` —
//! `rows` holds `{kernel, size, threads, median_ns, speedup}` entries
//! (`speedup` is `median_1 / median_t`, 1.0 on the single-thread rows);
//! `metrics` is the flat `fedsc_obs` metrics snapshot accumulated over the
//! whole run (pool/wire/transport counters). `--smoke` runs a
//! seconds-scale grid and writes `BENCH_SMOKE.json` instead — that is what
//! CI validates. `--trace-out <path>` additionally records structured
//! spans and exports them as Chrome `trace_event` JSON (Perfetto-loadable;
//! CI validates it with `cargo xtask validate-trace`).
//!
//! When the host actually has cores to spare (`default_threads() >= 4`),
//! the full run asserts the multi-threaded medians are never slower than
//! 1.15x single-threaded — a regression tripwire, not a benchmark claim.

use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_linalg::par::default_threads;
use fedsc_linalg::Matrix;
use fedsc_obs::Stopwatch;
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};
use fedsc_subspace::{Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One JSON row. `extra` carries scenario-specific fields (already
/// JSON-formatted, e.g. `, "uplink_bytes": 5664`) appended to the row.
struct Entry {
    kernel: &'static str,
    size: String,
    threads: usize,
    median_ns: u128,
    speedup: f64,
    extra: String,
}

impl Entry {
    fn to_json(&self) -> String {
        format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"threads\": {}, \"median_ns\": {}, \"speedup\": {:.4}{}}}",
            self.kernel, self.size, self.threads, self.median_ns, self.speedup, self.extra
        )
    }
}

/// Median wall time of `reps` runs, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Deterministic filler (same family as the kernel property tests) —
/// benchmark inputs must not depend on an rng stream that could drift.
fn filled(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for j in 0..cols {
        for i in 0..rows {
            m[(i, j)] = ((i * 31 + j * 7 + 3) % 17) as f64 * 0.25 - 2.0;
        }
    }
    m
}

/// Times one kernel at threads = 1 and `tmax`, producing both rows.
fn bench_pair(
    kernel: &'static str,
    size: String,
    reps: usize,
    tmax: usize,
    mut run: impl FnMut(usize),
) -> Vec<Entry> {
    let t1 = median_ns(reps, || run(1));
    let tn = median_ns(reps, || run(tmax));
    eprintln!("{kernel:>14} {size:>24}  1t {t1:>12} ns   {tmax}t {tn:>12} ns");
    vec![
        Entry {
            kernel,
            size: size.clone(),
            threads: 1,
            median_ns: t1,
            speedup: 1.0,
            extra: String::new(),
        },
        Entry {
            kernel,
            size,
            threads: tmax,
            median_ns: tn,
            speedup: t1 as f64 / tn.max(1) as f64,
            extra: String::new(),
        },
    ]
}

/// Walks up from the bench crate's manifest dir to the `[workspace]` root.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

/// Returns the value following `flag` on the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_out = flag_value("--trace-out");
    if trace_out.is_some() {
        // 64k span slots: plenty for the smoke grid; the drained ring
        // reports how many were overwritten if a full run overflows it.
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // Always produce a genuinely multi-threaded row, even on a single-core
    // host (where it measures overhead, not speedup — still worth tracking).
    let tmax = flag_value("--max-threads")
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 2)
        .unwrap_or_else(|| default_threads().max(2));
    let reps = if smoke { 3 } else { 5 };
    let mut entries: Vec<Entry> = Vec::new();

    // Dense kernels.
    let (gd, gn) = if smoke { (60, 90) } else { (128, 1024) };
    let x = filled(gd, gn);
    entries.extend(bench_pair("gram", format!("{gd}x{gn}"), reps, tmax, |t| {
        std::hint::black_box(x.gram_threaded(t));
    }));
    let (mm, mk, mn) = if smoke { (70, 60, 80) } else { (384, 256, 512) };
    let a = filled(mm, mk);
    let b = filled(mk, mn);
    entries.extend(bench_pair(
        "matmul",
        format!("{mm}x{mk}x{mn}"),
        reps,
        tmax,
        |t| {
            std::hint::black_box(a.matmul_threaded(&b, t).expect("shapes agree"));
        },
    ));

    // SSC affinity: the per-point Lasso sweep over a seeded subspace
    // instance.
    let (sd, spts) = if smoke { (20, 30) } else { (40, 120) };
    let mut rng = StdRng::seed_from_u64(11);
    let model = fedsc_subspace::SubspaceModel::random(&mut rng, sd, 3, 3);
    let ds = model.sample_dataset(&mut rng, &[spts, spts, spts], 0.01);

    // Lasso batch: the N screened self-expression solves behind one
    // affinity computation, over a Gram precomputed outside the timer —
    // this isolates the solver from the `gram` kernel above.
    let lasso_gram = ds.data.gram_threaded(1);
    let npts = lasso_gram.cols();
    entries.extend(bench_pair(
        "lasso_batch",
        format!("n={npts}"),
        reps,
        tmax,
        |t| {
            let solver = LassoSolver::new(&lasso_gram, LassoOptions::default());
            let codes = fedsc_linalg::par::par_map_with(npts, t, LassoWorkspace::new, |ws, i| {
                let b = lasso_gram.col(i);
                let lambda = ssc_lambda(b, i, 50.0);
                solver
                    .solve_screened(b, lambda, i, lasso_gram[(i, i)], ws)
                    .expect("lasso solve")
            });
            std::hint::black_box(codes);
        },
    ));

    entries.extend(bench_pair(
        "ssc_affinity",
        format!("d={sd},n={}", 3 * spts),
        reps,
        tmax,
        |t| {
            let mut ssc = Ssc::default();
            ssc.lasso.threads = t;
            std::hint::black_box(ssc.affinity(&ds.data).expect("affinity"));
        },
    ));

    // Pool overhead: many tiny fan-outs, dominated by dispatch rather than
    // compute. These sit below `MIN_INLINE_ITEMS`, so `par_map` runs them
    // inline on the caller — BENCH_PR6 measured 5.1 ms per 32-item job at
    // 2 threads when every call paid a publish plus a futex wake.
    let (calls, items) = if smoke { (50, 32) } else { (400, 64) };
    entries.extend(bench_pair(
        "pool_overhead",
        format!("{calls}x{items}"),
        reps,
        tmax,
        |t| {
            for _ in 0..calls {
                std::hint::black_box(fedsc_linalg::par::par_map(items, t, |i| i * 17 + 1));
            }
        },
    ));

    // Pool wake latency: back-to-back fan-outs big enough to engage the
    // pool (>= MIN_INLINE_ITEMS). Out-of-work workers spin briefly on the
    // publish epoch, so each next job in the burst is claimed without a
    // park/unpark round trip.
    let (wake_calls, wake_items) = if smoke { (20, 256) } else { (100, 512) };
    entries.extend(bench_pair(
        "pool_wake",
        format!("{wake_calls}x{wake_items}"),
        reps,
        tmax,
        |t| {
            for _ in 0..wake_calls {
                std::hint::black_box(fedsc_linalg::par::par_map(wake_items, t, |i| i * 17 + 1));
            }
        },
    ));

    // End-to-end seeded Fed-SC over a non-IID partition.
    let (el, edim, edev, eper): (usize, usize, usize, usize) = if smoke {
        (3, 20, 8, 6)
    } else {
        (4, 40, 24, 12)
    };
    let mut rng = StdRng::seed_from_u64(5);
    let owners = (edev * 2).div_ceil(el).max(1);
    let syn = SyntheticConfig {
        ambient_dim: edim,
        subspace_dim: 3,
        num_subspaces: el,
        points_per_subspace: eper * owners,
        noise_std: 0.0,
    };
    let data = generate(&syn, &mut rng);
    let fed = partition_dataset(&data.data, edev, Partition::NonIid { l_prime: 2 }, &mut rng);
    entries.extend(bench_pair(
        "fedsc_e2e",
        format!("Z={edev},N={}", el * eper * owners),
        reps,
        tmax,
        |t| {
            let mut cfg = FedScConfig::new(el, CentralBackend::Ssc);
            cfg.threads = t;
            cfg.kernel_threads = t;
            cfg.seed = 7;
            std::hint::black_box(FedSc::new(cfg).run(&fed).expect("fed-sc run"));
        },
    ));

    // Wire rounds over real transports: wall-clock plus the uplink /
    // downlink byte totals as seen by the server. The in-memory reference
    // link counts payload bytes only; TCP accounting is wire-true —
    // framing headers and handshake frames included.
    let wdev = if smoke { 6 } else { 12 };
    let (wfed, wcfg) = fedsc::demo::demo_fixture(7, wdev, 3);
    let policy = fedsc::RoundPolicy::default();
    let wire_points: usize = wfed.devices.iter().map(|d| d.data.cols()).sum();
    for (kernel, run) in [
        (
            "wire_mem",
            Box::new(|| {
                fedsc::run_round(&wfed, &wcfg, &fedsc_transport::InMemoryTransport, &policy)
                    .expect("wire_mem round")
            }) as Box<dyn Fn() -> fedsc::WireRunOutput>,
        ),
        (
            "wire_tcp",
            Box::new(|| {
                fedsc::run_round(
                    &wfed,
                    &wcfg,
                    &fedsc_transport::TcpTransport::loopback(),
                    &policy,
                )
                .expect("wire_tcp round")
            }),
        ),
    ] {
        let mut last: Option<fedsc::WireRunOutput> = None;
        let t = median_ns(reps, || {
            last = Some(std::hint::black_box(run()));
        });
        let out = last.expect("at least one rep ran");
        eprintln!(
            "{kernel:>14} {:>24}  {wdev}dev {t:>12} ns   up {} B  down {} B",
            format!("Z={wdev},N={wire_points}"),
            out.uplink_bytes,
            out.downlink_bytes
        );
        entries.push(Entry {
            kernel,
            size: format!("Z={wdev},N={wire_points}"),
            threads: wdev,
            median_ns: t,
            speedup: 1.0,
            extra: format!(
                ", \"uplink_bytes\": {}, \"downlink_bytes\": {}",
                out.uplink_bytes, out.downlink_bytes
            ),
        });
    }

    // Regression tripwire: with real cores available, threading must never
    // cost more than 15% over serial on the full-size grid. Single-core CI
    // hosts (and the seconds-scale smoke grid) skip it — there the
    // multi-thread rows measure pool overhead by design.
    // `pool_overhead` / `pool_wake` are dispatch microbenchmarks with
    // near-zero compute per item; they measure the pool's fixed costs and
    // are exempt from the compute-speedup tripwire.
    let dispatch_only = ["pool_overhead", "pool_wake"];
    if !smoke && default_threads() >= 4 {
        for e in entries
            .iter()
            .filter(|e| e.threads > 1 && !dispatch_only.contains(&e.kernel))
        {
            assert!(
                e.speedup >= 1.0 / 1.15,
                "{} ({}) slowed down under {} threads: speedup {:.3}",
                e.kernel,
                e.size,
                e.threads,
                e.speedup
            );
        }
    }

    // Pool regression check: a persistent pool spawns each worker at most
    // once for the whole process, so the spawn counter is bounded by the
    // configured thread count. Spawn-per-call churn shows up here as counts
    // in the hundreds (BENCH_PR5.json recorded 530).
    let snap = fedsc_obs::metrics::snapshot();
    let spawned = snap
        .counters
        .get("pool.workers_spawned")
        .copied()
        .unwrap_or(0);
    assert!(
        spawned <= tmax as u64,
        "pool spawned {spawned} workers; configured thread count is {tmax}"
    );
    // Solver-counter contract: the screened Lasso hot path must have been
    // exercised and exported (CI's bench-smoke job checks the same keys in
    // the written JSON).
    for key in ["lasso.sweeps", "lasso.atoms_screened", "lasso.ws_rounds"] {
        assert!(
            snap.counters.contains_key(key),
            "metrics snapshot missing {key}"
        );
    }

    let rows: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let metrics = fedsc_obs::export::metrics_json(&snap);
    let json = format!(
        "{{\"rows\": [\n{}\n], \"metrics\": {}}}\n",
        rows.join(",\n"),
        metrics
    );
    let file = if smoke {
        "BENCH_SMOKE.json"
    } else {
        "BENCH_PR7.json"
    };
    let path = workspace_root().join(file);
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!("wrote {}", path.display());

    if let Some(out) = trace_out {
        let events = fedsc_obs::trace::uninstall();
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(&out, &trace).expect("write chrome trace JSON");
        println!("wrote {out} ({} span events)", events.len());
    }
}
