//! PR perf-tracking harness: times the Fed-SC hot-path kernels at fixed
//! seeds and writes a machine-readable JSON snapshot next to the workspace
//! root, so successive PRs can be compared number-to-number.
//!
//! Kernels covered (threads in {1, max(default_threads, 2)} each; override
//! the upper point with `--max-threads <n>`):
//! - `gram` — the blocked `X^T X` product behind every SSC run.
//! - `matmul` — the blocked general product.
//! - `lasso_batch` — N screened self-expression solves over one shared
//!   Gram, the unit of work behind `ssc_affinity`.
//! - `ssc_affinity` — the per-point Lasso sweep (Phase 1's hot path).
//! - `pool_overhead` — many tiny `par_map` calls; below the
//!   `MIN_INLINE_ITEMS` threshold these run inline on the caller, so this
//!   scenario now measures the inline fast path.
//! - `pool_wake` — back-to-back `par_map` calls big enough to engage the
//!   pool; measures publish/wake latency (the spin-before-park path).
//! - `ssc_affinity_dense` / `ssc_affinity_cand` — the dense all-pairs
//!   sweep vs the screening-only sketched-candidate CSR pipeline on the
//!   same seeded noisy mixture (n = 4096 head-to-head with a >= 10x
//!   tripwire, n = 16384 candidate-only; the dense path is quadratic in
//!   points and unbenchable there).
//! - `ssc_affinity_cert` — the certified-exact candidate pipeline
//!   (verify + escalate until every code is a full-dictionary optimum) on
//!   a noiseless many-subspace mixture, with certification stats.
//! - `fedsc_e2e` — a full seeded Fed-SC run over a partitioned dataset.
//! - `fedsc_e2e_cand` — the same run with `candidate_threshold` dropped so
//!   every SSC (local and central) routes through the candidate pipeline.
//! - `spectral_sparse` / `spectral_sparse_old` — the sparse spectral
//!   stage head-to-head: thick-restart block Lanczos (kernel-seeded) vs
//!   the legacy lock-and-restart deflation on the same CSR normalized
//!   Laplacian, with per-solve operator-apply counts in the rows and a
//!   strict fewer-matvecs tripwire (plus a >= 3x wall-clock bar on the
//!   full n = 4096, k = 64 instance).
//!
//! Output: `BENCH_PR10.json`, an object `{"rows": [...], "metrics": {...}}` —
//! `rows` holds `{kernel, size, threads, median_ns, speedup}` entries
//! (`speedup` is `median_1 / median_t`, 1.0 on the single-thread rows);
//! `metrics` is the flat `fedsc_obs` metrics snapshot accumulated over the
//! whole run (pool/wire/transport counters). `--smoke` runs a
//! seconds-scale grid and writes `BENCH_SMOKE.json` instead — that is what
//! CI validates. `--trace-out <path>` additionally records structured
//! spans and exports them as Chrome `trace_event` JSON (Perfetto-loadable;
//! CI validates it with `cargo xtask validate-trace`).
//!
//! When the host actually has cores to spare (`default_threads() >= 4`),
//! the full run asserts the multi-threaded medians are never slower than
//! 1.15x single-threaded — a regression tripwire, not a benchmark claim.

use fedsc::{CentralBackend, FedSc, FedScConfig};
use fedsc_bench::instances::block_affinity;
use fedsc_clustering::spectral::kernel_seeds;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_graph::sparse::sparse_normalized_laplacian;
use fedsc_linalg::lanczos::deflated_lanczos_smallest_op;
use fedsc_linalg::par::default_threads;
use fedsc_linalg::thick_restart::{thick_restart_smallest, ThickRestartOptions};
use fedsc_linalg::Matrix;
use fedsc_obs::Stopwatch;
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver, LassoWorkspace};
use fedsc_subspace::{CandidateOptions, Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One JSON row. `extra` carries scenario-specific fields (already
/// JSON-formatted, e.g. `, "uplink_bytes": 5664`) appended to the row.
struct Entry {
    kernel: &'static str,
    size: String,
    threads: usize,
    median_ns: u128,
    speedup: f64,
    extra: String,
}

impl Entry {
    fn to_json(&self) -> String {
        format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"threads\": {}, \"median_ns\": {}, \"speedup\": {:.4}{}}}",
            self.kernel, self.size, self.threads, self.median_ns, self.speedup, self.extra
        )
    }
}

/// Median wall time of `reps` runs, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Deterministic filler (same family as the kernel property tests) —
/// benchmark inputs must not depend on an rng stream that could drift.
fn filled(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for j in 0..cols {
        for i in 0..rows {
            m[(i, j)] = ((i * 31 + j * 7 + 3) % 17) as f64 * 0.25 - 2.0;
        }
    }
    m
}

/// Times one kernel at threads = 1 and `tmax`, producing both rows.
fn bench_pair(
    kernel: &'static str,
    size: String,
    reps: usize,
    tmax: usize,
    mut run: impl FnMut(usize),
) -> Vec<Entry> {
    let t1 = median_ns(reps, || run(1));
    let tn = median_ns(reps, || run(tmax));
    eprintln!("{kernel:>14} {size:>24}  1t {t1:>12} ns   {tmax}t {tn:>12} ns");
    vec![
        Entry {
            kernel,
            size: size.clone(),
            threads: 1,
            median_ns: t1,
            speedup: 1.0,
            extra: String::new(),
        },
        Entry {
            kernel,
            size,
            threads: tmax,
            median_ns: tn,
            speedup: t1 as f64 / tn.max(1) as f64,
            extra: String::new(),
        },
    ]
}

/// Current value of a named `fedsc_obs` counter (0 if never touched).
fn counter(name: &str) -> u64 {
    fedsc_obs::metrics::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Walks up from the bench crate's manifest dir to the `[workspace]` root.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::path::PathBuf::from(".");
        }
    }
}

/// Returns the value following `flag` on the command line, if present.
fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_out = flag_value("--trace-out");
    if trace_out.is_some() {
        // 64k span slots: plenty for the smoke grid; the drained ring
        // reports how many were overwritten if a full run overflows it.
        fedsc_obs::trace::install_ring(1 << 16);
    }
    // Always produce a genuinely multi-threaded row, even on a single-core
    // host (where it measures overhead, not speedup — still worth tracking).
    let tmax = flag_value("--max-threads")
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 2)
        .unwrap_or_else(|| default_threads().max(2));
    let reps = if smoke { 3 } else { 5 };
    let mut entries: Vec<Entry> = Vec::new();

    // Dense kernels.
    let (gd, gn) = if smoke { (60, 90) } else { (128, 1024) };
    let x = filled(gd, gn);
    entries.extend(bench_pair("gram", format!("{gd}x{gn}"), reps, tmax, |t| {
        std::hint::black_box(x.gram_threaded(t));
    }));
    let (mm, mk, mn) = if smoke { (70, 60, 80) } else { (384, 256, 512) };
    let a = filled(mm, mk);
    let b = filled(mk, mn);
    entries.extend(bench_pair(
        "matmul",
        format!("{mm}x{mk}x{mn}"),
        reps,
        tmax,
        |t| {
            std::hint::black_box(a.matmul_threaded(&b, t).expect("shapes agree"));
        },
    ));

    // SSC affinity: the per-point Lasso sweep over a seeded subspace
    // instance.
    let (sd, spts) = if smoke { (20, 30) } else { (40, 120) };
    let mut rng = StdRng::seed_from_u64(11);
    let model = fedsc_subspace::SubspaceModel::random(&mut rng, sd, 3, 3);
    let ds = model.sample_dataset(&mut rng, &[spts, spts, spts], 0.01);

    // Lasso batch: the N screened self-expression solves behind one
    // affinity computation, over a Gram precomputed outside the timer —
    // this isolates the solver from the `gram` kernel above.
    let lasso_gram = ds.data.gram_threaded(1);
    let npts = lasso_gram.cols();
    entries.extend(bench_pair(
        "lasso_batch",
        format!("n={npts}"),
        reps,
        tmax,
        |t| {
            let solver = LassoSolver::new(&lasso_gram, LassoOptions::default());
            let codes = fedsc_linalg::par::par_map_with(npts, t, LassoWorkspace::new, |ws, i| {
                let b = lasso_gram.col(i);
                let lambda = ssc_lambda(b, i, 50.0);
                solver
                    .solve_screened(b, lambda, i, lasso_gram[(i, i)], ws)
                    .expect("lasso solve")
            });
            std::hint::black_box(codes);
        },
    ));

    entries.extend(bench_pair(
        "ssc_affinity",
        format!("d={sd},n={}", 3 * spts),
        reps,
        tmax,
        |t| {
            let mut ssc = Ssc::default();
            ssc.lasso.threads = t;
            std::hint::black_box(ssc.affinity(&ds.data).expect("affinity"));
        },
    ));

    // Subquadratic SSC, two regimes on seeded subspace mixtures:
    //
    // Head-to-head (noisy, CD-bound): at noise 0.01 the dense sweep's
    // coordinate descent grinds on fat equicorrelated supports, so the
    // dense n = 4096 row is solver-bound, not Gram-bound. The candidate
    // row on the *same data* runs screening-only (`verify: false`): sketch,
    // top-k selection, restricted solves, CSR assembly — the genuinely
    // subquadratic solve path — and must beat dense by >= 10x at 1 thread.
    // (The exact certificate is a full-Gram-class pass by construction —
    // `O(n d)` per point — so certified mode is benched separately below
    // rather than pretending it is subquadratic.)
    //
    // Certified-exact (noiseless, many subspaces): the Fed-SC central
    // shape — many small clusters of unit-sphere samples on their
    // subspaces — where the sketched top-k contains the dense support and
    // the certificate actually certifies. These rows time the full
    // verify-and-escalate pipeline, with certification stats in the JSON;
    // the n = 16384 row is where the dense path is unbenchable.
    let (cd, csub, cl, cn4, cn16) = if smoke {
        (24, 4, 6, 192, 384)
    } else {
        (64, 6, 8, 4096, 16384)
    };
    let mut rng = StdRng::seed_from_u64(23);
    let cmodel = fedsc_subspace::SubspaceModel::random(&mut rng, cd, csub, cl);
    let c4 = cmodel.sample_dataset(&mut rng, &vec![cn4 / cl; cl], 0.01);
    let dense_ssc = Ssc {
        candidates: None,
        ..Ssc::default()
    };
    let t_dense = median_ns(1, || {
        std::hint::black_box(dense_ssc.affinity(&c4.data).expect("dense affinity"));
    });
    eprintln!(
        "{:>14} {:>24}  1t {t_dense:>12} ns",
        "ssc_aff_dense",
        format!("d={cd},n={cn4}")
    );
    entries.push(Entry {
        kernel: "ssc_affinity_dense",
        size: format!("d={cd},n={cn4}"),
        threads: 1,
        median_ns: t_dense,
        speedup: 1.0,
        extra: String::new(),
    });
    let cand_affinity = |data: &Matrix, t: usize, k: usize, s: usize, verify: bool| {
        let mut ssc = Ssc {
            candidates: Some(CandidateOptions {
                k,
                sketch_dim: s,
                min_points: 2,
                verify,
                ..CandidateOptions::default()
            }),
            ..Ssc::default()
        };
        ssc.lasso.threads = t;
        let out = ssc.candidate_codes(data).expect("candidate codes");
        let w = fedsc_graph::SparseAffinity::from_codes(&out.codes);
        std::hint::black_box(&w);
        out
    };
    // Screening rows run a leaner selection (k = 48, sketch dim 16) than
    // the certified default (64/32): without a certificate there is no
    // escalation to amortize, and the smaller panel keeps the restricted
    // Gram + CD stage comfortably past the 10x bar. The config is part of
    // the row's `size` string so the trajectory stays comparable.
    let (sk, ss) = (48, 16);
    let t_cand = median_ns(1, || {
        cand_affinity(&c4.data, 1, sk, ss, false);
    });
    eprintln!(
        "{:>14} {:>24}  1t {t_cand:>12} ns",
        "ssc_aff_cand",
        format!("d={cd},n={cn4},k={sk},s={ss}")
    );
    entries.push(Entry {
        kernel: "ssc_affinity_cand",
        size: format!("d={cd},n={cn4},k={sk},s={ss}"),
        threads: 1,
        median_ns: t_cand,
        speedup: 1.0,
        extra: String::new(),
    });
    // The PR 8 contract: sketched candidates + restricted solves + CSR
    // assembly at n = 4096 must be at least 10x faster than the dense
    // sweep, single-threaded, on the same data. Smoke sizes are too small
    // to amortize the sketch, so only the full grid asserts.
    if !smoke {
        assert!(
            t_cand.saturating_mul(10) <= t_dense,
            "candidate pipeline not 10x over dense at n={cn4}: {t_cand} ns vs {t_dense} ns"
        );
    }
    let c16 = cmodel.sample_dataset(&mut rng, &vec![cn16 / cl; cl], 0.01);
    let t16 = median_ns(1, || {
        cand_affinity(&c16.data, tmax, sk, ss, false);
    });
    eprintln!(
        "{:>14} {:>24}  {tmax}t {t16:>12} ns",
        "ssc_aff_cand",
        format!("d={cd},n={cn16},k={sk},s={ss}")
    );
    entries.push(Entry {
        kernel: "ssc_affinity_cand",
        size: format!("d={cd},n={cn16},k={sk},s={ss}"),
        threads: tmax,
        median_ns: t16,
        speedup: 1.0,
        extra: String::new(),
    });
    // Certified-exact rows: noiseless unit-sphere samples on many small
    // subspaces (subspace population <= k, so the sketched top-k can hold
    // the dense support). The 16k instance drops to subspace dimension 3:
    // at dimension 4 the support growth makes near-every point escalate
    // and the row takes minutes; at 3 the certificate passes ~97% of
    // points and the row stays ~1.5 min single-core.
    let (xsub4, xsub16, xl4, xl16) = if smoke {
        (3, 3, 6, 12)
    } else {
        (4, 3, 64, 256)
    };
    let xn4 = cn4;
    let xn16 = cn16;
    let mut rng = StdRng::seed_from_u64(29);
    let xmodel4 = fedsc_subspace::SubspaceModel::random(&mut rng, cd, xsub4, xl4);
    let x4 = xmodel4.sample_dataset(&mut rng, &vec![xn4 / xl4; xl4], 0.0);
    let sw4 = Stopwatch::start();
    let cert_out = cand_affinity(&x4.data, 1, 64, 32, true);
    let t_cert = sw4.elapsed().as_nanos();
    let cert4 = cert_out.certified.iter().filter(|&&c| c).count();
    eprintln!(
        "{:>14} {:>24}  1t {t_cert:>12} ns   certified {cert4}/{xn4}",
        "ssc_aff_cert",
        format!("d={cd},n={xn4}")
    );
    entries.push(Entry {
        kernel: "ssc_affinity_cert",
        size: format!("d={cd},n={xn4}"),
        threads: 1,
        median_ns: t_cert,
        speedup: 1.0,
        extra: format!(
            ", \"certified\": {cert4}, \"escalated\": {}",
            cert_out.escalated_points
        ),
    });
    let xmodel16 = fedsc_subspace::SubspaceModel::random(&mut rng, cd, xsub16, xl16);
    let x16 = xmodel16.sample_dataset(&mut rng, &vec![xn16 / xl16; xl16], 0.0);
    let sw16 = Stopwatch::start();
    let cert_out16 = cand_affinity(&x16.data, tmax, 64, 32, true);
    let t_cert16 = sw16.elapsed().as_nanos();
    let cert16 = cert_out16.certified.iter().filter(|&&c| c).count();
    eprintln!(
        "{:>14} {:>24}  {tmax}t {t_cert16:>12} ns   certified {cert16}/{xn16}",
        "ssc_aff_cert",
        format!("d={cd},n={xn16}")
    );
    entries.push(Entry {
        kernel: "ssc_affinity_cert",
        size: format!("d={cd},n={xn16}"),
        threads: tmax,
        median_ns: t_cert16,
        speedup: 1.0,
        extra: format!(
            ", \"certified\": {cert16}, \"escalated\": {}",
            cert_out16.escalated_points
        ),
    });

    // Pool overhead: many tiny fan-outs, dominated by dispatch rather than
    // compute. These sit below `MIN_INLINE_ITEMS`, so `par_map` runs them
    // inline on the caller — BENCH_PR6 measured 5.1 ms per 32-item job at
    // 2 threads when every call paid a publish plus a futex wake.
    let (calls, items) = if smoke { (50, 32) } else { (400, 64) };
    entries.extend(bench_pair(
        "pool_overhead",
        format!("{calls}x{items}"),
        reps,
        tmax,
        |t| {
            for _ in 0..calls {
                std::hint::black_box(fedsc_linalg::par::par_map(items, t, |i| i * 17 + 1));
            }
        },
    ));

    // Pool wake latency: back-to-back fan-outs big enough to engage the
    // pool (>= MIN_INLINE_ITEMS). Out-of-work workers spin briefly on the
    // publish epoch, so each next job in the burst is claimed without a
    // park/unpark round trip.
    let (wake_calls, wake_items) = if smoke { (20, 256) } else { (100, 512) };
    entries.extend(bench_pair(
        "pool_wake",
        format!("{wake_calls}x{wake_items}"),
        reps,
        tmax,
        |t| {
            for _ in 0..wake_calls {
                std::hint::black_box(fedsc_linalg::par::par_map(wake_items, t, |i| i * 17 + 1));
            }
        },
    ));

    // End-to-end seeded Fed-SC over a non-IID partition.
    let (el, edim, edev, eper): (usize, usize, usize, usize) = if smoke {
        (3, 20, 8, 6)
    } else {
        (4, 40, 24, 12)
    };
    let mut rng = StdRng::seed_from_u64(5);
    let owners = (edev * 2).div_ceil(el).max(1);
    let syn = SyntheticConfig {
        ambient_dim: edim,
        subspace_dim: 3,
        num_subspaces: el,
        points_per_subspace: eper * owners,
        noise_std: 0.0,
    };
    let data = generate(&syn, &mut rng);
    let fed = partition_dataset(&data.data, edev, Partition::NonIid { l_prime: 2 }, &mut rng);
    entries.extend(bench_pair(
        "fedsc_e2e",
        format!("Z={edev},N={}", el * eper * owners),
        reps,
        tmax,
        |t| {
            let mut cfg = FedScConfig::new(el, CentralBackend::Ssc);
            cfg.threads = t;
            cfg.kernel_threads = t;
            cfg.seed = 7;
            std::hint::black_box(FedSc::new(cfg).run(&fed).expect("fed-sc run"));
        },
    ));

    // The same federated run with `candidate_threshold` dropped to 2:
    // every SSC — each device's local affinity and the server's central
    // clustering over the pooled samples — routes through the sketched
    // candidates, the CSR affinity, and the sparse spectral path. At these
    // sizes it measures routing overhead, not speedup; the point is a
    // perf-tracked e2e row that exercises the full subquadratic plumbing.
    entries.extend(bench_pair(
        "fedsc_e2e_cand",
        format!("Z={edev},N={}", el * eper * owners),
        reps,
        tmax,
        |t| {
            let mut cfg = FedScConfig::new(el, CentralBackend::Ssc);
            cfg.threads = t;
            cfg.kernel_threads = t;
            cfg.seed = 7;
            cfg.candidate_threshold = 2;
            std::hint::black_box(FedSc::new(cfg).run(&fed).expect("fed-sc candidate run"));
        },
    ));

    // Sparse spectral stage (the PR 10 tentpole): thick-restart block
    // Lanczos with kernel-aware seeding vs the legacy lock-and-restart
    // deflation, on the same CSR normalized Laplacian of the deterministic
    // ideal k-cluster affinity (see `block_affinity`) — the exact k-fold
    // degenerate zero a perfect self-expression run hands the spectral
    // stage, which the seeded solver captures by construction while the
    // baseline deflates out one copy per restart cycle. The rows carry
    // the per-solve operator-apply count (`spectral.matvecs` delta) so the
    // algorithmic win is tracked separately from wall-clock; the harness
    // asserts the new solver needs strictly fewer applies on every grid,
    // and >= 3x less wall time on the full n = 4096, k = 64 instance.
    let (spb, spp, spk) = if smoke { (24, 25, 24) } else { (64, 64, 64) };
    let spn = spb * spp;
    let w_sp = block_affinity(spb, spp);
    let lap_sp = sparse_normalized_laplacian(&w_sp);
    let mv0 = counter("spectral.matvecs");
    let mut sp_rows = bench_pair(
        "spectral_sparse",
        format!("n={spn},k={spk}"),
        reps,
        tmax,
        |t| {
            let opts = ThickRestartOptions {
                seeds: kernel_seeds(&w_sp),
                threads: t,
                ..ThickRestartOptions::default()
            };
            let _ = std::hint::black_box(
                thick_restart_smallest(&lap_sp, spk, &opts).expect("thick restart"),
            );
        },
    );
    // The solve is deterministic and thread-invariant, so every rep costs
    // the same applies; bench_pair ran 2 * reps solves.
    let mv_new = (counter("spectral.matvecs") - mv0) / (2 * reps as u64);
    for row in &mut sp_rows {
        row.extra = format!(", \"matvecs\": {mv_new}");
    }
    let t_new = sp_rows[0].median_ns;
    entries.extend(sp_rows);
    let mv0_old = counter("spectral.matvecs");
    let t_old = median_ns(1, || {
        let _ = std::hint::black_box(
            deflated_lanczos_smallest_op(&lap_sp, spk, spk + 40).expect("deflated lanczos"),
        );
    });
    let mv_old = counter("spectral.matvecs") - mv0_old;
    eprintln!(
        "{:>14} {:>24}  1t {t_old:>12} ns   matvecs {mv_old} (new: {mv_new})",
        "spectral_old",
        format!("n={spn},k={spk}")
    );
    entries.push(Entry {
        kernel: "spectral_sparse_old",
        size: format!("n={spn},k={spk}"),
        threads: 1,
        median_ns: t_old,
        speedup: 1.0,
        extra: format!(", \"matvecs\": {mv_old}"),
    });
    // Matvec tripwire (CI bench-smoke runs this on the smoke grid too):
    // the blocked thick-restart solver must do strictly less operator work
    // than lock-and-restart on the same instance — wall-clock on a shared
    // runner is noise, operator applies are not.
    assert!(
        mv_new < mv_old,
        "thick-restart used {mv_new} operator applies vs legacy {mv_old} on n={spn},k={spk}"
    );
    if !smoke {
        assert!(
            t_new.saturating_mul(3) <= t_old,
            "thick-restart not 3x over lock-and-restart at n={spn},k={spk}: {t_new} ns vs {t_old} ns"
        );
        // The federated-scale point: k = 64 clusters over 16k pooled
        // samples. The legacy solver is unbenchable here (its apply count
        // scales with k * restarts * basis), so this row is new-solver
        // only, at the threaded grid point.
        let (bb, bp) = (64, 256);
        let bn = bb * bp;
        let w_big = block_affinity(bb, bp);
        let lap_big = sparse_normalized_laplacian(&w_big);
        let mv0_big = counter("spectral.matvecs");
        let t_big = median_ns(1, || {
            let opts = ThickRestartOptions {
                seeds: kernel_seeds(&w_big),
                threads: tmax,
                ..ThickRestartOptions::default()
            };
            let _ = std::hint::black_box(
                thick_restart_smallest(&lap_big, spk, &opts).expect("thick restart 16k"),
            );
        });
        let mv_big = counter("spectral.matvecs") - mv0_big;
        eprintln!(
            "{:>14} {:>24}  {tmax}t {t_big:>12} ns   matvecs {mv_big}",
            "spectral_sparse",
            format!("n={bn},k={spk}")
        );
        entries.push(Entry {
            kernel: "spectral_sparse",
            size: format!("n={bn},k={spk}"),
            threads: tmax,
            median_ns: t_big,
            speedup: 1.0,
            extra: format!(", \"matvecs\": {mv_big}"),
        });
    }

    // Wire rounds over real transports: wall-clock plus the uplink /
    // downlink byte totals as seen by the server. The in-memory reference
    // link counts payload bytes only; TCP accounting is wire-true —
    // framing headers and handshake frames included.
    let wdev = if smoke { 6 } else { 12 };
    let (wfed, wcfg) = fedsc::demo::demo_fixture(7, wdev, 3);
    let policy = fedsc::RoundPolicy::default();
    let wire_points: usize = wfed.devices.iter().map(|d| d.data.cols()).sum();
    for (kernel, run) in [
        (
            "wire_mem",
            Box::new(|| {
                fedsc::run_round(&wfed, &wcfg, &fedsc_transport::InMemoryTransport, &policy)
                    .expect("wire_mem round")
            }) as Box<dyn Fn() -> fedsc::WireRunOutput>,
        ),
        (
            "wire_tcp",
            Box::new(|| {
                fedsc::run_round(
                    &wfed,
                    &wcfg,
                    &fedsc_transport::TcpTransport::loopback(),
                    &policy,
                )
                .expect("wire_tcp round")
            }),
        ),
    ] {
        let mut last: Option<fedsc::WireRunOutput> = None;
        let t = median_ns(reps, || {
            last = Some(std::hint::black_box(run()));
        });
        let out = last.expect("at least one rep ran");
        eprintln!(
            "{kernel:>14} {:>24}  {wdev}dev {t:>12} ns   up {} B  down {} B",
            format!("Z={wdev},N={wire_points}"),
            out.uplink_bytes,
            out.downlink_bytes
        );
        entries.push(Entry {
            kernel,
            size: format!("Z={wdev},N={wire_points}"),
            threads: wdev,
            median_ns: t,
            speedup: 1.0,
            extra: format!(
                ", \"uplink_bytes\": {}, \"downlink_bytes\": {}",
                out.uplink_bytes, out.downlink_bytes
            ),
        });
    }

    // Regression tripwire: with real cores available, threading must never
    // cost more than 15% over serial on the full-size grid. Single-core CI
    // hosts (and the seconds-scale smoke grid) skip it — there the
    // multi-thread rows measure pool overhead by design.
    // `pool_overhead` / `pool_wake` are dispatch microbenchmarks with
    // near-zero compute per item; they measure the pool's fixed costs and
    // are exempt from the compute-speedup tripwire.
    let dispatch_only = ["pool_overhead", "pool_wake"];
    if !smoke && default_threads() >= 4 {
        for e in entries
            .iter()
            .filter(|e| e.threads > 1 && !dispatch_only.contains(&e.kernel))
        {
            assert!(
                e.speedup >= 1.0 / 1.15,
                "{} ({}) slowed down under {} threads: speedup {:.3}",
                e.kernel,
                e.size,
                e.threads,
                e.speedup
            );
        }
    }

    // Pool regression check: a persistent pool spawns each worker at most
    // once for the whole process, so the spawn counter is bounded by the
    // configured thread count. Spawn-per-call churn shows up here as counts
    // in the hundreds (BENCH_PR5.json recorded 530).
    let snap = fedsc_obs::metrics::snapshot();
    let spawned = snap
        .counters
        .get("pool.workers_spawned")
        .copied()
        .unwrap_or(0);
    assert!(
        spawned <= tmax as u64,
        "pool spawned {spawned} workers; configured thread count is {tmax}"
    );
    // Solver-counter contract: the screened Lasso hot path must have been
    // exercised and exported (CI's bench-smoke job checks the same keys in
    // the written JSON).
    for key in [
        "lasso.sweeps",
        "lasso.atoms_screened",
        "lasso.ws_rounds",
        // The candidate pipeline's own contract: the sketch kernel and the
        // restricted solver must have run and exported their counters.
        "sketch.calls",
        "sketch.columns",
        "lasso.candidates_per_point",
        "lasso.escalations",
        // The spectral stage's contract: the thick-restart solver must have
        // run and exported its restart/apply/reorth/lock telemetry.
        "spectral.matvecs",
        "spectral.restarts",
        "spectral.reorth_passes",
        "spectral.ritz_locked",
    ] {
        assert!(
            snap.counters.contains_key(key),
            "metrics snapshot missing {key}"
        );
    }

    // Pool wake tripwire (the PR 8 satellite): back-to-back pool-engaging
    // fan-outs at > 1 thread must never cost more than 5x the inline serial
    // sweep — the 2-thread pathology fixed alongside this PR showed up as
    // ~20x here. Applies whenever the multi-thread row actually engaged
    // the pool (full grid only; smoke sizes park workers between calls).
    if !smoke && default_threads() >= 2 {
        let wake_1 = entries
            .iter()
            .find(|e| e.kernel == "pool_wake" && e.threads == 1)
            .map(|e| e.median_ns)
            .expect("pool_wake single-thread row");
        let wake_n = entries
            .iter()
            .find(|e| e.kernel == "pool_wake" && e.threads > 1)
            .map(|e| e.median_ns)
            .expect("pool_wake multi-thread row");
        assert!(
            wake_n <= wake_1.saturating_mul(5),
            "pool_wake multi-thread median {wake_n} ns exceeds 5x single-thread {wake_1} ns"
        );
    }

    let rows: Vec<String> = entries.iter().map(Entry::to_json).collect();
    let metrics = fedsc_obs::export::metrics_json(&snap);
    let json = format!(
        "{{\"rows\": [\n{}\n], \"metrics\": {}}}\n",
        rows.join(",\n"),
        metrics
    );
    let file = if smoke {
        "BENCH_SMOKE.json"
    } else {
        "BENCH_PR10.json"
    };
    let path = workspace_root().join(file);
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!("wrote {}", path.display());

    if let Some(out) = trace_out {
        let events = fedsc_obs::trace::uninstall();
        let trace = fedsc_obs::export::chrome_trace_json(&events);
        std::fs::write(&out, &trace).expect("write chrome trace JSON");
        println!("wrote {out} ({} span events)", events.len());
    }
}
