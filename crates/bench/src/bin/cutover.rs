//! Spectral cutover measurement: where does the seeded thick-restart block
//! Lanczos solver on the CSR normalized Laplacian start beating a full
//! dense `tred2`/`tql2` factorization of the same Laplacian?
//!
//! This is the measurement behind `fedsc_linalg::eigh::lanczos_beats_dense`
//! (methodology in DESIGN.md §13). For each grid point `(n, k)` it builds
//! the deterministic ring-of-blocks instance with `k` blocks of `n / k`
//! nodes, times both backends single-threaded (median of 3), and prints the
//! ratio together with what the shipped predicate decides — so a retune is
//! a rerun plus a constant edit, not an archaeology dig.
//!
//! Run: `cargo run --release -p fedsc-bench --bin cutover`

use fedsc_bench::harness::print_header;
use fedsc_bench::instances::ring_block_affinity;
use fedsc_clustering::spectral::kernel_seeds;
use fedsc_graph::laplacian::normalized_laplacian;
use fedsc_graph::sparse::sparse_normalized_laplacian;
use fedsc_linalg::eigh::{eigh, lanczos_beats_dense};
use fedsc_linalg::thick_restart::{thick_restart_smallest, ThickRestartOptions};
use fedsc_obs::Stopwatch;

/// Median wall time of 3 runs, in nanoseconds.
fn median3(mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..3)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[1]
}

fn main() {
    print_header(&[
        ("n", 6),
        ("k", 4),
        ("dense_ns", 12),
        ("lanczos_ns", 12),
        ("dense/lanczos", 14),
        ("predicate", 10),
    ]);
    for &n in &[256usize, 384, 512, 768, 1024, 1536] {
        for &k in &[8usize, 16, 32, 64, 96] {
            let per = n / k;
            if per < 4 {
                continue;
            }
            let w = ring_block_affinity(k, per);
            let nn = k * per;
            let dense_lap = normalized_laplacian(&w.to_graph());
            let csr_lap = sparse_normalized_laplacian(&w);
            let t_dense = median3(|| {
                let _ = std::hint::black_box(eigh(&dense_lap).expect("dense eigh"));
            });
            let t_iter = median3(|| {
                let opts = ThickRestartOptions {
                    seeds: kernel_seeds(&w),
                    ..ThickRestartOptions::default()
                };
                let _ = std::hint::black_box(
                    thick_restart_smallest(&csr_lap, k, &opts).expect("thick restart"),
                );
            });
            let ratio = t_dense as f64 / t_iter.max(1) as f64;
            println!(
                "{nn:>6}  {k:>4}  {t_dense:>12}  {t_iter:>12}  {ratio:>14.2}  {:>10}",
                if lanczos_beats_dense(nn, k) {
                    "lanczos"
                } else {
                    "dense"
                }
            );
        }
    }
}
