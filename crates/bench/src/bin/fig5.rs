//! Thin wrapper: see `fedsc_bench::figures::fig5`.

fn main() {
    fedsc_bench::figures::fig5::run();
}
