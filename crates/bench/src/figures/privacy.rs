//! Privacy–utility tradeoff of differentially private Fed-SC — the paper's
//! Section VII future-work direction, measured: sweep the per-sample
//! privacy budget `epsilon` of the Gaussian mechanism on the uplink and
//! report clustering accuracy plus the composed per-device `(eps, delta)`
//! cost.
//!
//! Expected shape: accuracy is flat at large epsilon (weak privacy),
//! degrades through a transition band, and collapses to chance at strong
//! privacy — the classical DP utility curve.

use crate::harness::print_header;
use fedsc::{CentralBackend, ClusterCountPolicy, FedSc, FedScConfig};
use fedsc_clustering::{clustering_accuracy, normalized_mutual_information};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_federated::privacy::DpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the privacy-utility sweep.
pub fn run() {
    let l = 10usize;
    let l_prime = 2usize;
    let z = 60usize;
    let mut rng = StdRng::seed_from_u64(0xd9);
    let owners = (z * l_prime).div_ceil(l).max(1);
    let ds = generate(&SyntheticConfig::paper(l, 10 * owners), &mut rng);
    let fed = partition_dataset(&ds.data, z, Partition::NonIid { l_prime }, &mut rng);
    let truth = fed.global_truth();

    println!("# Privacy-utility tradeoff (Gaussian mechanism on the uplink)");
    println!("# synthetic: L = {l}, Non-IID-{l_prime}, Z = {z}, delta = 1e-5/sample");
    print_header(&[
        ("epsilon", 9),
        ("sigma", 9),
        ("ACC%", 8),
        ("NMI%", 8),
        ("device eps", 11),
    ]);

    // epsilon = inf row: no DP at all, the baseline.
    {
        let mut cfg = FedScConfig::new(l, CentralBackend::Ssc);
        cfg.cluster_count = ClusterCountPolicy::Fixed(l_prime);
        let out = FedSc::new(cfg).run(&fed).expect("Fed-SC run");
        println!(
            "{:>9}  {:>9}  {:>8.2}  {:>8.2}  {:>11}",
            "inf",
            "0",
            clustering_accuracy(&truth, &out.predictions),
            normalized_mutual_information(&truth, &out.predictions),
            "-"
        );
    }
    for &eps in &[1024.0, 512.0, 256.0, 128.0, 64.0, 16.0, 4.0, 1.0] {
        let dp = DpConfig::new(eps, 1e-5);
        let mut cfg = FedScConfig::new(l, CentralBackend::Ssc);
        cfg.cluster_count = ClusterCountPolicy::Fixed(l_prime);
        cfg.dp = Some(dp);
        let out = FedSc::new(cfg).run(&fed).expect("Fed-SC run");
        println!(
            "{eps:>9.1}  {:>9.3}  {:>8.2}  {:>8.2}  {:>11.1}",
            dp.sigma(),
            clustering_accuracy(&truth, &out.predictions),
            normalized_mutual_information(&truth, &out.predictions),
            out.privacy.max_device_epsilon,
        );
    }
}
