//! Figure 4: ACC and NMI of Fed-SC (SSC), Fed-SC (TSC), and k-FED as
//! functions of the number of devices `Z`, under IID (L' = L = 20),
//! Non-IID-10, and Non-IID-2 partitions; synthetic data (L = 20 subspaces,
//! d = 5, n = 20).
//!
//! Expected shape (paper): both Fed-SC variants far above k-FED everywhere;
//! Fed-SC (TSC) below Fed-SC (SSC) at small Z, converging at large Z;
//! non-IID partitions beat IID for every federated method.

use crate::harness::{cell, pick, print_header, scale};
use crate::methods::{run_fed_sc_fixed, run_kfed};
use fedsc::CentralBackend;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Figure 4: ACC/NMI of the federated methods vs the number of devices under IID / Non-IID-10 / Non-IID-2 partitions.
pub fn run() {
    let s = scale();
    let l = 20usize;
    let z_grid = pick(s, &[40, 80, 140], &[200, 400, 800, 1200, 1600, 2000]);
    // Points per (cluster, owner-device) pair: every owner gets this many
    // points of each of its clusters (>= d + 1 = 6 for the theory).
    let m = 7usize;
    let partitions: [(&str, usize); 3] = [("IID", l), ("Non-IID-10", 10), ("Non-IID-2", 2)];

    println!("# Figure 4: federated methods vs number of devices Z");
    println!("# synthetic: L = {l}, d = 5, n = 20, {m} points per cluster-owner");
    print_header(&[
        ("partition", 10),
        ("Z", 6),
        ("method", 14),
        ("ACC%", 8),
        ("NMI%", 8),
        ("T(s)", 8),
    ]);

    for (pname, l_prime) in partitions {
        for &z in &z_grid {
            let mut rng = StdRng::seed_from_u64(0xf14 + z as u64);
            // Owners per cluster ~ Z * L' / L; total points per cluster.
            let owners = (z * l_prime).div_ceil(l).max(1);
            let per_cluster = m * owners;
            let ds = generate(&SyntheticConfig::paper(l, per_cluster), &mut rng);
            let part = if l_prime >= l {
                Partition::Iid
            } else {
                Partition::NonIid { l_prime }
            };
            let fed = partition_dataset(&ds.data, z, part, &mut rng);

            let results = [
                run_fed_sc_fixed(&fed, l, l_prime, CentralBackend::Ssc, 0xf14, false),
                run_fed_sc_fixed(
                    &fed,
                    l,
                    l_prime,
                    CentralBackend::Tsc { q: None },
                    0xf14,
                    false,
                ),
                run_kfed(&fed, l, l_prime, None, 0xf14),
            ];
            for r in results {
                println!(
                    "{pname:>10}  {z:>6}  {:>14}  {:>8}  {:>8}  {:>8}",
                    r.name,
                    cell(r.acc, 2),
                    cell(r.nmi, 2),
                    cell(r.secs(), 2),
                );
            }
        }
        println!();
    }
}
