//! Paper figure/table harnesses, callable from both the per-figure
//! binaries and the `figures` bench target.

pub mod ablation;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod privacy;
pub mod table3;
pub mod table4;
