//! Table IV: clustering accuracy of the federated methods on the surrogate
//! high-dimensional datasets as the number of local clusters L' grows
//! (L' in {2, 4, 6, 8, 10}).
//!
//! Expected shape (paper): every federated method degrades as L' grows
//! (statistical heterogeneity shrinks); Fed-SC stays on top throughout;
//! k-FED + PCA is uniformly poor.

use crate::harness::{cell, pick, print_header, scale, Scale};
use crate::methods::{run_fed_sc_with, run_kfed};
use fedsc::{BasisDim, CentralBackend, ClusterCountPolicy, FedScConfig};
use fedsc_data::realworld::{generate, SurrogateSpec};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Table IV: federated-method accuracy vs the number of local clusters L'.
pub fn run() {
    let s = scale();
    let (specs, z) = match s {
        Scale::Quick => (
            vec![
                SurrogateSpec::emnist_like(0.06)
                    .with_classes(12)
                    .with_class_size(90),
                SurrogateSpec::coil100_like(0.1)
                    .with_classes(16)
                    .with_class_size(70),
            ],
            40usize,
        ),
        Scale::Full => (
            vec![
                SurrogateSpec::emnist_like(0.5),
                SurrogateSpec::coil100_like(0.5),
            ],
            400usize,
        ),
    };
    let lprime_grid = pick(s, &[2usize, 4, 6, 8, 10], &[2usize, 4, 6, 8, 10]);

    for spec in specs {
        let l = spec.num_classes;
        println!(
            "\n# Table IV — {} (L = {l}, Z = {z}): ACC% vs L'",
            spec.name
        );
        let mut header: Vec<(&str, usize)> = vec![("method", 16)];
        let cols: Vec<String> = lprime_grid.iter().map(|lp| format!("L'={lp}")).collect();
        for c in &cols {
            header.push((c.as_str(), 8));
        }
        print_header(&header);

        type MethodRunner = Box<dyn Fn(&fedsc_federated::FederatedDataset, usize) -> f64>;
        let methods: Vec<(&str, MethodRunner)> = vec![
            (
                "Fed-SC (SSC)",
                Box::new(move |fed, lp| {
                    let mut c = FedScConfig::new(l, CentralBackend::Ssc);
                    c.cluster_count = ClusterCountPolicy::Fixed(lp + 1);
                    c.basis_dim = BasisDim::Fixed(1);
                    run_fed_sc_with(fed, c, false).acc
                }),
            ),
            (
                "Fed-SC (TSC)",
                Box::new(move |fed, lp| {
                    let mut c = FedScConfig::new(l, CentralBackend::Tsc { q: None });
                    c.cluster_count = ClusterCountPolicy::Fixed(lp + 1);
                    c.basis_dim = BasisDim::Fixed(1);
                    run_fed_sc_with(fed, c, false).acc
                }),
            ),
            (
                "k-FED",
                Box::new(move |fed, lp| run_kfed(fed, l, lp, None, 1).acc),
            ),
            (
                "k-FED + PCA-10",
                Box::new(move |fed, lp| run_kfed(fed, l, lp, Some(10), 1).acc),
            ),
            (
                "k-FED + PCA-100",
                Box::new(move |fed, lp| run_kfed(fed, l, lp, Some(100), 1).acc),
            ),
        ];

        // Pre-build one partition per L' so all methods see the same split.
        let feds: Vec<_> = lprime_grid
            .iter()
            .map(|&lp| {
                let mut rng = StdRng::seed_from_u64(0x7ab4 + lp as u64);
                let ds = generate(&spec, &mut rng);
                (
                    lp,
                    partition_dataset(&ds.data, z, Partition::NonIid { l_prime: lp }, &mut rng),
                )
            })
            .collect();

        for (name, runner) in methods {
            print!("{name:>16}");
            for (lp, fed) in &feds {
                print!("  {:>8}", cell(runner(fed, *lp), 2));
            }
            println!();
        }
    }
}
