//! Figure 6: Fed-SC (SSC) and Fed-SC (TSC) against the five centralized SC
//! baselines (SSC, TSC, SSC-OMP, EnSC, NSN) on synthetic data with strong
//! heterogeneity (L = 50, L' = 3), as a function of Z. Reports ACC, NMI,
//! CONN (min and mean), and running time.
//!
//! Expected shape (paper): Fed-SC (SSC) leads in accuracy; Fed-SC (TSC)
//! climbs with Z; Fed-SC improves CONN over centralized SSC/TSC; Fed-SC
//! time is far below the centralized methods and the gap widens with Z.

use crate::harness::{cell, pick, print_header, scale};
use crate::methods::{run_centralized, run_fed_sc_fixed, MethodResult};
use fedsc::CentralBackend;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_subspace::{Ensc, Nsn, Ssc, SscOmp, Tsc};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Figure 6: Fed-SC vs the centralized SC baselines (ACC/NMI/CONN/time) as a function of Z.
pub fn run() {
    let s = scale();
    // Quick mode halves the paper's L = 50 so the Z range where the server
    // has enough samples per subspace (Z_l >= d + 1) stays laptop-sized;
    // full mode uses the paper's setting.
    let l = match s {
        crate::harness::Scale::Quick => 25usize,
        crate::harness::Scale::Full => 50usize,
    };
    let l_prime = 3usize;
    let m = 10usize;
    let z_grid = pick(s, &[60, 100, 160], &[200, 400, 800, 1600]);

    println!("# Figure 6: Fed-SC vs centralized SC (L = {l}, L' = {l_prime})");
    print_header(&[
        ("Z", 6),
        ("method", 14),
        ("ACC%", 8),
        ("NMI%", 8),
        ("CONN(c)", 9),
        ("CONN(cbar)", 11),
        ("T(s)", 9),
    ]);

    for &z in &z_grid {
        let mut rng = StdRng::seed_from_u64(0xf16 + z as u64);
        let owners = (z * l_prime).div_ceil(l).max(1);
        let ds = generate(&SyntheticConfig::paper(l, m * owners), &mut rng);
        let fed = partition_dataset(&ds.data, z, Partition::NonIid { l_prime }, &mut rng);
        let pooled = fed.pooled();
        let n_total = pooled.labels.len();
        // CONN is O(N^2)-dense; compute it at every quick-scale size and
        // skip only at full-scale giants.
        let conn = n_total <= 3000;

        let mut results: Vec<MethodResult> = vec![
            run_fed_sc_fixed(&fed, l, l_prime, CentralBackend::Ssc, 0xf16, conn),
            run_fed_sc_fixed(
                &fed,
                l,
                l_prime,
                CentralBackend::Tsc { q: None },
                0xf16,
                conn,
            ),
            run_centralized(&Ssc::default(), &pooled, l, 0xf16, conn),
            run_centralized(
                &Tsc::new(Tsc::centralized_q(n_total, l)),
                &pooled,
                l,
                0xf16,
                conn,
            ),
            run_centralized(&SscOmp::with_sparsity(8), &pooled, l, 0xf16, conn),
            run_centralized(&Ensc::default(), &pooled, l, 0xf16, conn),
            run_centralized(&Nsn::new(8, 5), &pooled, l, 0xf16, conn),
        ];
        for r in results.drain(..) {
            println!(
                "{z:>6}  {:>14}  {:>8}  {:>8}  {:>9}  {:>11}  {:>9}",
                r.name,
                cell(r.acc, 2),
                cell(r.nmi, 2),
                cell(r.conn_min, 4),
                cell(r.conn_mean, 4),
                cell(r.secs(), 3),
            );
        }
        println!();
    }
}
