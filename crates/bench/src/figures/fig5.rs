//! Figure 5: clustering accuracy of Fed-SC (SSC) and Fed-SC (TSC) as a
//! function of the heterogeneity ratio L'/L and the number of subspaces L,
//! at fixed Z (paper: 400). Printed as one heatmap per method (rows = L,
//! columns = L'/L; brighter/larger = better).
//!
//! Expected shape (paper): accuracy decreases as L'/L grows (less
//! heterogeneity) and as L grows; Fed-SC (TSC) additionally degrades at
//! very small L' (too few samples per subspace for its q-NN graph).

use crate::harness::{pick, scale, Scale};
use crate::methods::run_fed_sc_fixed;
use fedsc::CentralBackend;
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Figure 5: Fed-SC accuracy heatmaps vs the ratio L'/L and the number of subspaces L.
pub fn run() {
    let s = scale();
    let z = match s {
        Scale::Quick => 60,
        Scale::Full => 400,
    };
    let l_grid = pick(s, &[10, 20, 30], &[10, 20, 30, 40, 50, 60]);
    let ratio_grid = pick(
        s,
        &[0.15, 0.4, 1.0],
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    );
    let m = 6usize;

    println!("# Figure 5: Fed-SC accuracy vs L'/L and L (Z = {z})");
    for (name, backend) in [
        ("Fed-SC (SSC)", CentralBackend::Ssc),
        ("Fed-SC (TSC)", CentralBackend::Tsc { q: None }),
    ] {
        println!("\n## {name}: rows = L, cols = L'/L");
        print!("{:>6}", "L\\L'/L");
        for r in &ratio_grid {
            print!("  {r:>6.2}");
        }
        println!();
        for &l in &l_grid {
            print!("{l:>6}");
            for &ratio in &ratio_grid {
                let l_prime = ((l as f64 * ratio).round() as usize).clamp(1, l);
                let mut rng = StdRng::seed_from_u64(0xf15 + (l * 1000) as u64 + l_prime as u64);
                let owners = (z * l_prime).div_ceil(l).max(1);
                let ds = generate(&SyntheticConfig::paper(l, m * owners), &mut rng);
                let part = if l_prime >= l {
                    Partition::Iid
                } else {
                    Partition::NonIid { l_prime }
                };
                let fed = partition_dataset(&ds.data, z, part, &mut rng);
                let r = run_fed_sc_fixed(&fed, l, l_prime, backend, 0xf15, false);
                print!("  {:>6.1}", r.acc);
            }
            println!();
        }
    }
}
