//! Table III: performance comparison on the high-dimensional surrogate
//! datasets (EMNIST-like scatter features, augmented-COIL100-like), with
//! `2 <= L^(z) <= 4` per device: ACC, NMI, CONN (mean), and running time
//! for Fed-SC (SSC/TSC), k-FED (+PCA-10/100), and the five centralized SC
//! baselines.
//!
//! Expected shape (paper): both Fed-SC variants lead by a wide margin;
//! k-FED is mid-pack, k-FED + PCA collapses (local PCA frames are
//! incompatible across devices); centralized SC trails Fed-SC because each
//! device's 2-4-cluster sub-problem is much easier than the global one;
//! Fed-SC runs orders of magnitude faster than centralized SC.

use crate::harness::{cell, print_header, scale, Scale};
use crate::methods::{run_centralized, run_fed_sc_with, run_kfed, MethodResult};
use fedsc::{BasisDim, CentralBackend, ClusterCountPolicy, FedScConfig};
use fedsc_data::realworld::{generate, SurrogateSpec};
use fedsc_federated::partition::{partition_dataset, Partition};
use fedsc_subspace::{Ensc, Nsn, Ssc, SscOmp, Tsc};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Table III: all methods on the high-dimensional surrogate datasets (ACC/NMI/CONN/time).
pub fn run() {
    let s = scale();
    // (spec, devices): quick mode shrinks ambient dim, class sizes, and
    // device count; the paper uses Z = 400.
    let (specs, z) = match s {
        Scale::Quick => (
            vec![
                SurrogateSpec::emnist_like(0.06)
                    .with_classes(12)
                    .with_class_size(90),
                SurrogateSpec::coil100_like(0.1)
                    .with_classes(16)
                    .with_class_size(70),
            ],
            40usize,
        ),
        Scale::Full => (
            vec![
                SurrogateSpec::emnist_like(0.5),
                SurrogateSpec::coil100_like(0.5),
            ],
            400usize,
        ),
    };
    // The paper draws each device's cluster count from [2, 4]; our
    // partitioner takes one L', so we use the midpoint 3 and report it.
    let l_prime = 3usize;

    for spec in specs {
        let mut rng = StdRng::seed_from_u64(0x7ab3);
        let ds = generate(&spec, &mut rng);
        let l = spec.num_classes;
        let fed = partition_dataset(&ds.data, z, Partition::NonIid { l_prime }, &mut rng);
        let pooled = fed.pooled();
        let n_total = pooled.labels.len();
        let conn = n_total <= 3000;

        println!(
            "\n# Table III — {} (n = {}, L = {l}, N = {n_total}, Z = {z}, L^(z) = {l_prime})",
            spec.name, spec.ambient_dim
        );
        print_header(&[
            ("method", 16),
            ("ACC%", 8),
            ("NMI%", 8),
            ("CONN", 8),
            ("T(s)", 9),
        ]);

        // Fed-SC with the paper's real-data settings: fixed r^(z) upper
        // bound (max L^(z)) and d_t = 1 bases.
        let fed_cfg = |central| {
            let mut c = FedScConfig::new(l, central);
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime + 1);
            c.basis_dim = BasisDim::Fixed(1);
            c.seed = 0x7ab3;
            c
        };
        let mut results: Vec<MethodResult> = vec![
            run_fed_sc_with(&fed, fed_cfg(CentralBackend::Ssc), conn),
            run_fed_sc_with(&fed, fed_cfg(CentralBackend::Tsc { q: None }), conn),
            run_kfed(&fed, l, l_prime, None, 0x7ab3),
            run_kfed(&fed, l, l_prime, Some(10), 0x7ab3),
            run_kfed(&fed, l, l_prime, Some(100), 0x7ab3),
            run_centralized(&Ssc::default(), &pooled, l, 0x7ab3, conn),
            run_centralized(&SscOmp::with_sparsity(8), &pooled, l, 0x7ab3, conn),
            run_centralized(&Ensc::default(), &pooled, l, 0x7ab3, conn),
            run_centralized(
                &Tsc::new(Tsc::centralized_q(n_total, l)),
                &pooled,
                l,
                0x7ab3,
                conn,
            ),
            run_centralized(&Nsn::new(8, 6), &pooled, l, 0x7ab3, conn),
        ];
        for r in results.drain(..) {
            println!(
                "{:>16}  {:>8}  {:>8}  {:>8}  {:>9}",
                r.name,
                cell(r.acc, 2),
                cell(r.nmi, 2),
                cell(r.conn_mean, 4),
                cell(r.secs(), 3),
            );
        }
    }
}
