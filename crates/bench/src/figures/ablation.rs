//! Quality ablations for the Fed-SC design choices DESIGN.md calls out
//! (complementing the Criterion timing ablations in `benches/`):
//!
//! * local cluster-count policy — plain eigengap (paper Eq. (3)),
//!   regularized relative eigengap, fixed upper bound;
//! * samples per local cluster — 1 (the paper) vs 3 vs 5;
//! * local basis dimension — automatic rank vs fixed `d_t = 1`;
//! * central backend — SSC vs TSC (also visible in every figure);
//! * Lasso backend agreement — CD vs ADMM codes on the same instance.

use crate::harness::print_header;
use crate::methods::run_fed_sc_with;
use fedsc::{BasisDim, CentralBackend, ClusterCountPolicy, FedScConfig};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, FederatedDataset, Partition};
use fedsc_linalg::Matrix;
use fedsc_sparse::admm::{AdmmLasso, AdmmOptions};
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(l: usize, l_prime: usize, z: usize, m: usize, seed: u64) -> FederatedDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let owners = (z * l_prime).div_ceil(l).max(1);
    let ds = generate(&SyntheticConfig::paper(l, m * owners), &mut rng);
    partition_dataset(&ds.data, z, Partition::NonIid { l_prime }, &mut rng)
}

/// Runs the quality ablations over Fed-SC design choices.
pub fn run() {
    let l = 12usize;
    let l_prime = 2usize;
    let z = 72usize;
    let fed = build(l, l_prime, z, 8, 0xab1);

    println!("# Ablation: Fed-SC design choices (L = {l}, L' = {l_prime}, Z = {z})");
    print_header(&[("variant", 34), ("ACC%", 8), ("NMI%", 8), ("T(s)", 8)]);

    let base = || FedScConfig::new(l, CentralBackend::Ssc);
    let variants: Vec<(&str, FedScConfig)> = vec![
        ("cluster-count: eigengap (Eq. 3)", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Eigengap {
                max: Some(2 * l),
                relative: false,
            };
            c
        }),
        ("cluster-count: relative eigengap", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Eigengap {
                max: Some(2 * l),
                relative: true,
            };
            c
        }),
        ("cluster-count: fixed L'", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c
        }),
        ("samples/cluster: 1 (paper)", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.samples_per_cluster = 1;
            c
        }),
        ("samples/cluster: 3", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.samples_per_cluster = 3;
            c
        }),
        ("samples/cluster: 5", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.samples_per_cluster = 5;
            c
        }),
        ("basis dim: auto rank", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.basis_dim = BasisDim::Auto {
                rel_tol: 1e-6,
                max_dim: 32,
            };
            c
        }),
        ("basis dim: fixed d_t = 1", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.basis_dim = BasisDim::Fixed(1);
            c
        }),
        ("central: SSC", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c
        }),
        ("central: TSC (paper q rule)", {
            let mut c = FedScConfig::new(l, CentralBackend::Tsc { q: None });
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c
        }),
        ("local: SSC (paper)", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c
        }),
        ("local: TSC q=4 (needs uniformness)", {
            let mut c = base();
            c.cluster_count = ClusterCountPolicy::Fixed(l_prime);
            c.local = fedsc::LocalBackend::Tsc { q: 4 };
            c
        }),
    ];
    for (name, cfg) in variants {
        let r = run_fed_sc_with(&fed, cfg, false);
        println!(
            "{name:>34}  {:>8.2}  {:>8.2}  {:>8.3}",
            r.acc,
            r.nmi,
            r.secs()
        );
    }

    // Lasso backend agreement: CD and ADMM optimize the same objective, so
    // their codes must agree to solver tolerance on a shared instance.
    println!("\n# Lasso backend agreement (CD vs ADMM, 40-point instance)");
    let mut rng = StdRng::seed_from_u64(0xab2);
    let ds = generate(&SyntheticConfig::paper(4, 10), &mut rng);
    let x: &Matrix = &ds.data.data;
    let gram = x.gram();
    let cd = LassoSolver::new(&gram, LassoOptions::default());
    let mut worst = 0.0f64;
    for i in 0..x.cols() {
        let lambda = ssc_lambda(gram.col(i), i, 50.0);
        let c1 = cd
            .solve(gram.col(i), lambda, i)
            .expect("cd lasso solve")
            .to_dense();
        let admm = AdmmLasso::new(&gram, lambda, AdmmOptions::default()).expect("gram is square");
        let c2 = admm
            .solve(gram.col(i), i)
            .expect("admm lasso solve")
            .to_dense();
        let diff = c1
            .iter()
            .zip(&c2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        worst = worst.max(diff);
    }
    println!("max coefficient disagreement over all points: {worst:.2e}");
}
