//! Figure 7: robustness to communication noise — clustering accuracy of
//! Fed-SC (SSC) and Fed-SC (TSC) as a function of the noise level `delta`
//! and the number of devices Z. Each uploaded sample is perturbed by
//! Gaussian noise of variance `delta / sqrt(r^(z))` (the paper's model).
//!
//! Expected shape (paper): accuracy stays high over a wide range of delta
//! and degrades gracefully at the largest noise levels; more devices help.

use crate::harness::{pick, scale};
use crate::methods::run_fed_sc_with;
use fedsc::{CentralBackend, FedScConfig};
use fedsc_data::synthetic::{generate, SyntheticConfig};
use fedsc_federated::partition::{partition_dataset, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Figure 7: Fed-SC accuracy heatmaps vs the communication-noise level delta and Z.
pub fn run() {
    let s = scale();
    let l = 20usize;
    let l_prime = 2usize;
    let m = 7usize;
    let z_grid = pick(s, &[60, 120, 200], &[200, 400, 800, 1600]);
    let delta_grid = pick(
        s,
        &[0.0, 0.1, 0.5, 2.0],
        &[0.0, 0.05, 0.1, 0.5, 1.0, 2.0, 4.0],
    );

    println!("# Figure 7: Fed-SC accuracy vs communication noise delta and Z");
    println!("# synthetic: L = {l}, d = 5, n = 20, Non-IID-{l_prime}");
    for (name, backend) in [
        ("Fed-SC (SSC)", CentralBackend::Ssc),
        ("Fed-SC (TSC)", CentralBackend::Tsc { q: None }),
    ] {
        println!("\n## {name}: rows = Z, cols = delta");
        print!("{:>8}", "Z\\delta");
        for d in &delta_grid {
            print!("  {d:>6.3}");
        }
        println!();
        for &z in &z_grid {
            print!("{z:>8}");
            for &delta in &delta_grid {
                let mut rng = StdRng::seed_from_u64(0xf17 + z as u64);
                let owners = (z * l_prime).div_ceil(l).max(1);
                let ds = generate(&SyntheticConfig::paper(l, m * owners), &mut rng);
                let fed = partition_dataset(&ds.data, z, Partition::NonIid { l_prime }, &mut rng);
                let mut cfg = FedScConfig::new(l, backend);
                cfg.cluster_count = fedsc::ClusterCountPolicy::Fixed(l_prime);
                cfg.channel.noise_delta = delta;
                cfg.seed = 0xf17;
                let r = run_fed_sc_with(&fed, cfg, false);
                print!("  {:>6.1}", r.acc);
            }
            println!();
        }
    }
}
