//! `cargo bench` entry point that regenerates every paper table and figure
//! at the current `FEDSC_SCALE` (default `quick`).
//!
//! Each harness prints the same rows/series the corresponding figure/table
//! in the paper reports; see `EXPERIMENTS.md` for paper-vs-measured notes.

use fedsc_bench::figures;

fn main() {
    let scale = std::env::var("FEDSC_SCALE").unwrap_or_else(|_| "quick".into());
    let sections: [(&str, fn()); 8] = [
        ("fig4", figures::fig4::run),
        ("fig5", figures::fig5::run),
        ("fig6", figures::fig6::run),
        ("fig7", figures::fig7::run),
        ("table3", figures::table3::run),
        ("table4", figures::table4::run),
        ("ablation", figures::ablation::run),
        ("privacy", figures::privacy::run),
    ];
    for (name, run) in sections {
        println!("\n=============================================================");
        println!("==> regenerating {name} (FEDSC_SCALE = {scale})");
        println!("=============================================================");
        run();
    }
}
