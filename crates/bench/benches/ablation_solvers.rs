//! Timing ablations for the design choices DESIGN.md calls out:
//!
//! * Lasso backend — working-set coordinate descent vs ADMM (same Eq. (2)
//!   objective; the paper swapped SPAMS CD in for ADMM for exactly this
//!   reason).
//! * Spectral solver — dense `tred2`/`tql2` vs deflated Lanczos at the
//!   pooled-sample sizes the central server actually sees.

use criterion::{criterion_group, criterion_main, Criterion};
use fedsc_graph::laplacian::normalized_laplacian;
use fedsc_linalg::eigh::eigh;
use fedsc_linalg::lanczos::lanczos_smallest;
use fedsc_linalg::random::{random_orthonormal_basis, sample_on_subspace};
use fedsc_linalg::Matrix;
use fedsc_sparse::admm::{AdmmLasso, AdmmOptions};
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver};
use fedsc_subspace::{Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn union_of_subspaces(n: usize, d: usize, l: usize, per: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = Vec::new();
    for _ in 0..l {
        let basis = random_orthonormal_basis(&mut rng, n, d);
        for _ in 0..per {
            cols.push(sample_on_subspace(&mut rng, &basis));
        }
    }
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    Matrix::from_columns(&refs).expect("bench setup")
}

fn bench_lasso_backends(c: &mut Criterion) {
    let data = union_of_subspaces(20, 5, 8, 50, 1);
    let gram = data.gram();
    let lambda = ssc_lambda(gram.col(0), 0, 50.0);
    let mut g = c.benchmark_group("ablation_lasso_backend");
    g.sample_size(10);
    g.bench_function("coordinate_descent_20pts", |b| {
        let solver = LassoSolver::new(&gram, LassoOptions::default());
        b.iter(|| {
            for i in 0..20 {
                let li = ssc_lambda(gram.col(i), i, 50.0);
                let _ = black_box(solver.solve(gram.col(i), li, i));
            }
        })
    });
    g.bench_function("admm_20pts", |b| {
        // ADMM factors (lambda G + rho I) once; reuse across points with a
        // representative lambda, matching how a production ADMM-SSC batches.
        let admm = AdmmLasso::new(&gram, lambda, AdmmOptions::default()).expect("bench setup");
        b.iter(|| {
            for i in 0..20 {
                let _ = black_box(admm.solve(gram.col(i), i).expect("bench setup"));
            }
        })
    });
    g.finish();
}

fn bench_spectral_backends(c: &mut Criterion) {
    let data = union_of_subspaces(20, 5, 10, 60, 2);
    let graph = Ssc::default().affinity(&data).expect("bench setup");
    let lap = normalized_laplacian(&graph);
    let mut g = c.benchmark_group("ablation_spectral_backend");
    g.sample_size(10);
    g.bench_function("dense_full_eig_n600", |b| {
        b.iter(|| black_box(eigh(&lap).expect("bench setup")))
    });
    g.bench_function("deflated_lanczos_k10_n600", |b| {
        b.iter(|| black_box(lanczos_smallest(&lap, 10, 50).expect("bench setup")))
    });
    g.finish();
}

criterion_group!(benches, bench_lasso_backends, bench_spectral_backends);
criterion_main!(benches);
