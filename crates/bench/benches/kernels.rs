//! Criterion micro-benchmarks for the numerical kernels every experiment
//! leans on: symmetric eigendecomposition (dense and Lanczos), SVD (Gram
//! and Jacobi backends), the SSC Lasso coordinate descent, OMP, and
//! end-to-end spectral clustering.

use criterion::{criterion_group, criterion_main, Criterion};
use fedsc_clustering::spectral::{spectral_clustering, SpectralOptions};
use fedsc_linalg::eigh::eigh;
use fedsc_linalg::lanczos::lanczos_smallest;
use fedsc_linalg::random::{gaussian_matrix, random_orthonormal_basis, sample_on_subspace};
use fedsc_linalg::svd::{svd_gram, svd_jacobi};
use fedsc_linalg::Matrix;
use fedsc_sparse::lasso::{ssc_lambda, LassoOptions, LassoSolver};
use fedsc_sparse::omp::{omp, OmpOptions};
use fedsc_subspace::{Ssc, SubspaceClusterer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn symmetric_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gaussian_matrix(&mut rng, n, n);
    let mut s = g.add(&g.transpose()).expect("bench setup");
    s.scale(0.5);
    s
}

fn union_of_subspaces(n: usize, d: usize, l: usize, per: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = Vec::new();
    for _ in 0..l {
        let basis = random_orthonormal_basis(&mut rng, n, d);
        for _ in 0..per {
            cols.push(sample_on_subspace(&mut rng, &basis));
        }
    }
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    Matrix::from_columns(&refs).expect("bench setup")
}

fn bench_eig(c: &mut Criterion) {
    let a200 = symmetric_matrix(200, 1);
    let a800 = symmetric_matrix(800, 2);
    let mut g = c.benchmark_group("eig");
    g.sample_size(10);
    g.bench_function("dense_tred2_tql2_n200", |b| {
        b.iter(|| black_box(eigh(&a200).expect("bench setup")))
    });
    g.bench_function("lanczos_k10_n800", |b| {
        b.iter(|| black_box(lanczos_smallest(&a800, 10, 50).expect("bench setup")))
    });
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let tall = gaussian_matrix(&mut rng, 500, 40);
    let mut g = c.benchmark_group("svd");
    g.sample_size(20);
    g.bench_function("gram_500x40", |b| {
        b.iter(|| black_box(svd_gram(&tall).expect("bench setup")))
    });
    g.bench_function("jacobi_500x40", |b| {
        b.iter(|| black_box(svd_jacobi(&tall).expect("bench setup")))
    });
    g.finish();
}

fn bench_sparse_coding(c: &mut Criterion) {
    let data = union_of_subspaces(20, 5, 10, 60, 4);
    let gram = data.gram();
    let solver = LassoSolver::new(&gram, LassoOptions::default());
    let mut g = c.benchmark_group("sparse_coding");
    g.sample_size(20);
    g.bench_function("lasso_cd_one_point_n600", |b| {
        b.iter(|| {
            let bvec = gram.col(0);
            let lambda = ssc_lambda(bvec, 0, 50.0);
            black_box(solver.solve(bvec, lambda, 0))
        })
    });
    g.bench_function("omp_one_point_n600", |b| {
        let x = data.col(0).to_vec();
        b.iter(|| {
            black_box(omp(
                &data,
                &x,
                0,
                &OmpOptions {
                    k_max: 8,
                    tol: 1e-6,
                },
            ))
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let data = union_of_subspaces(20, 5, 6, 40, 5);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("ssc_affinity_240pts", |b| {
        b.iter(|| black_box(Ssc::default().affinity(&data).expect("bench setup")))
    });
    let graph = Ssc::default().affinity(&data).expect("bench setup");
    g.bench_function("spectral_clustering_240pts_k6", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            black_box(
                spectral_clustering(&graph, &SpectralOptions::new(6), &mut rng)
                    .expect("bench setup"),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_eig,
    bench_svd,
    bench_sparse_coding,
    bench_pipeline
);
criterion_main!(benches);
