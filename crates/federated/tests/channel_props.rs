//! Property-based tests for the channel layer: codec round trips,
//! quantization error bounds, and communication-cost accounting.

// Test code: a panic is a test failure, so unwrap is the idiom here
// (clippy's allow-unwrap-in-tests does not reach integration-test helpers).
#![allow(clippy::unwrap_used)]

use bytes::Bytes;
use fedsc_federated::channel::{
    account_downlink, transmit_uplink, ChannelConfig, CommStats, DownlinkMessage, UplinkMessage,
};
use fedsc_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 0usize..6).prop_flat_map(|(n, r)| {
        proptest::collection::vec(-1.0f64..1.0, n * r)
            .prop_map(move |data| Matrix::from_col_major(n, r, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uplink_codec_round_trips(m in sample_matrix()) {
        let msg = UplinkMessage { dim: m.rows(), samples: m };
        let decoded = UplinkMessage::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn downlink_codec_round_trips(assignments in proptest::collection::vec(0u32..1000, 0..32)) {
        let msg = DownlinkMessage { assignments };
        let decoded = DownlinkMessage::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_payloads_are_rejected(m in sample_matrix()) {
        let msg = UplinkMessage { dim: m.rows(), samples: m };
        let bytes = msg.encode();
        if bytes.len() > 16 {
            let cut = bytes.slice(0..bytes.len() - 1);
            prop_assert!(UplinkMessage::decode(cut).is_none());
        }
        prop_assert!(UplinkMessage::decode(Bytes::new()).is_none());
    }

    #[test]
    fn quantization_error_within_half_step(m in sample_matrix(), bits in 2u32..16) {
        let cfg = ChannelConfig { bits_per_scalar: bits, noise_delta: 0.0 };
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = transmit_uplink(&cfg, &m, &mut stats, &mut rng);
        let step = 2.0 / (1u64 << bits) as f64;
        for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() <= step + 1e-12, "{a} vs {b} at {bits} bits");
            prop_assert!((-1.0..=1.0).contains(a));
        }
    }

    #[test]
    fn comm_accounting_is_additive(
        shapes in proptest::collection::vec((1usize..6, 0usize..5), 1..6),
        bits in 1u32..64,
        l in 2usize..40,
    ) {
        let cfg = ChannelConfig { bits_per_scalar: bits, noise_delta: 0.0 };
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut expect_up = 0u64;
        let mut expect_down = 0u64;
        let bits_per_label = (usize::BITS - (l.max(2) - 1).leading_zeros()).max(1) as u64;
        for &(n, r) in &shapes {
            let m = Matrix::zeros(n, r);
            transmit_uplink(&cfg, &m, &mut stats, &mut rng);
            account_downlink(&mut stats, r, l);
            expect_up += (n * r) as u64 * bits as u64;
            expect_down += r as u64 * bits_per_label;
        }
        prop_assert_eq!(stats.uplink_bits, expect_up);
        prop_assert_eq!(stats.downlink_bits, expect_down);
        prop_assert_eq!(stats.uplink_messages as usize, shapes.len());
        prop_assert_eq!(stats.total_bits(), expect_up + expect_down);
    }
}
