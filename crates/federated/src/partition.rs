//! Data partitioners: distribute a labeled dataset over `Z` devices.
//!
//! The paper's two regimes (Section VI-A):
//!
//! * **IID** — points are spread uniformly at random; every device tends to
//!   see all `L` clusters (`L' = L`).
//! * **Non-IID(L')** — each device receives points from a random subset of
//!   `L'` clusters, the paper's statistical-heterogeneity knob.
//!
//! Invariants (property-tested): every point is assigned to exactly one
//! device; under Non-IID every device holds at most `L'` distinct clusters;
//! every cluster with points is held by at least one device.

use fedsc_subspace::model::LabeledData;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt as _};

/// How to spread the data over devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Uniformly random point-to-device assignment.
    Iid,
    /// Each device draws `l_prime` clusters; points of a cluster go only to
    /// devices that drew it.
    NonIid {
        /// Number of clusters per device (`L'`).
        l_prime: usize,
    },
}

/// A dataset distributed over devices, with the bookkeeping needed to map
/// local results back to global point indices.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// Per-device local datasets.
    pub devices: Vec<LabeledData>,
    /// `global_index[z][i]` is the index in the original dataset of local
    /// point `i` on device `z`.
    pub global_index: Vec<Vec<usize>>,
    /// Total number of points.
    pub total_points: usize,
    /// Number of global clusters `L` (max label + 1 in the source data).
    pub num_clusters: usize,
}

impl FederatedDataset {
    /// Ground-truth labels flattened in global-point order.
    pub fn global_truth(&self) -> Vec<usize> {
        let mut truth = vec![0usize; self.total_points];
        for (z, dev) in self.devices.iter().enumerate() {
            for (i, &l) in dev.labels.iter().enumerate() {
                truth[self.global_index[z][i]] = l;
            }
        }
        truth
    }

    /// Scatters per-device predicted labels back to global-point order.
    ///
    /// # Panics
    ///
    /// Panics when the prediction shape does not match the partition.
    pub fn scatter_predictions(&self, per_device: &[Vec<usize>]) -> Vec<usize> {
        assert_eq!(
            per_device.len(),
            self.devices.len(),
            "one label vector per device"
        );
        let mut pred = vec![0usize; self.total_points];
        for (z, labels) in per_device.iter().enumerate() {
            assert_eq!(
                labels.len(),
                self.devices[z].len(),
                "device {z} label count"
            );
            for (i, &l) in labels.iter().enumerate() {
                pred[self.global_index[z][i]] = l;
            }
        }
        pred
    }

    /// Per-device ground-truth label vectors (for heterogeneity/active-set
    /// analysis).
    pub fn device_labels(&self) -> Vec<Vec<usize>> {
        self.devices.iter().map(|d| d.labels.clone()).collect()
    }

    /// Reassembles the pooled dataset in global-point order — what a
    /// centralized baseline sees when run on "the same data".
    pub fn pooled(&self) -> LabeledData {
        let rows = self
            .devices
            .iter()
            .map(|d| d.data.rows())
            .max()
            .unwrap_or(0);
        let mut data = fedsc_linalg::Matrix::zeros(rows, self.total_points);
        let mut labels = vec![0usize; self.total_points];
        for (z, dev) in self.devices.iter().enumerate() {
            for (i, &g) in self.global_index[z].iter().enumerate() {
                data.col_mut(g).copy_from_slice(dev.data.col(i));
                labels[g] = dev.labels[i];
            }
        }
        LabeledData { data, labels }
    }
}

/// Splits `data` over `num_devices` devices.
///
/// Devices are guaranteed non-empty as long as there are at least
/// `num_devices` points; clusters present in the data are guaranteed to be
/// held by at least one device under both regimes.
pub fn partition_dataset<R: Rng + ?Sized>(
    data: &LabeledData,
    num_devices: usize,
    scheme: Partition,
    rng: &mut R,
) -> FederatedDataset {
    assert!(num_devices > 0, "need at least one device");
    let n = data.len();
    let num_clusters = data.labels.iter().copied().max().map_or(0, |m| m + 1);
    let assignment: Vec<usize> = match scheme {
        Partition::Iid => {
            // Balanced random assignment: shuffle then deal round-robin.
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(rng);
            let mut a = vec![0usize; n];
            for (slot, &point) in order.iter().enumerate() {
                a[point] = slot % num_devices;
            }
            a
        }
        Partition::NonIid { l_prime } => {
            let l_prime = l_prime.clamp(1, num_clusters.max(1));
            let device_clusters = draw_device_clusters(num_clusters, num_devices, l_prime, rng);
            // owners[l] = devices that drew cluster l.
            let mut owners: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
            for (z, clusters) in device_clusters.iter().enumerate() {
                for &c in clusters {
                    owners[c].push(z);
                }
            }
            let mut a = vec![0usize; n];
            // Per-cluster round-robin over owner devices, on a shuffled
            // point order so device loads stay balanced in distribution.
            let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
            for (i, &l) in data.labels.iter().enumerate() {
                by_cluster[l].push(i);
            }
            for (l, points) in by_cluster.iter_mut().enumerate() {
                if points.is_empty() {
                    continue;
                }
                points.shuffle(rng);
                let devs = &owners[l];
                debug_assert!(!devs.is_empty(), "cluster {l} has no owner");
                for (k, &p) in points.iter().enumerate() {
                    a[p] = devs[k % devs.len()];
                }
            }
            a
        }
    };

    let mut global_index: Vec<Vec<usize>> = vec![Vec::new(); num_devices];
    for (i, &z) in assignment.iter().enumerate() {
        global_index[z].push(i);
    }
    let devices: Vec<LabeledData> = global_index.iter().map(|idx| data.select(idx)).collect();
    FederatedDataset {
        devices,
        global_index,
        total_points: n,
        num_clusters,
    }
}

/// Draws `l_prime` distinct clusters per device, then repairs coverage so
/// every cluster is owned by at least one device (swapping into devices that
/// own a multiply-covered cluster).
fn draw_device_clusters<R: Rng + ?Sized>(
    num_clusters: usize,
    num_devices: usize,
    l_prime: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let mut all: Vec<usize> = (0..num_clusters).collect();
    let mut device_clusters: Vec<Vec<usize>> = (0..num_devices)
        .map(|_| {
            all.shuffle(rng);
            let mut picks = all[..l_prime].to_vec();
            picks.sort_unstable();
            picks
        })
        .collect();
    // Coverage repair.
    let mut count = vec![0usize; num_clusters];
    for clusters in &device_clusters {
        for &c in clusters {
            count[c] += 1;
        }
    }
    for orphan in 0..num_clusters {
        if count[orphan] > 0 {
            continue;
        }
        // Prefer swapping into a slot holding a multiply-covered cluster so
        // the L' cap is preserved.
        let mut placed = false;
        'devices: for z in 0..num_devices {
            if device_clusters[z].contains(&orphan) {
                continue;
            }
            for slot in 0..device_clusters[z].len() {
                let old = device_clusters[z][slot];
                if count[old] > 1 {
                    count[old] -= 1;
                    device_clusters[z][slot] = orphan;
                    device_clusters[z].sort_unstable();
                    count[orphan] += 1;
                    placed = true;
                    break 'devices;
                }
            }
        }
        if !placed {
            // Not enough slots (Z * L' < L): coverage beats the cap — add
            // the orphan to a random device.
            let z = rng.random_range(0..num_devices);
            device_clusters[z].push(orphan);
            device_clusters[z].sort_unstable();
            count[orphan] += 1;
        }
    }
    device_clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsc_subspace::SubspaceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(l: usize, per: usize, rng: &mut StdRng) -> LabeledData {
        let model = SubspaceModel::random(rng, 10, 2, l);
        model.sample_dataset(rng, &vec![per; l], 0.0)
    }

    #[test]
    fn every_point_assigned_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = dataset(4, 10, &mut rng);
        for scheme in [Partition::Iid, Partition::NonIid { l_prime: 2 }] {
            let fed = partition_dataset(&data, 5, scheme, &mut rng);
            let mut seen = [false; 40];
            for idx in &fed.global_index {
                for &i in idx {
                    assert!(!seen[i], "point {i} assigned twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            assert_eq!(fed.total_points, 40);
        }
    }

    #[test]
    fn non_iid_caps_clusters_per_device() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = dataset(6, 20, &mut rng);
        let fed = partition_dataset(&data, 8, Partition::NonIid { l_prime: 2 }, &mut rng);
        for dev in &fed.devices {
            assert!(
                dev.num_classes() <= 2,
                "device holds {} classes",
                dev.num_classes()
            );
        }
    }

    #[test]
    fn every_cluster_survives_partitioning() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = dataset(10, 5, &mut rng);
        let fed = partition_dataset(&data, 4, Partition::NonIid { l_prime: 2 }, &mut rng);
        let mut present = vec![false; 10];
        for dev in &fed.devices {
            for &l in &dev.labels {
                present[l] = true;
            }
        }
        assert!(
            present.iter().all(|&p| p),
            "a cluster vanished: {present:?}"
        );
    }

    #[test]
    fn iid_spreads_clusters_widely() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = dataset(3, 40, &mut rng);
        let fed = partition_dataset(&data, 4, Partition::Iid, &mut rng);
        // With 40 points/cluster over 4 devices, each device should see all
        // 3 clusters with overwhelming probability.
        for dev in &fed.devices {
            assert_eq!(dev.num_classes(), 3);
        }
    }

    #[test]
    fn truth_round_trips_through_scatter() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = dataset(4, 8, &mut rng);
        let fed = partition_dataset(&data, 3, Partition::NonIid { l_prime: 2 }, &mut rng);
        let truth = fed.global_truth();
        assert_eq!(truth, data.labels);
        // Scattering the per-device truths reproduces the global truth.
        let per_device: Vec<Vec<usize>> = fed.devices.iter().map(|d| d.labels.clone()).collect();
        assert_eq!(fed.scatter_predictions(&per_device), truth);
    }

    #[test]
    fn pooled_reconstructs_original() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = dataset(3, 7, &mut rng);
        let fed = partition_dataset(&data, 4, Partition::NonIid { l_prime: 2 }, &mut rng);
        let pooled = fed.pooled();
        assert_eq!(pooled.labels, data.labels);
        for j in 0..data.len() {
            assert_eq!(pooled.data.col(j), data.data.col(j));
        }
    }

    #[test]
    fn l_prime_larger_than_l_degrades_to_iid_style() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = dataset(2, 10, &mut rng);
        let fed = partition_dataset(&data, 2, Partition::NonIid { l_prime: 99 }, &mut rng);
        assert_eq!(fed.total_points, 20);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = dataset(2, 4, &mut rng);
        partition_dataset(&data, 0, Partition::Iid, &mut rng);
    }
}
