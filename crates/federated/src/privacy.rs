//! Differentially private uplink — the paper's stated future work
//! ("promising future directions are to theoretically guarantee
//! privacy-preserving and to consider privacy-utility tradeoffs in
//! federated clustering", Section VII; Remark 2 notes DP "can be
//! incorporated into Fed-SC ... while uploading Theta").
//!
//! The uploaded samples are unit vectors, so the l2 sensitivity of one
//! sample to any single data point's presence is bounded by 2 (replacing a
//! point can at most replace the sample with another unit vector). The
//! Gaussian mechanism therefore applies directly: adding
//! `N(0, sigma^2 I)` per sample with
//! `sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon` gives each
//! device's upload `(epsilon, delta)`-DP per sample; a device releasing
//! `r` samples composes to `(r * epsilon, r * delta)` under basic
//! composition (the conservative accounting we report).
//!
//! The privacy-utility tradeoff is measured by the `privacy` ablation in
//! `fedsc-bench`.

use fedsc_linalg::random::standard_normal;
use fedsc_linalg::Matrix;
use rand::Rng;

/// Parameters of the Gaussian mechanism applied to each uploaded sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Per-sample privacy budget `epsilon` (> 0).
    pub epsilon: f64,
    /// Per-sample failure probability `delta` in (0, 1).
    pub delta: f64,
    /// l2 sensitivity of one released sample (2.0 for unit-norm samples
    /// under replacement; expose it for other release geometries).
    pub sensitivity: f64,
}

impl DpConfig {
    /// A `(epsilon, delta)` mechanism with the unit-sample sensitivity 2.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        Self {
            epsilon,
            delta,
            sensitivity: 2.0,
        }
    }

    /// The Gaussian-mechanism noise standard deviation
    /// `sigma = s * sqrt(2 ln(1.25/delta)) / epsilon`.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon <= 0` or `delta` is outside `(0, 1)`.
    pub fn sigma(&self) -> f64 {
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1)"
        );
        self.sensitivity * (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }

    /// Conservative (basic-composition) privacy cost of releasing `r`
    /// samples: `(r * epsilon, r * delta)`.
    pub fn composed(&self, r: usize) -> (f64, f64) {
        (self.epsilon * r as f64, self.delta * r as f64)
    }
}

/// Privacy ledger accumulated over a federated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrivacyLedger {
    /// Worst per-device composed epsilon.
    pub max_device_epsilon: f64,
    /// Worst per-device composed delta.
    pub max_device_delta: f64,
    /// Number of devices that released anything.
    pub devices: usize,
}

impl PrivacyLedger {
    /// Records one device's release of `r` samples under `cfg`.
    pub fn record(&mut self, cfg: &DpConfig, r: usize) {
        let (e, d) = cfg.composed(r);
        self.max_device_epsilon = self.max_device_epsilon.max(e);
        self.max_device_delta = self.max_device_delta.max(d);
        self.devices += 1;
    }
}

/// Applies the Gaussian mechanism to a device's sample matrix (columns are
/// samples) and records the release in the ledger. Returns the privatized
/// samples.
pub fn privatize_samples<R: Rng + ?Sized>(
    cfg: &DpConfig,
    samples: &Matrix,
    ledger: &mut PrivacyLedger,
    rng: &mut R,
) -> Matrix {
    let sigma = cfg.sigma();
    let mut out = samples.clone();
    for v in out.as_mut_slice() {
        *v += sigma * standard_normal(rng);
    }
    ledger.record(cfg, samples.cols());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_formula() {
        let cfg = DpConfig::new(1.0, 1e-5);
        // s * sqrt(2 ln(1.25e5)) = 2 * sqrt(2 * 11.736...) ~ 9.69
        let expect = 2.0 * (2.0 * (1.25 / 1e-5f64).ln()).sqrt();
        assert!((cfg.sigma() - expect).abs() < 1e-12);
        // Larger epsilon -> less noise.
        assert!(DpConfig::new(8.0, 1e-5).sigma() < cfg.sigma());
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_nonpositive_epsilon() {
        DpConfig::new(0.0, 1e-5).sigma();
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn rejects_bad_delta() {
        DpConfig::new(1.0, 1.5).sigma();
    }

    #[test]
    fn composition_is_linear() {
        let cfg = DpConfig::new(0.5, 1e-6);
        assert_eq!(cfg.composed(4), (2.0, 4e-6));
        assert_eq!(cfg.composed(0), (0.0, 0.0));
    }

    #[test]
    fn ledger_tracks_worst_device() {
        let cfg = DpConfig::new(1.0, 1e-6);
        let mut ledger = PrivacyLedger::default();
        ledger.record(&cfg, 2);
        ledger.record(&cfg, 5);
        ledger.record(&cfg, 1);
        assert_eq!(ledger.devices, 3);
        assert!((ledger.max_device_epsilon - 5.0).abs() < 1e-12);
        assert!((ledger.max_device_delta - 5e-6).abs() < 1e-15);
    }

    #[test]
    fn privatization_perturbs_with_expected_scale() {
        let cfg = DpConfig::new(100.0, 1e-3); // small noise for a tight test
        let sigma = cfg.sigma();
        let samples = Matrix::zeros(500, 8);
        let mut ledger = PrivacyLedger::default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = privatize_samples(&cfg, &samples, &mut ledger, &mut rng);
        let var: f64 =
            out.as_slice().iter().map(|v| v * v).sum::<f64>() / out.as_slice().len() as f64;
        assert!(
            (var - sigma * sigma).abs() < 0.2 * sigma * sigma,
            "var {var} vs {}",
            sigma * sigma
        );
        assert_eq!(ledger.devices, 1);
    }
}
