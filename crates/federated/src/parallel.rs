//! Parallel per-device execution.
//!
//! Device-local clustering dominates every federated run and devices are
//! independent, so the simulator fans the per-device work out over the
//! shared work-stealing pool in [`fedsc_linalg::par`] (scoped threads + an
//! atomic work queue + write-once result slots, so result collection never
//! serializes workers behind a lock). Results come back in device order.
//! The same helper reports the *parallel* wall time the paper's scalability
//! analysis quotes (`max_z T^(z)` instead of `sum_z T^(z)`).
//!
//! Ownership rule (DESIGN.md §9): this device-level fan-out owns
//! `FedScConfig::threads`; the numerical kernels inside a device own
//! `FedScConfig::kernel_threads`; nothing nests beyond that product.

use fedsc_obs::Stopwatch;
use std::time::Duration;

/// Maps `f` over `0..count` in parallel, returning results in index order
/// together with each item's wall time.
///
/// `f` must be deterministic per index if reproducibility is required —
/// callers derive per-device RNGs from a base seed, never share one.
/// Worker panics resurface on the calling thread with their original
/// payload.
pub fn par_map_timed<T, F>(count: usize, threads: usize, f: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    fedsc_linalg::par::par_map_timed(count, threads, f)
}

/// Times one closure, returning its result and wall time. Together with
/// [`par_map_timed`] this is the sanctioned way to observe the clock in
/// library code: the actual clock read lives in `fedsc_obs` (`cargo xtask
/// check` confines `Instant`/`SystemTime` to that crate).
pub fn time_phase<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let r = f();
    (r, sw.elapsed())
}

/// Default worker count: available parallelism, floor 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Wall-time summary of a federated phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTiming {
    /// `sum_z T^(z)` — the paper's sequential client time.
    pub sequential: Duration,
    /// `max_z T^(z)` — the parallel client time.
    pub parallel: Duration,
}

impl PhaseTiming {
    /// Aggregates per-item durations.
    pub fn from_durations(durations: impl IntoIterator<Item = Duration>) -> Self {
        let mut seq = Duration::ZERO;
        let mut par = Duration::ZERO;
        for d in durations {
            seq += d;
            par = par.max(d);
        }
        Self {
            sequential: seq,
            parallel: par,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let r = par_map_timed(16, 4, |i| i * i);
        let vals: Vec<usize> = r.into_iter().map(|(v, _)| v).collect();
        assert_eq!(vals, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let r = par_map_timed(3, 1, |i| i + 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].0, 3);
    }

    #[test]
    fn empty_input() {
        let r = par_map_timed(0, 8, |i| i);
        assert!(r.is_empty());
    }

    #[test]
    fn timing_aggregation() {
        let t = PhaseTiming::from_durations([
            Duration::from_millis(10),
            Duration::from_millis(30),
            Duration::from_millis(20),
        ]);
        assert_eq!(t.sequential, Duration::from_millis(60));
        assert_eq!(t.parallel, Duration::from_millis(30));
    }

    #[test]
    fn more_threads_than_items() {
        let r = par_map_timed(2, 64, |i| i);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn index_order_is_invariant_to_thread_count() {
        // The caller contract: results come back in index order regardless
        // of how the work queue interleaves across workers.
        let expected: Vec<usize> = (0..33).map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 8] {
            let r = par_map_timed(33, threads, |i| i * 7 + 1);
            let vals: Vec<usize> = r.into_iter().map(|(v, _)| v).collect();
            assert_eq!(vals, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_under_many_threads() {
        for threads in [1, 2, 8] {
            assert!(par_map_timed(0, threads, |i| i).is_empty());
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        // A panic inside `f` must resurface on the calling thread with its
        // original payload, not abort the process or hang the scope.
        let caught = std::panic::catch_unwind(|| {
            par_map_timed(8, 4, |i| {
                if i == 5 {
                    panic!("worker 5 exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker 5 exploded");
    }

    #[test]
    fn time_phase_returns_value_and_duration() {
        let (v, dt) = time_phase(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(dt >= Duration::from_millis(5));
    }
}
