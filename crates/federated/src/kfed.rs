//! k-FED — one-shot federated k-means (Dennis, Li & Smith, ICML 2021), the
//! paper's federated baseline, including the PCA-preprocessed variants of
//! Table III.
//!
//! One round: each device runs k-means locally with `k' = L^(z)` clusters
//! and uploads its centroids; the server pools all centroids and clusters
//! them into `L` groups with farthest-point-seeded k-means (the
//! Awasthi–Sheffet-style aggregation of the original paper); each device
//! then labels its points by their local centroid's global cluster.
//!
//! The PCA variants project each device's data onto its **locally computed**
//! top-`p` principal components before clustering. Local PCA bases differ
//! across devices, so pooled centroids live in incompatible coordinate
//! systems — the mechanism behind the catastrophic accuracies the paper
//! reports for k-FED + PCA on high-dimensional data.

use crate::channel::{account_downlink, ChannelConfig, CommStats};
use crate::parallel::{par_map_timed, time_phase, PhaseTiming};
use crate::partition::FederatedDataset;
use fedsc_clustering::kmeans::{kmeans, KMeansInit, KMeansOptions};
use fedsc_linalg::svd::truncated_svd;
use fedsc_linalg::{Matrix, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// k-FED configuration.
#[derive(Debug, Clone)]
pub struct KFedConfig {
    /// Global cluster count `L`.
    pub num_clusters: usize,
    /// Local cluster count per device (`k'`); devices with fewer points use
    /// their point count.
    pub local_clusters: usize,
    /// Optional local PCA projection dimension (the paper's PCA-10 /
    /// PCA-100 variants).
    pub pca_dim: Option<usize>,
    /// Channel model for cost accounting.
    pub channel: ChannelConfig,
    /// Worker threads for the device phase.
    pub threads: usize,
    /// Base RNG seed; device `z` derives seed `base + z`.
    pub seed: u64,
}

impl KFedConfig {
    /// Baseline configuration for `l` global clusters and `k'` local ones.
    pub fn new(num_clusters: usize, local_clusters: usize) -> Self {
        Self {
            num_clusters,
            local_clusters,
            pca_dim: None,
            channel: ChannelConfig::default(),
            threads: crate::parallel::default_threads(),
            seed: 0x5eed,
        }
    }
}

/// k-FED run output.
#[derive(Debug, Clone)]
pub struct KFedOutput {
    /// Predicted label per point, in global-point order.
    pub predictions: Vec<usize>,
    /// Communication cost.
    pub comm: CommStats,
    /// Device-phase timing.
    pub local_timing: PhaseTiming,
    /// Server aggregation wall time.
    pub server_time: Duration,
}

/// Runs one-shot federated k-means over a partitioned dataset.
pub fn kfed(fed: &FederatedDataset, cfg: &KFedConfig) -> Result<KFedOutput> {
    let z_count = fed.devices.len();
    // Phase 1: local k-means (optionally in local PCA coordinates).
    struct LocalOut {
        centroids: Matrix,
        labels: Vec<usize>,
    }
    let locals: Vec<(Result<LocalOut>, Duration)> =
        par_map_timed(z_count, cfg.threads, |z| -> Result<LocalOut> {
            let dev = &fed.devices[z];
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(z as u64));
            let data = match cfg.pca_dim {
                Some(p) => local_pca_project(&dev.data, p)?,
                None => dev.data.clone(),
            };
            let k = cfg.local_clusters.clamp(1, dev.len().max(1));
            let km = kmeans(
                &data,
                &KMeansOptions {
                    k,
                    restarts: 3,
                    ..Default::default()
                },
                &mut rng,
            );
            Ok(LocalOut {
                centroids: km.centroids,
                labels: km.labels,
            })
        });

    let local_timing = PhaseTiming::from_durations(locals.iter().map(|(_, d)| *d));
    let mut comm = CommStats::default();
    let mut centroid_cols: Vec<Matrix> = Vec::with_capacity(z_count);
    let mut local_labels: Vec<Vec<usize>> = Vec::with_capacity(z_count);
    let mut centroid_offset = vec![0usize; z_count];
    let mut offset = 0usize;
    for (z, (res, _)) in locals.into_iter().enumerate() {
        let out = res?;
        let (n, r) = out.centroids.shape();
        comm.uplink_bits += (n as u64) * (r as u64) * cfg.channel.bits_per_scalar as u64;
        comm.uplink_messages += 1;
        centroid_offset[z] = offset;
        offset += r;
        centroid_cols.push(out.centroids);
        local_labels.push(out.labels);
    }

    // Phase 2: server clusters the pooled centroids.
    let refs: Vec<&Matrix> = centroid_cols.iter().collect();
    let pooled = Matrix::hcat(&refs)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7e57_5e4e);
    let (server, server_time) = time_phase(|| {
        kmeans(
            &pooled,
            &KMeansOptions {
                k: cfg.num_clusters.clamp(1, pooled.cols().max(1)),
                init: KMeansInit::FarthestPoint,
                restarts: 3,
                ..Default::default()
            },
            &mut rng,
        )
    });

    // Phase 3: map each point through its local centroid's global label.
    let mut per_device: Vec<Vec<usize>> = Vec::with_capacity(z_count);
    for z in 0..z_count {
        let base = centroid_offset[z];
        let labels: Vec<usize> = local_labels[z]
            .iter()
            .map(|&local_c| server.labels[base + local_c])
            .collect();
        account_downlink(&mut comm, centroid_cols[z].cols(), cfg.num_clusters);
        per_device.push(labels);
    }
    let predictions = fed.scatter_predictions(&per_device);
    Ok(KFedOutput {
        predictions,
        comm,
        local_timing,
        server_time,
    })
}

/// Projects columns onto the device's own top-`p` principal components
/// (centered local PCA). Output is always `min(p, ambient) x N`: devices
/// with fewer points than `p` zero-pad the missing component rows so every
/// device reports centroids of the same dimension.
fn local_pca_project(data: &Matrix, p: usize) -> Result<Matrix> {
    let (n, cols) = data.shape();
    let target = p.min(n);
    if cols == 0 {
        return Ok(Matrix::zeros(target, 0));
    }
    // Center columns.
    let mut mean = vec![0.0; n];
    for j in 0..cols {
        for (m, &v) in mean.iter_mut().zip(data.col(j)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= cols as f64;
    }
    let mut centered = data.clone();
    for j in 0..cols {
        for (v, &m) in centered.col_mut(j).iter_mut().zip(&mean) {
            *v -= m;
        }
    }
    let k = target.min(cols);
    let svd = truncated_svd(&centered, k)?;
    // Coordinates in the local PCA frame: U^T centered, zero-padded to the
    // full target dimension.
    let coords = svd.u.tr_matmul(&centered)?;
    if k == target {
        return Ok(coords);
    }
    let mut padded = Matrix::zeros(target, cols);
    for j in 0..cols {
        padded.col_mut(j)[..k].copy_from_slice(coords.col(j));
    }
    Ok(padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_dataset, Partition};
    use fedsc_clustering::clustering_accuracy;
    use fedsc_subspace::SubspaceModel;

    /// Low-dimensional well-separated blobs — the regime k-FED is good at.
    fn blob_dataset(rng: &mut StdRng) -> fedsc_subspace::LabeledData {
        // Use subspace points offset by distinct large centers to create
        // genuine Euclidean blobs.
        let model = SubspaceModel::random(rng, 4, 1, 3);
        let mut ds = model.sample_dataset(rng, &[30, 30, 30], 0.0);
        for j in 0..ds.len() {
            let l = ds.labels[j];
            ds.data.col_mut(j)[l] += 10.0 * (l as f64 + 1.0);
        }
        ds
    }

    #[test]
    fn recovers_blobs_under_iid_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = blob_dataset(&mut rng);
        let fed = partition_dataset(&ds, 6, Partition::Iid, &mut rng);
        let out = kfed(&fed, &KFedConfig::new(3, 3)).unwrap();
        let acc = clustering_accuracy(&fed.global_truth(), &out.predictions);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn heterogeneity_helps_kfed() {
        // Dennis et al.'s headline: with L' < L local clustering is easier.
        let mut rng = StdRng::seed_from_u64(2);
        let ds = blob_dataset(&mut rng);
        let fed = partition_dataset(&ds, 6, Partition::NonIid { l_prime: 1 }, &mut rng);
        let out = kfed(&fed, &KFedConfig::new(3, 1)).unwrap();
        let acc = clustering_accuracy(&fed.global_truth(), &out.predictions);
        assert!(acc > 90.0, "accuracy {acc}");
    }

    #[test]
    fn comm_stats_are_populated() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = blob_dataset(&mut rng);
        let fed = partition_dataset(&ds, 4, Partition::Iid, &mut rng);
        let out = kfed(&fed, &KFedConfig::new(3, 3)).unwrap();
        assert_eq!(out.comm.uplink_messages, 4);
        assert_eq!(out.comm.downlink_messages, 4);
        assert!(out.comm.uplink_bits > 0);
        assert!(out.comm.downlink_bits > 0);
    }

    #[test]
    fn pca_projection_shapes() {
        let data = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[5.0, 5.0, 5.0, 5.0],
        ])
        .unwrap();
        let proj = local_pca_project(&data, 2).unwrap();
        assert_eq!(proj.shape(), (2, 4));
        // The constant row carries no variance: projecting to 1 dim keeps
        // the spread of row 0.
        let p1 = local_pca_project(&data, 1).unwrap();
        let spread: f64 = p1.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(spread > 1.0);
    }

    #[test]
    fn pca_variant_runs_end_to_end() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = blob_dataset(&mut rng);
        let fed = partition_dataset(&ds, 4, Partition::Iid, &mut rng);
        let mut cfg = KFedConfig::new(3, 3);
        cfg.pca_dim = Some(2);
        let out = kfed(&fed, &cfg).unwrap();
        assert_eq!(out.predictions.len(), fed.total_points);
        assert!(out.predictions.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = blob_dataset(&mut rng);
        let fed = partition_dataset(&ds, 4, Partition::Iid, &mut rng);
        let a = kfed(&fed, &KFedConfig::new(3, 3)).unwrap();
        let b = kfed(&fed, &KFedConfig::new(3, 3)).unwrap();
        assert_eq!(a.predictions, b.predictions);
    }
}
