//! # fedsc-federated
//!
//! The federated-network substrate Fed-SC runs in, plus the k-FED baseline.
//!
//! * [`partition`] — IID / Non-IID(L') data partitioners with global-index
//!   bookkeeping (the paper's statistical-heterogeneity knob).
//! * [`channel`] — wire encoding, quantization, communication noise
//!   (Fig. 7), and Section IV-E communication-cost accounting.
//! * [`parallel`] — scoped-thread per-device execution with the
//!   sequential/parallel timing split of the scalability analysis.
//! * [`kfed`] — one-shot federated k-means (Dennis et al., ICML 2021) with
//!   the Table III PCA-10 / PCA-100 variants.
//! * [`privacy`] — Gaussian-mechanism differential privacy for the uplink
//!   (the paper's Remark 2 / Section VII future-work direction).

#![warn(missing_docs)]
// Indexed loops over matrix dimensions are the idiom in numerical kernels
// (parallel indexing of several buffers); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod channel;
pub mod kfed;
pub mod parallel;
pub mod partition;
pub mod privacy;

pub use channel::{ChannelConfig, CommStats};
pub use kfed::{kfed, KFedConfig, KFedOutput};
pub use partition::{partition_dataset, FederatedDataset, Partition};
