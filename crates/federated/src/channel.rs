//! Communication channel: wire encoding, quantization, additive noise, and
//! the paper's communication-cost accounting.
//!
//! The uplink carries each device's generated samples `Theta^(z)` (an
//! `n x r^(z)` matrix); the downlink carries the `r^(z)` global cluster
//! assignments. Following Section IV-E, with `q`-bit scalar quantization the
//! uplink costs `n * q * sum_z r^(z)` bits and the downlink
//! `sum_z r^(z) * ceil(log2 L)` bits.
//!
//! The Fig. 7 robustness experiment perturbs each uploaded sample with
//! Gaussian noise of variance `delta / sqrt(r^(z))`; that transform lives
//! here so the scheme itself stays noise-agnostic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedsc_linalg::random::standard_normal;
use fedsc_linalg::Matrix;
use rand::Rng;

/// Channel configuration.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Bits per scalar on the uplink (the paper's `q`; 64 = lossless f64).
    pub bits_per_scalar: u32,
    /// Communication-noise level `delta` (0 = noiseless). Each uploaded
    /// sample on a device with `r` local clusters receives additive Gaussian
    /// noise of **total** variance `delta / sqrt(r)`, i.e. per-coordinate
    /// variance `delta / (n sqrt(r))`. (The paper's Fig. 7 states the
    /// variance as `delta / sqrt(r^(z))` without fixing the normalization;
    /// the per-sample reading is the one consistent with the robustness
    /// range the figure shows — per-coordinate noise of that variance would
    /// swamp the unit-norm samples at tiny `delta`.)
    pub noise_delta: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            bits_per_scalar: 64,
            noise_delta: 0.0,
        }
    }
}

/// Running communication-cost meter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total uplink payload bits (quantized model, per Section IV-E).
    pub uplink_bits: u64,
    /// Total downlink payload bits.
    pub downlink_bits: u64,
    /// Number of uplink messages (one per device in one-shot schemes).
    pub uplink_messages: u64,
    /// Number of downlink messages.
    pub downlink_messages: u64,
}

impl CommStats {
    /// Total bits both ways.
    pub fn total_bits(&self) -> u64 {
        self.uplink_bits + self.downlink_bits
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.uplink_bits += other.uplink_bits;
        self.downlink_bits += other.downlink_bits;
        self.uplink_messages += other.uplink_messages;
        self.downlink_messages += other.downlink_messages;
    }
}

/// An uplink message: one device's sample matrix, encoded column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct UplinkMessage {
    /// Ambient dimension `n`.
    pub dim: usize,
    /// Samples as columns.
    pub samples: Matrix,
}

impl UplinkMessage {
    /// Serializes to the wire format (length-prefixed little-endian f64s).
    /// The encoded payload is what the byte-level tests measure; the *bit*
    /// accounting uses the configured quantization width.
    pub fn encode(&self) -> Bytes {
        let (n, r) = self.samples.shape();
        let mut buf = BytesMut::with_capacity(16 + 8 * n * r);
        buf.put_u64_le(n as u64);
        buf.put_u64_le(r as u64);
        for v in self.samples.as_slice() {
            buf.put_f64_le(*v);
        }
        buf.freeze()
    }

    /// Decodes a wire payload. Returns `None` on malformed input.
    pub fn decode(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 16 {
            return None;
        }
        let n = bytes.get_u64_le() as usize;
        let r = bytes.get_u64_le() as usize;
        let need = n.checked_mul(r)?.checked_mul(8)?;
        if bytes.remaining() != need {
            return None;
        }
        let mut data = Vec::with_capacity(n * r);
        for _ in 0..n * r {
            data.push(bytes.get_f64_le());
        }
        let samples = Matrix::from_col_major(n, r, data).ok()?;
        Some(Self { dim: n, samples })
    }
}

/// A downlink message: the global cluster assignments of one device's
/// samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownlinkMessage {
    /// Assignment `tau` per uploaded sample, in upload order.
    pub assignments: Vec<u32>,
}

impl DownlinkMessage {
    /// Serializes to the wire format (length-prefixed little-endian u32s).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 4 * self.assignments.len());
        buf.put_u64_le(self.assignments.len() as u64);
        for &a in &self.assignments {
            buf.put_u32_le(a);
        }
        buf.freeze()
    }

    /// Decodes a wire payload. Returns `None` on malformed input.
    pub fn decode(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 8 {
            return None;
        }
        let n = bytes.get_u64_le() as usize;
        if bytes.remaining() != n.checked_mul(4)? {
            return None;
        }
        let assignments = (0..n).map(|_| bytes.get_u32_le()).collect();
        Some(Self { assignments })
    }
}

/// Applies the channel to one device's samples: quantize to
/// `bits_per_scalar`, then add Gaussian noise of variance
/// `delta / sqrt(r)`, and account the uplink cost.
pub fn transmit_uplink<R: Rng + ?Sized>(
    cfg: &ChannelConfig,
    samples: &Matrix,
    stats: &mut CommStats,
    rng: &mut R,
) -> Matrix {
    let (n, r) = samples.shape();
    stats.uplink_bits += (n as u64) * (r as u64) * cfg.bits_per_scalar as u64;
    stats.uplink_messages += 1;
    let mut out = samples.clone();
    if cfg.bits_per_scalar < 64 {
        quantize_in_place(&mut out, cfg.bits_per_scalar);
    }
    if cfg.noise_delta > 0.0 && r > 0 && n > 0 {
        let std = (cfg.noise_delta / (n as f64 * (r as f64).sqrt())).sqrt();
        for v in out.as_mut_slice() {
            *v += std * standard_normal(rng);
        }
    }
    out
}

/// Accounts the downlink delivery of `r` cluster assignments out of `l`
/// global clusters (`ceil(log2 l)` bits each; at least 1).
pub fn account_downlink(stats: &mut CommStats, r: usize, l: usize) {
    let bits_per_label = (usize::BITS - (l.max(2) - 1).leading_zeros()).max(1) as u64;
    stats.downlink_bits += r as u64 * bits_per_label;
    stats.downlink_messages += 1;
}

/// Uniform mid-rise quantization of samples known to lie in `[-1, 1]`
/// (Fed-SC samples are unit vectors, so every coordinate does).
fn quantize_in_place(m: &mut Matrix, bits: u32) {
    let levels = (1u64 << bits.min(32)) as f64;
    let step = 2.0 / levels;
    for v in m.as_mut_slice() {
        let clamped = v.clamp(-1.0, 1.0);
        *v = ((clamped + 1.0) / step).floor().min(levels - 1.0) * step - 1.0 + step / 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[&[0.6, -0.8], &[0.8, 0.6]]).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let msg = UplinkMessage {
            dim: 2,
            samples: sample_matrix(),
        };
        let bytes = msg.encode();
        let back = UplinkMessage::decode(bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(UplinkMessage::decode(Bytes::from_static(&[1, 2, 3])).is_none());
        // Header says 2x2 but payload is short.
        let msg = UplinkMessage {
            dim: 2,
            samples: sample_matrix(),
        };
        let mut bytes = msg.encode().to_vec();
        bytes.pop();
        assert!(UplinkMessage::decode(Bytes::from(bytes)).is_none());
    }

    #[test]
    fn downlink_encode_decode_round_trip() {
        let msg = DownlinkMessage {
            assignments: vec![0, 3, 17, 2],
        };
        assert_eq!(DownlinkMessage::decode(msg.encode()).unwrap(), msg);
        let empty = DownlinkMessage {
            assignments: vec![],
        };
        assert_eq!(DownlinkMessage::decode(empty.encode()).unwrap(), empty);
        assert!(DownlinkMessage::decode(Bytes::from_static(&[1, 2])).is_none());
    }

    #[test]
    fn uplink_cost_matches_formula() {
        let cfg = ChannelConfig {
            bits_per_scalar: 32,
            noise_delta: 0.0,
        };
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples = Matrix::zeros(20, 3); // n = 20, r = 3
        transmit_uplink(&cfg, &samples, &mut stats, &mut rng);
        assert_eq!(stats.uplink_bits, 20 * 3 * 32);
        assert_eq!(stats.uplink_messages, 1);
    }

    #[test]
    fn downlink_cost_matches_formula() {
        let mut stats = CommStats::default();
        account_downlink(&mut stats, 3, 20); // ceil(log2 20) = 5
        assert_eq!(stats.downlink_bits, 15);
        account_downlink(&mut stats, 2, 2); // 1 bit per label
        assert_eq!(stats.downlink_bits, 17);
        assert_eq!(stats.downlink_messages, 2);
    }

    #[test]
    fn noiseless_lossless_channel_is_identity() {
        let cfg = ChannelConfig::default();
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sample_matrix();
        let out = transmit_uplink(&cfg, &samples, &mut stats, &mut rng);
        assert_eq!(out, samples);
    }

    #[test]
    fn noise_perturbs_with_expected_scale() {
        let cfg = ChannelConfig {
            bits_per_scalar: 64,
            noise_delta: 0.04,
        };
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(3);
        // n = 2000, r = 4 -> per-coordinate var = 0.04 / (2000 * 2) = 1e-5.
        let samples = Matrix::zeros(2000, 4);
        let out = transmit_uplink(&cfg, &samples, &mut stats, &mut rng);
        let var: f64 =
            out.as_slice().iter().map(|v| v * v).sum::<f64>() / out.as_slice().len() as f64;
        assert!((var - 1e-5).abs() < 1e-6, "observed variance {var}");
    }

    #[test]
    fn quantization_error_bounded_by_step() {
        let cfg = ChannelConfig {
            bits_per_scalar: 8,
            noise_delta: 0.0,
        };
        let mut stats = CommStats::default();
        let mut rng = StdRng::seed_from_u64(4);
        let samples = sample_matrix();
        let out = transmit_uplink(&cfg, &samples, &mut stats, &mut rng);
        let step = 2.0 / 256.0;
        for (a, b) in out.as_slice().iter().zip(samples.as_slice()) {
            assert!((a - b).abs() <= step, "{a} vs {b}");
        }
    }

    #[test]
    fn stats_merge() {
        let mut a = CommStats {
            uplink_bits: 10,
            downlink_bits: 5,
            uplink_messages: 1,
            downlink_messages: 1,
        };
        let b = CommStats {
            uplink_bits: 7,
            downlink_bits: 3,
            uplink_messages: 2,
            downlink_messages: 2,
        };
        a.merge(&b);
        assert_eq!(a.total_bits(), 25);
        assert_eq!(a.uplink_messages, 3);
    }
}
