//! Surrogate high-dimensional datasets standing in for the paper's
//! real-world benchmarks (EMNIST scatter features and augmented COIL100).
//!
//! We cannot ship the 814k-image EMNIST corpus, a scattering convolution
//! network, or COIL100 with its augmentation pipeline. What Table III and
//! Table IV actually exercise, though, is the *structure* those pipelines
//! produce: each class concentrates near a low-dimensional subspace of a
//! very high-dimensional feature space, classes share some common feature
//! directions (scatter features share low-order coefficients; images share
//! a brightness/DC direction), class sizes are imbalanced (EMNIST's 62
//! classes are famously unbalanced), and augmentation adds within-class
//! jitter. The surrogates reproduce exactly those properties:
//!
//! * **emnist-like** — 62 classes in `R^3472`, subspace dimension 6, a
//!   shared 2-dimensional common component mixed into every class basis,
//!   class sizes drawn from a 3:1 imbalanced profile, noise 0.02.
//! * **coil100-like** — 100 classes in `R^1024`, subspace dimension 4
//!   plus a *shared* DC direction in every class (brightness changes move
//!   points along it, so augmentation keeps classes near their subspaces
//!   while coupling all of them), noise 0.02.
//!
//! Both generators accept a scale factor so tests run in milliseconds and
//! benches can approach paper scale.

use fedsc_linalg::qr::orthonormal_basis;
use fedsc_linalg::random::{gaussian_matrix, standard_normal};
use fedsc_linalg::{vector, Matrix};
use fedsc_subspace::model::{LabeledData, SubspaceModel};
use rand::Rng;

/// Specification of a surrogate union-of-subspaces dataset.
#[derive(Debug, Clone)]
pub struct SurrogateSpec {
    /// Dataset name for reports.
    pub name: &'static str,
    /// Ambient feature dimension.
    pub ambient_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Per-class private subspace dimension.
    pub subspace_dim: usize,
    /// Dimensions of the common component shared by all classes.
    pub shared_dims: usize,
    /// Mixing weight of the common component in each class basis (0 = fully
    /// independent classes).
    pub shared_weight: f64,
    /// Points per class before imbalance scaling.
    pub base_class_size: usize,
    /// Class-size imbalance ratio (largest / smallest class).
    pub imbalance: f64,
    /// Additive noise standard deviation.
    pub noise_std: f64,
    /// In-subspace mean offset: coefficients are drawn `N(mu_c, I)` with
    /// `||mu_c|| = mean_offset` along a per-class direction. Keeps every
    /// point exactly on its linear subspace while giving classes distinct
    /// Euclidean means — real feature embeddings (scatter coefficients,
    /// image statistics) have exactly this property, and it is what gives
    /// k-means-based baselines their partial traction in the paper's
    /// tables.
    pub mean_offset: f64,
}

impl SurrogateSpec {
    /// EMNIST-scatter-features surrogate (62 classes, 3472-dim).
    /// `scale in (0, 1]` shrinks ambient dimension and class sizes
    /// proportionally (1.0 = paper-scale structure).
    pub fn emnist_like(scale: f64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        Self {
            name: "EMNIST-like",
            ambient_dim: ((3472.0 * scale) as usize).max(64),
            num_classes: 62,
            subspace_dim: 6,
            shared_dims: 2,
            shared_weight: 0.3,
            base_class_size: ((160.0 * scale) as usize).max(12),
            imbalance: 3.0,
            noise_std: 0.02,
            mean_offset: 1.5,
        }
    }

    /// Augmented-COIL100 surrogate (100 classes, 1024-dim).
    pub fn coil100_like(scale: f64) -> Self {
        let scale = scale.clamp(0.01, 1.0);
        Self {
            name: "COIL100-like",
            ambient_dim: ((1024.0 * scale) as usize).max(64),
            num_classes: 100,
            subspace_dim: 4,
            shared_dims: 1, // the brightness / DC direction
            shared_weight: 0.4,
            base_class_size: ((100.0 * scale) as usize).max(10),
            imbalance: 1.5,
            noise_std: 0.02,
            mean_offset: 1.2,
        }
    }

    /// Reduces the class count (for quick tests / scaled benches).
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.num_classes = classes.max(2);
        self
    }

    /// Overrides the base class size (for quick benches that shrink the
    /// class count but still need enough points per device).
    pub fn with_class_size(mut self, size: usize) -> Self {
        self.base_class_size = size.max(4);
        self
    }

    /// Overrides the additive noise level.
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        self.noise_std = noise_std.max(0.0);
        self
    }
}

/// A generated surrogate dataset.
#[derive(Debug, Clone)]
pub struct SurrogateDataset {
    /// The labeled points.
    pub data: LabeledData,
    /// The class bases actually used (for diagnostics).
    pub model: SubspaceModel,
    /// Class sizes.
    pub class_sizes: Vec<usize>,
    /// The spec that produced it.
    pub spec: SurrogateSpec,
}

/// Generates a surrogate dataset from a spec.
pub fn generate<R: Rng + ?Sized>(spec: &SurrogateSpec, rng: &mut R) -> SurrogateDataset {
    let n = spec.ambient_dim;
    assert!(
        spec.subspace_dim + spec.shared_dims <= n,
        "subspace + shared dims exceed ambient dimension"
    );
    // Common component shared by every class.
    let shared = if spec.shared_dims > 0 {
        // INVARIANT: Gram-Schmidt over equal-length Gaussian columns cannot
        // produce ragged output.
        orthonormal_basis(&gaussian_matrix(rng, n, spec.shared_dims), 1e-10)
            .expect("gaussian columns share length")
    } else {
        Matrix::zeros(n, 0)
    };
    // Class bases: orthonormalized mixture of a private Gaussian draw and
    // the shared component.
    let mut bases = Vec::with_capacity(spec.num_classes);
    for _ in 0..spec.num_classes {
        let private = gaussian_matrix(rng, n, spec.subspace_dim);
        let mut mix = Matrix::zeros(n, spec.subspace_dim + spec.shared_dims);
        for j in 0..spec.shared_dims {
            let src = shared.col(j);
            let dst = mix.col_mut(j);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = spec.shared_weight * s;
            }
        }
        for j in 0..spec.subspace_dim {
            // Blend a little of the shared directions into the private ones
            // so classes are coherent, not merely overlapping.
            let dst = mix.col_mut(spec.shared_dims + j);
            dst.copy_from_slice(private.col(j));
            for k in 0..spec.shared_dims {
                let c = spec.shared_weight * 0.5;
                vector::axpy(c, shared.col(k), dst);
            }
        }
        // INVARIANT: `mix` is a dense n x (d + shared) matrix built above.
        bases.push(orthonormal_basis(&mix, 1e-10).expect("mix columns share length"));
    }
    let model = SubspaceModel {
        ambient_dim: n,
        bases,
    };

    // Imbalanced class sizes: geometric interpolation between
    // base_class_size and base_class_size / imbalance.
    let class_sizes: Vec<usize> = (0..spec.num_classes)
        .map(|c| {
            let t = c as f64 / (spec.num_classes.max(2) - 1) as f64;
            let f = spec.imbalance.powf(-t);
            ((spec.base_class_size as f64 * f) as usize).max(4)
        })
        .collect();

    // Sample points with a per-class coefficient mean (kept inside the
    // subspace so linear SC assumptions hold), then add ambient noise and
    // renormalize.
    let total: usize = class_sizes.iter().sum();
    let mut points = Matrix::zeros(n, total);
    let mut labels = Vec::with_capacity(total);
    let mut col = 0usize;
    for (c, (&count, basis)) in class_sizes.iter().zip(&model.bases).enumerate() {
        let d = basis.cols();
        // Deterministic per-class mean direction in coefficient space.
        let mut mu = vec![0.0; d];
        if d > 0 && spec.mean_offset > 0.0 {
            mu[c % d] = spec.mean_offset;
            if d > 1 {
                mu[(c / d) % d] += 0.5 * spec.mean_offset;
            }
        }
        for _ in 0..count {
            let mut alpha = fedsc_linalg::random::gaussian_vector(rng, d);
            for (a, &m) in alpha.iter_mut().zip(&mu) {
                *a += m;
            }
            // INVARIANT: `alpha` is drawn with length `d = basis.cols()`.
            let mut x = basis
                .matvec(&alpha)
                .expect("coefficient length matches basis");
            if spec.noise_std > 0.0 {
                vector::normalize(&mut x, 1e-300);
                for v in &mut x {
                    *v += spec.noise_std * standard_normal(rng);
                }
            }
            vector::normalize(&mut x, 1e-300);
            points.col_mut(col).copy_from_slice(&x);
            labels.push(c);
            col += 1;
        }
    }
    let data = LabeledData {
        data: points,
        labels,
    };
    SurrogateDataset {
        data,
        model,
        class_sizes,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn emnist_like_structure() {
        let spec = SurrogateSpec::emnist_like(0.05).with_classes(6);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(&spec, &mut rng);
        assert_eq!(ds.model.num_subspaces(), 6);
        assert_eq!(ds.class_sizes.len(), 6);
        // Imbalance: first class bigger than last.
        assert!(ds.class_sizes[0] > ds.class_sizes[5]);
        // High-dimensional: ambient >= 64 even at tiny scale.
        assert!(ds.data.data.rows() >= 64);
        // Points are unit norm.
        for j in 0..ds.data.len().min(10) {
            assert!((vector::norm2(ds.data.data.col(j)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coil_like_classes_share_dc_direction() {
        let spec = SurrogateSpec::coil100_like(0.08).with_classes(5);
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate(&spec, &mut rng);
        // Every pair of class bases has positive affinity thanks to the
        // shared direction (scatter-like coherence).
        let aff = fedsc_linalg::angles::subspace_affinity(&ds.model.bases[0], &ds.model.bases[1])
            .unwrap();
        assert!(aff > 0.1, "affinity {aff}");
    }

    #[test]
    fn class_sizes_sum_matches_data() {
        let spec = SurrogateSpec::emnist_like(0.03).with_classes(4);
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate(&spec, &mut rng);
        let total: usize = ds.class_sizes.iter().sum();
        assert_eq!(total, ds.data.len());
    }

    #[test]
    fn scale_controls_size() {
        let small = SurrogateSpec::emnist_like(0.05);
        let large = SurrogateSpec::emnist_like(0.5);
        assert!(large.ambient_dim > small.ambient_dim);
        assert!(large.base_class_size > small.base_class_size);
    }

    #[test]
    fn full_scale_matches_paper_dimensions() {
        let e = SurrogateSpec::emnist_like(1.0);
        assert_eq!(e.ambient_dim, 3472);
        assert_eq!(e.num_classes, 62);
        let c = SurrogateSpec::coil100_like(1.0);
        assert_eq!(c.ambient_dim, 1024);
        assert_eq!(c.num_classes, 100);
    }
}
