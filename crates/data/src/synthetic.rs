//! The paper's Section VI-A synthetic workload.
//!
//! "We randomly generate `L` subspaces (adjustable) each of the same
//! dimension `d = 5` by drawing i.i.d. orthonormal basis matrices in
//! `R^20`. The synthetic data is obtained by multiplying random gaussian
//! coefficients with each basis matrix."

use fedsc_linalg::Matrix;
use fedsc_subspace::model::{LabeledData, SubspaceModel};
use rand::Rng;

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Ambient dimension `n` (paper: 20).
    pub ambient_dim: usize,
    /// Subspace dimension `d` (paper: 5).
    pub subspace_dim: usize,
    /// Number of subspaces `L`.
    pub num_subspaces: usize,
    /// Points drawn per subspace.
    pub points_per_subspace: usize,
    /// Additive noise standard deviation (0 for the noiseless theory
    /// setting).
    pub noise_std: f64,
}

impl SyntheticConfig {
    /// The paper's defaults with `L` subspaces and the given size.
    pub fn paper(num_subspaces: usize, points_per_subspace: usize) -> Self {
        Self {
            ambient_dim: 20,
            subspace_dim: 5,
            num_subspaces,
            points_per_subspace,
            noise_std: 0.0,
        }
    }
}

/// A generated synthetic dataset with its ground-truth model.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The labeled points.
    pub data: LabeledData,
    /// The ground-truth subspace model (for theory diagnostics).
    pub model: SubspaceModel,
}

/// Generates the paper's synthetic dataset.
pub fn generate<R: Rng + ?Sized>(cfg: &SyntheticConfig, rng: &mut R) -> SyntheticDataset {
    assert!(
        cfg.subspace_dim <= cfg.ambient_dim,
        "subspace dimension must not exceed ambient dimension"
    );
    let model = SubspaceModel::random(rng, cfg.ambient_dim, cfg.subspace_dim, cfg.num_subspaces);
    let counts = vec![cfg.points_per_subspace; cfg.num_subspaces];
    let data = model.sample_dataset(rng, &counts, cfg.noise_std);
    SyntheticDataset { data, model }
}

/// Convenience accessor used by the benches: the raw matrix.
pub fn data_matrix(ds: &SyntheticDataset) -> &Matrix {
    &ds.data.data
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_defaults() {
        let cfg = SyntheticConfig::paper(20, 10);
        assert_eq!(cfg.ambient_dim, 20);
        assert_eq!(cfg.subspace_dim, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(&cfg, &mut rng);
        assert_eq!(ds.data.len(), 200);
        assert_eq!(ds.data.data.shape(), (20, 200));
        assert_eq!(ds.model.num_subspaces(), 20);
    }

    #[test]
    fn labels_are_grouped_and_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate(&SyntheticConfig::paper(3, 5), &mut rng);
        assert_eq!(
            ds.data.labels,
            vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2]
        );
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn invalid_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SyntheticConfig {
            ambient_dim: 3,
            subspace_dim: 5,
            num_subspaces: 2,
            points_per_subspace: 4,
            noise_std: 0.0,
        };
        generate(&cfg, &mut rng);
    }
}
