//! # fedsc-data
//!
//! Workload generators for the Fed-SC reproduction.
//!
//! * [`synthetic`] — the paper's Section VI-A generator (`L` subspaces of
//!   dimension 5 in `R^20`, Gaussian coefficients).
//! * [`realworld`] — surrogate high-dimensional datasets standing in for
//!   EMNIST scatter features and augmented COIL100 (see the module docs for
//!   the substitution argument; also documented in `DESIGN.md`).

#![warn(missing_docs)]

pub mod realworld;
pub mod synthetic;

pub use realworld::{SurrogateDataset, SurrogateSpec};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
