//! Property-based tests for the surrogate generators: the structural
//! guarantees the Table III/IV substitution argument rests on.

use fedsc_data::realworld::{generate, SurrogateSpec};
use fedsc_data::synthetic::{generate as gen_synth, SyntheticConfig};
use fedsc_linalg::{angles, vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn surrogate_points_are_unit_norm_and_fully_labeled(
        seed in 0u64..200,
        classes in 3usize..8,
    ) {
        let spec = SurrogateSpec::emnist_like(0.03).with_classes(classes).with_class_size(10);
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate(&spec, &mut rng);
        prop_assert_eq!(ds.class_sizes.len(), classes);
        let total: usize = ds.class_sizes.iter().sum();
        prop_assert_eq!(ds.data.len(), total);
        for j in 0..ds.data.len() {
            prop_assert!((vector::norm2(ds.data.data.col(j)) - 1.0).abs() < 1e-9);
            prop_assert!(ds.data.labels[j] < classes);
        }
        // Imbalance is monotone non-increasing by construction.
        for w in ds.class_sizes.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn class_means_are_distinct_under_offset(seed in 0u64..200) {
        // The mean-offset design must give classes separated centroids —
        // the property that lets k-FED function on the surrogates.
        let spec = SurrogateSpec::coil100_like(0.08).with_classes(4).with_class_size(40);
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate(&spec, &mut rng);
        let n = ds.data.data.rows();
        let mut means = vec![vec![0.0f64; n]; 4];
        let mut counts = [0usize; 4];
        for j in 0..ds.data.len() {
            let l = ds.data.labels[j];
            counts[l] += 1;
            vector::axpy(1.0, ds.data.data.col(j), &mut means[l]);
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            vector::scale(m, 1.0 / c.max(1) as f64);
        }
        // Every class mean is far from zero (offset visible)...
        for m in &means {
            prop_assert!(vector::norm2(m) > 0.3, "mean norm {}", vector::norm2(m));
        }
        // ...and most pairs are well separated.
        let mut separated = 0;
        for a in 0..4 {
            for b in 0..a {
                if vector::dist2_sq(&means[a], &means[b]).sqrt() > 0.3 {
                    separated += 1;
                }
            }
        }
        prop_assert!(separated >= 5, "only {separated}/6 pairs separated");
    }

    #[test]
    fn shared_component_couples_class_subspaces(seed in 0u64..100) {
        let spec = SurrogateSpec::emnist_like(0.04).with_classes(4).with_class_size(10);
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate(&spec, &mut rng);
        // With shared dims > 0 every pair of class bases has affinity well
        // above independent random subspaces in this ambient dimension.
        let mut min_aff = f64::INFINITY;
        for a in 0..4 {
            for b in 0..a {
                let aff = angles::subspace_affinity(&ds.model.bases[a], &ds.model.bases[b])
                    .unwrap();
                min_aff = min_aff.min(aff);
            }
        }
        prop_assert!(min_aff > 0.05, "min affinity {min_aff}");
    }

    #[test]
    fn synthetic_generator_respects_counts_and_model(
        seed in 0u64..200,
        l in 2usize..6,
        per in 4usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen_synth(&SyntheticConfig::paper(l, per), &mut rng);
        prop_assert_eq!(ds.data.len(), l * per);
        prop_assert_eq!(ds.model.num_subspaces(), l);
        // Every point is exactly on its model subspace.
        for j in 0..ds.data.len() {
            let basis = &ds.model.bases[ds.data.labels[j]];
            let x = ds.data.data.col(j);
            let c = basis.tr_matvec(x).unwrap();
            let p = basis.matvec(&c).unwrap();
            let err: f64 = p.iter().zip(x).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            prop_assert!(err < 1e-9);
        }
    }
}
