//! Property-based tests for the spectral-graph layer: normalized-Laplacian
//! spectral bounds and the component-counting identity the eigengap logic
//! rests on.

use fedsc_graph::laplacian::{laplacian_spectrum, normalized_laplacian, unnormalized_laplacian};
use fedsc_graph::AffinityGraph;
use fedsc_linalg::Matrix;
use proptest::prelude::*;

/// Random symmetric non-negative affinity on `n` nodes with edge
/// probability ~ density.
fn graph(n: usize, edges: Vec<(usize, usize, f64)>) -> AffinityGraph {
    let mut m = Matrix::zeros(n, n);
    for (i, j, w) in edges {
        let (i, j) = (i % n, j % n);
        if i != j {
            m[(i, j)] = w.abs();
            m[(j, i)] = w.abs();
        }
    }
    AffinityGraph::from_symmetric(&m)
}

fn graph_strategy() -> impl Strategy<Value = AffinityGraph> {
    (3usize..10).prop_flat_map(|n| {
        proptest::collection::vec(((0usize..n), (0usize..n), 0.1f64..5.0), 0..(n * 2))
            .prop_map(move |edges| graph(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalized_spectrum_is_in_zero_two(g in graph_strategy()) {
        let spec = laplacian_spectrum(&g).unwrap();
        for &ev in &spec.eigenvalues {
            prop_assert!(ev > -1e-9, "negative eigenvalue {ev}");
            prop_assert!(ev < 2.0 + 1e-9, "eigenvalue above 2: {ev}");
        }
    }

    #[test]
    fn zero_eigenvalue_multiplicity_counts_nontrivial_components(g in graph_strategy()) {
        // Isolated (degree-zero) nodes contribute eigenvalue 1 under our
        // documented normalized-Laplacian convention, so the classical
        // "zero multiplicity = component count" identity holds for the
        // components that actually contain edges.
        let comp = g.connected_components(0.0);
        let max = comp.iter().copied().max().unwrap_or(0);
        let nontrivial = (0..=max)
            .filter(|&c| (0..g.len()).filter(|&i| comp[i] == c).count() >= 2)
            .count();
        let spec = laplacian_spectrum(&g).unwrap();
        let zeros = spec.eigenvalues.iter().filter(|&&e| e.abs() < 1e-8).count();
        prop_assert_eq!(
            zeros, nontrivial,
            "{} zero eigenvalues vs {} non-trivial components", zeros, nontrivial
        );
    }

    #[test]
    fn unnormalized_laplacian_is_psd_with_zero_row_sums(g in graph_strategy()) {
        let l = unnormalized_laplacian(&g);
        let n = l.rows();
        for i in 0..n {
            let s: f64 = l.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-9, "row {i} sums to {s}");
        }
        // x^T L x = sum_{ij} w_ij (x_i - x_j)^2 / 2 >= 0 for a probe vector.
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let lx = l.matvec(&x).unwrap();
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        prop_assert!(quad > -1e-9, "quadratic form {quad}");
    }

    #[test]
    fn laplacian_is_symmetric(g in graph_strategy()) {
        let l = normalized_laplacian(&g);
        for i in 0..l.rows() {
            for j in 0..i {
                prop_assert!((l[(i, j)] - l[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn subgraph_of_component_is_connected(g in graph_strategy()) {
        let comp = g.connected_components(0.0);
        let max = comp.iter().copied().max().unwrap_or(0);
        for c in 0..=max {
            let nodes: Vec<usize> =
                (0..g.len()).filter(|&i| comp[i] == c).collect();
            let sub = g.subgraph(&nodes);
            prop_assert_eq!(sub.num_components(0.0), 1);
        }
    }
}
