//! Graph Laplacians and spectral quantities.
//!
//! The paper uses the *normalized* Laplacian
//! `L = I - D^{-1/2} W D^{-1/2}` everywhere: for normalized spectral
//! clustering, for the eigengap estimate of the local cluster count
//! (Eq. (3)), and for the CONN connectivity metric (second-smallest
//! eigenvalue per ground-truth cluster).

use crate::affinity::AffinityGraph;
use fedsc_linalg::eigh::{eigh, SymmetricEig};
use fedsc_linalg::{Matrix, Result};

/// Builds the normalized Laplacian `I - D^{-1/2} W D^{-1/2}`.
///
/// Isolated nodes (zero degree) contribute an identity row/column, i.e. an
/// eigenvalue of exactly 1 with that node's indicator as eigenvector — the
/// conventional choice that keeps the matrix well defined.
pub fn normalized_laplacian(g: &AffinityGraph) -> Matrix {
    let n = g.len();
    let deg = g.degrees();
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut l = Matrix::identity(n);
    for j in 0..n {
        for i in 0..n {
            let w = g.weight(i, j);
            if w != 0.0 {
                l[(i, j)] -= inv_sqrt[i] * w * inv_sqrt[j];
            }
        }
    }
    l
}

/// Builds the unnormalized Laplacian `D - W`.
pub fn unnormalized_laplacian(g: &AffinityGraph) -> Matrix {
    let n = g.len();
    let deg = g.degrees();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            l[(i, j)] = if i == j { deg[i] } else { -g.weight(i, j) };
        }
    }
    l
}

/// Full spectrum of the normalized Laplacian (ascending).
pub fn laplacian_spectrum(g: &AffinityGraph) -> Result<SymmetricEig> {
    eigh(&normalized_laplacian(g))
}

/// The paper's Eq. (3): estimates the number of clusters as the position of
/// the largest gap in the ascending normalized-Laplacian spectrum,
/// `r = argmax_{i in [n-1]} (sigma_{i+1} - sigma_i)` (1-based `i`, so the
/// returned count is in `1..n`).
///
/// `max_clusters` caps the search range (pass `None` to search the full
/// spectrum); capping matters in practice because trailing-spectrum gaps are
/// meaningless for cluster counting.
pub fn eigengap_cluster_count(eigenvalues: &[f64], max_clusters: Option<usize>) -> usize {
    let n = eigenvalues.len();
    if n <= 1 {
        return n;
    }
    let hi = max_clusters.map_or(n - 1, |m| m.min(n - 1));
    let mut best_i = 1usize;
    let mut best_gap = f64::NEG_INFINITY;
    for i in 1..=hi {
        let gap = eigenvalues[i] - eigenvalues[i - 1];
        if gap > best_gap {
            best_gap = gap;
            best_i = i;
        }
    }
    best_i
}

/// Relative-eigengap cluster count:
/// `r = argmax_i (sigma_{i+1} - sigma_i) / (sigma_{i+1} + eps)` with
/// `eps = 0.01 * sigma_max`.
///
/// The plain difference rule (Eq. (3), [`eigengap_cluster_count`]) can be
/// fooled by gaps in the bulk of the spectrum when within-cluster
/// connectivity is weak; dividing by `sigma_{i+1}` exploits the fact that
/// the first `r` eigenvalues of an `r`-component graph are (near) zero, so
/// the gap *at the component boundary* has relative size ~1. The `eps`
/// regularizer keeps eigenvalues below graph-noise scale (weak false
/// connections make the leading eigenvalues small-but-nonzero) from winning
/// on relative size alone. This is the robust variant Fed-SC uses by default
/// (Remark 1 motivates robustness of the eigenspectrum analysis); the
/// ablation bench compares both.
pub fn relative_eigengap_cluster_count(eigenvalues: &[f64], max_clusters: Option<usize>) -> usize {
    let n = eigenvalues.len();
    if n <= 1 {
        return n;
    }
    let hi = max_clusters.map_or(n - 1, |m| m.min(n - 1));
    let sigma_max = eigenvalues
        .last()
        .copied()
        .unwrap_or(0.0)
        .abs()
        .max(f64::EPSILON);
    let eps = 1e-2 * sigma_max;
    let mut best_i = 1usize;
    let mut best_gap = f64::NEG_INFINITY;
    for i in 1..=hi {
        let gap = (eigenvalues[i] - eigenvalues[i - 1]) / (eigenvalues[i].abs() + eps);
        if gap > best_gap {
            best_gap = gap;
            best_i = i;
        }
    }
    best_i
}

/// Convenience: spectrum + eigengap in one call.
pub fn estimate_num_clusters(g: &AffinityGraph, max_clusters: Option<usize>) -> Result<usize> {
    let spec = laplacian_spectrum(g)?;
    Ok(eigengap_cluster_count(&spec.eigenvalues, max_clusters))
}

/// Algebraic connectivity: the second-smallest eigenvalue of the normalized
/// Laplacian. Zero iff the graph is disconnected; used by the paper's CONN
/// metric. Graphs with fewer than two nodes return 0.
pub fn algebraic_connectivity(g: &AffinityGraph) -> Result<f64> {
    if g.len() < 2 {
        return Ok(0.0);
    }
    let spec = laplacian_spectrum(g)?;
    Ok(spec.eigenvalues[1].max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> AffinityGraph {
        // Nodes 0-2 fully connected, nodes 3-5 fully connected, no cross
        // edges.
        let mut m = Matrix::zeros(6, 6);
        for &(i, j) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            m[(i, j)] = 1.0;
            m[(j, i)] = 1.0;
        }
        AffinityGraph::from_symmetric(&m)
    }

    #[test]
    fn normalized_laplacian_of_regular_graph() {
        let g = two_triangles();
        let l = normalized_laplacian(&g);
        // Diagonal is 1, within-triangle entries are -1/2 (degree 2).
        assert!((l[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(0, 1)] + 0.5).abs() < 1e-12);
        assert_eq!(l[(0, 3)], 0.0);
    }

    #[test]
    fn zero_eigenvalue_multiplicity_counts_components() {
        let g = two_triangles();
        let spec = laplacian_spectrum(&g).unwrap();
        assert!(spec.eigenvalues[0].abs() < 1e-10);
        assert!(spec.eigenvalues[1].abs() < 1e-10);
        assert!(spec.eigenvalues[2] > 0.1);
    }

    #[test]
    fn eigengap_detects_two_clusters() {
        let g = two_triangles();
        let r = estimate_num_clusters(&g, None).unwrap();
        assert_eq!(r, 2);
    }

    #[test]
    fn eigengap_with_cap() {
        // Spectrum with the largest gap at position 4, capped to 2.
        let ev = [0.0, 0.01, 0.02, 0.03, 1.0];
        assert_eq!(eigengap_cluster_count(&ev, None), 4);
        assert_eq!(eigengap_cluster_count(&ev, Some(2)), 1);
    }

    #[test]
    fn eigengap_single_node() {
        assert_eq!(eigengap_cluster_count(&[0.0], None), 1);
        assert_eq!(eigengap_cluster_count(&[], None), 0);
    }

    #[test]
    fn algebraic_connectivity_zero_iff_disconnected() {
        let g = two_triangles();
        assert!(algebraic_connectivity(&g).unwrap() < 1e-10);
        // A single triangle is connected.
        let mut m = Matrix::zeros(3, 3);
        for &(i, j) in &[(0, 1), (0, 2), (1, 2)] {
            m[(i, j)] = 1.0;
            m[(j, i)] = 1.0;
        }
        let tri = AffinityGraph::from_symmetric(&m);
        assert!(algebraic_connectivity(&tri).unwrap() > 0.5);
    }

    #[test]
    fn unnormalized_laplacian_row_sums_vanish() {
        let g = two_triangles();
        let l = unnormalized_laplacian(&g);
        for i in 0..6 {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_node_is_handled() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let g = AffinityGraph::from_symmetric(&m);
        let l = normalized_laplacian(&g);
        assert_eq!(l[(2, 2)], 1.0);
        assert_eq!(l[(2, 0)], 0.0);
        // Still symmetric PSD: spectrum computes fine.
        let spec = laplacian_spectrum(&g).unwrap();
        assert!(spec.eigenvalues[0] > -1e-12);
    }
}
