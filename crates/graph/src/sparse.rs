//! Sparse (CSR) affinity graphs and Laplacians.
//!
//! The dense [`AffinityGraph`](crate::affinity::AffinityGraph) stores all
//! `n^2` weights, which caps the spectral pipeline around a few thousand
//! nodes. Candidate-restricted SSC codes have `O(k)` nonzeros per column, so
//! at `n = 16k` the affinity is ~99.7% zeros — this module keeps it in CSR
//! end to end: build from sparse codes (or a k-NN similarity scan), take
//! degrees from row sums, and assemble the normalized Laplacian as a CSR
//! matrix that the Lanczos solver consumes matrix-free (`SymOp` impl in
//! `fedsc-sparse`), never materializing an `n x n` dense array.
//!
//! Every constructor mirrors the dense arithmetic operation for operation
//! (same products, same association, same accumulation order), so on graphs
//! where both representations are affordable the sparse path is **bitwise**
//! the dense path — the parity tests below pin that down.

use crate::affinity::AffinityGraph;
use fedsc_linalg::par;
use fedsc_sparse::{CsrMatrix, SparseVec};

/// A non-negative symmetric affinity matrix with zero diagonal, stored in
/// CSR. The sparse counterpart of [`AffinityGraph`].
#[derive(Debug, Clone)]
pub struct SparseAffinity {
    w: CsrMatrix,
}

impl SparseAffinity {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.w.rows()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.w.rows() == 0
    }

    /// The CSR affinity matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.w
    }

    /// Edge weight between `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.w.get(i, j)
    }

    /// Builds `W = |C| + |C|^T` (zero diagonal) from per-point
    /// self-expression codes, where `codes[i]` is column `i` of `C` — the
    /// sparse counterpart of `AffinityGraph::from_coefficients`, bitwise
    /// equal entry for entry (IEEE addition is commutative, and each entry
    /// is the same single `|c_ij| + |c_ji|` sum).
    pub fn from_codes(codes: &[SparseVec]) -> Self {
        Self {
            w: CsrMatrix::symmetrized_affinity(codes),
        }
    }

    /// Sparse counterpart of `AffinityGraph::from_knn_similarity_threaded`:
    /// node `i` keeps edges to its `q` most similar peers, symmetrized by
    /// max, stored in CSR. The per-node scans fan out over `threads`; the
    /// max-merge runs sequentially in node order, so the edge set and
    /// weights are bitwise the dense constructor's for every thread count.
    pub fn from_knn_similarity_threaded<F>(
        n: usize,
        q: usize,
        threads: usize,
        similarity: F,
    ) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let q = q.min(n.saturating_sub(1));
        let top: Vec<Vec<(f64, usize)>> = par::par_map(n, threads, |i| {
            let mut sims: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (similarity(i, j), j))
                .collect();
            sims.sort_by(|a, b| b.0.total_cmp(&a.0));
            sims.truncate(q);
            sims
        });
        // Max-symmetrize into per-row sorted adjacency (duplicate-summing
        // triplets can't express "max", so merge explicitly).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let put_max = |rows: &mut Vec<Vec<(usize, f64)>>, i: usize, j: usize, s: f64| {
            let row = &mut rows[i];
            match row.binary_search_by_key(&j, |&(c, _)| c) {
                Ok(k) => {
                    if s > row[k].1 {
                        row[k].1 = s;
                    }
                }
                Err(k) => row.insert(k, (j, s)),
            }
        };
        for (i, sims) in top.iter().enumerate() {
            for &(s, j) in sims {
                if s > 0.0 {
                    let current = rows[i]
                        .binary_search_by_key(&j, |&(c, _)| c)
                        .map(|k| rows[i][k].1)
                        .unwrap_or(0.0);
                    if s > current {
                        put_max(&mut rows, i, j, s);
                        put_max(&mut rows, j, i, s);
                    }
                }
            }
        }
        let mut triplets = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for &(j, s) in row {
                triplets.push((i, j, s));
            }
        }
        Self {
            w: CsrMatrix::from_triplets(n, n, &triplets),
        }
    }

    /// Node degrees (row sums). Bitwise the dense `AffinityGraph::degrees`:
    /// stored entries sum in ascending column order and absent zeros would
    /// contribute `+0.0`, a bitwise no-op on these non-negative partials.
    pub fn degrees(&self) -> Vec<f64> {
        self.w.row_sums()
    }

    /// Densifies into an [`AffinityGraph`] (diagnostics / small graphs).
    /// `from_symmetric`'s `0.5 * (v + v)` is exact for finite weights, so
    /// the round trip is bitwise lossless.
    pub fn to_graph(&self) -> AffinityGraph {
        AffinityGraph::from_symmetric(&self.w.to_dense())
    }

    /// Number of connected components, counting edges with `|w| > tol`
    /// (isolated nodes are singleton components). One BFS sweep over the
    /// CSR rows — `O(n + nnz)`, no densification.
    ///
    /// The spectral guard needs this: a `c`-component graph's normalized
    /// Laplacian carries an exact `c`-fold zero eigenvalue, so an
    /// eigensolver that returns fewer zeros than components has provably
    /// missed part of the degenerate cluster.
    pub fn connected_components(&self, tol: f64) -> usize {
        self.component_labels(tol)
            .iter()
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0)
    }

    /// Per-node component label in `0..connected_components(tol)`, assigned
    /// in discovery order (node 0's component is label 0, the next
    /// undiscovered node starts label 1, ...). Same BFS and edge predicate
    /// as [`SparseAffinity::connected_components`].
    ///
    /// The spectral stage uses the labels to build **kernel seeds**: for
    /// each component `c` the vector `D^{1/2} 1_c` is an *exact* zero
    /// eigenvector of the normalized Laplacian, so seeding the eigensolver
    /// with them captures the full degenerate zero eigenspace of a
    /// disconnected graph by construction.
    pub fn component_labels(&self, tol: f64) -> Vec<usize> {
        let n = self.len();
        let mut label = vec![usize::MAX; n];
        let mut queue = Vec::new();
        let mut components = 0usize;
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            label[start] = components;
            queue.push(start);
            while let Some(i) = queue.pop() {
                for (j, w) in self.w.row(i) {
                    if j != i && w.abs() > tol && label[j] == usize::MAX {
                        label[j] = components;
                        queue.push(j);
                    }
                }
            }
            components += 1;
        }
        label
    }
}

/// Builds the normalized Laplacian `I - D^{-1/2} W D^{-1/2}` in CSR,
/// mirroring the dense `normalized_laplacian` arithmetic exactly: same
/// `1/sqrt(d)` scalings, same `(inv_i * w) * inv_j` product order, diagonal
/// exactly `1.0` (isolated nodes keep their identity row).
pub fn sparse_normalized_laplacian(g: &SparseAffinity) -> CsrMatrix {
    let n = g.len();
    let deg = g.degrees();
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut triplets = Vec::with_capacity(n + g.matrix().nnz());
    for i in 0..n {
        triplets.push((i, i, 1.0));
        for (j, w) in g.matrix().row(i) {
            if i != j && w != 0.0 {
                triplets.push((i, j, -(inv_sqrt[i] * w * inv_sqrt[j])));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::normalized_laplacian;
    use fedsc_linalg::Matrix;

    /// Sparse codes and the equivalent dense coefficient matrix.
    fn sample_codes() -> (Vec<SparseVec>, Matrix) {
        let n = 6;
        let entries: [&[(usize, f64)]; 6] = [
            &[(1, 0.8), (2, -0.3)],
            &[(0, 0.7), (3, 0.1)],
            &[(0, -0.4), (4, 0.9)],
            &[(1, 0.2), (5, -0.6)],
            &[(2, 0.5)],
            &[(3, -0.75), (4, 0.05)],
        ];
        let mut dense = Matrix::zeros(n, n);
        let codes = entries
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut idx = Vec::new();
                let mut val = Vec::new();
                for &(j, v) in row.iter() {
                    dense[(j, i)] = v;
                    idx.push(j);
                    val.push(v);
                }
                SparseVec::from_parts(n, idx, val)
            })
            .collect();
        (codes, dense)
    }

    #[test]
    fn from_codes_matches_dense_affinity_bitwise() {
        let (codes, dense) = sample_codes();
        let sparse = SparseAffinity::from_codes(&codes);
        let g = AffinityGraph::from_coefficients(&dense);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    sparse.weight(i, j).to_bits(),
                    g.weight(i, j).to_bits(),
                    "entry ({i},{j})"
                );
            }
        }
        assert_eq!(sparse.degrees(), g.degrees());
    }

    #[test]
    fn sparse_laplacian_matches_dense_bitwise() {
        let (codes, dense) = sample_codes();
        let sparse = SparseAffinity::from_codes(&codes);
        let lap_sparse = sparse_normalized_laplacian(&sparse);
        let lap_dense = normalized_laplacian(&AffinityGraph::from_coefficients(&dense));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    lap_sparse.get(i, j).to_bits(),
                    lap_dense[(i, j)].to_bits(),
                    "Laplacian entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn to_graph_round_trips_bitwise() {
        let (codes, _) = sample_codes();
        let sparse = SparseAffinity::from_codes(&codes);
        let g = sparse.to_graph();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(g.weight(i, j).to_bits(), sparse.weight(i, j).to_bits());
            }
        }
    }

    #[test]
    fn isolated_node_keeps_identity_row() {
        let codes = vec![
            SparseVec::from_parts(3, vec![1], vec![0.5]),
            SparseVec::from_parts(3, vec![0], vec![0.5]),
            SparseVec::from_parts(3, vec![], vec![]),
        ];
        let sparse = SparseAffinity::from_codes(&codes);
        let lap = sparse_normalized_laplacian(&sparse);
        assert_eq!(lap.get(2, 2), 1.0);
        assert_eq!(lap.get(2, 0), 0.0);
    }

    #[test]
    fn connected_components_counts_blocks_and_singletons() {
        // Two 2-cliques plus an isolated node: 3 components, one of which
        // is a degree-0 singleton.
        let codes = vec![
            SparseVec::from_parts(5, vec![1], vec![0.5]),
            SparseVec::from_parts(5, vec![0], vec![0.5]),
            SparseVec::from_parts(5, vec![3], vec![0.5]),
            SparseVec::from_parts(5, vec![2], vec![0.5]),
            SparseVec::from_parts(5, vec![], vec![]),
        ];
        let sparse = SparseAffinity::from_codes(&codes);
        assert_eq!(sparse.connected_components(0.0), 3);
        assert_eq!(sparse.component_labels(0.0), vec![0, 0, 1, 1, 2]);
        // A tolerance above the edge weight disconnects everything.
        assert_eq!(sparse.connected_components(2.0), 5);
        assert_eq!(sparse.component_labels(2.0), vec![0, 1, 2, 3, 4]);
        // Empty graph: zero components.
        assert_eq!(SparseAffinity::from_codes(&[]).connected_components(0.0), 0);
        assert!(SparseAffinity::from_codes(&[])
            .component_labels(0.0)
            .is_empty());
    }

    #[test]
    fn sparse_knn_matches_dense_knn_bitwise() {
        let sim = |i: usize, j: usize| 1.0 / (1.0 + (i as f64 - j as f64).abs());
        for threads in [1usize, 4] {
            let sparse = SparseAffinity::from_knn_similarity_threaded(7, 2, threads, sim);
            let dense = AffinityGraph::from_knn_similarity_threaded(7, 2, threads, sim);
            for i in 0..7 {
                for j in 0..7 {
                    assert_eq!(
                        sparse.weight(i, j).to_bits(),
                        dense.weight(i, j).to_bits(),
                        "knn entry ({i},{j}), {threads} threads"
                    );
                }
            }
        }
    }
}
