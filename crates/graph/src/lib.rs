//! # fedsc-graph
//!
//! Spectral-graph machinery for the Fed-SC reproduction.
//!
//! * [`affinity::AffinityGraph`] — symmetric non-negative affinity matrices
//!   with the SSC (`|C| + |C|^T`) and TSC (k-NN similarity) constructors,
//!   subgraphs, and connected components.
//! * [`laplacian`] — normalized/unnormalized Laplacians, spectra, the
//!   paper's Eq. (3) eigengap cluster-count estimate, and algebraic
//!   connectivity for the CONN metric.
//! * [`sparse`] — CSR affinity graphs ([`sparse::SparseAffinity`]) and the
//!   CSR normalized Laplacian for the subquadratic pipeline, bitwise
//!   mirrors of the dense constructors.

#![warn(missing_docs)]
// Indexed loops over matrix dimensions are the idiom in numerical kernels
// (parallel indexing of several buffers); iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod affinity;
pub mod laplacian;
pub mod sparse;

pub use affinity::AffinityGraph;
pub use sparse::SparseAffinity;
