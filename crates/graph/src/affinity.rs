//! Symmetric affinity graphs.
//!
//! Every spectral-based SC method in the paper reduces to building a
//! non-negative symmetric affinity matrix `W` over the data points and
//! feeding it to spectral clustering. This module is the shared
//! representation: a dense symmetric matrix wrapper with the constructors the
//! SC algorithms need (`|C| + |C|^T` from self-expression codes, k-NN
//! affinities from similarity scores).
//!
//! Affinity graphs in this workspace are at most a few thousand nodes
//! (local device data or the pooled server samples), so a dense symmetric
//! store keeps the spectral path simple; the sparse `CsrMatrix` remains
//! available upstream for code storage.

use fedsc_linalg::{par, Matrix};

/// A non-negative symmetric affinity matrix with zero diagonal.
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    w: Matrix,
}

impl AffinityGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.w.rows()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.w.rows() == 0
    }

    /// The affinity matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.w
    }

    /// Edge weight between `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.w[(i, j)]
    }

    /// Builds `W = |C| + |C|^T` from a (generally asymmetric) coefficient
    /// matrix, zeroing the diagonal — the SSC affinity construction.
    pub fn from_coefficients(c: &Matrix) -> Self {
        assert_eq!(c.rows(), c.cols(), "coefficient matrix must be square");
        let n = c.rows();
        let mut w = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i == j {
                    continue;
                }
                let v = c[(i, j)].abs() + c[(j, i)].abs();
                w[(i, j)] = v;
            }
        }
        let g = Self { w };
        g.debug_check();
        g
    }

    /// Builds a symmetric k-NN affinity graph: node `i` keeps edges to the
    /// `q` nodes with the largest `similarity(i, j)`, `j != i`, weighted by
    /// that similarity; the result is symmetrized by max. This is the TSC
    /// construction with `similarity = |cos|` of spherical distance.
    pub fn from_knn_similarity<F>(n: usize, q: usize, similarity: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        Self::from_knn_similarity_threaded(n, q, 1, similarity)
    }

    /// [`Self::from_knn_similarity`] with the per-node neighbor searches
    /// (the `O(n^2)` similarity scans) fanned out over `threads` workers.
    /// Each node's top-`q` list is computed independently; the max-symmetric
    /// merge runs sequentially in node order, so the graph is bitwise
    /// identical for every thread count.
    pub fn from_knn_similarity_threaded<F>(
        n: usize,
        q: usize,
        threads: usize,
        similarity: F,
    ) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let q = q.min(n.saturating_sub(1));
        let top: Vec<Vec<(f64, usize)>> = par::par_map(n, threads, |i| {
            let mut sims: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (similarity(i, j), j))
                .collect();
            // Partial selection of the q largest similarities.
            sims.sort_by(|a, b| b.0.total_cmp(&a.0));
            sims.truncate(q);
            sims
        });
        let mut w = Matrix::zeros(n, n);
        for (i, sims) in top.iter().enumerate() {
            for &(s, j) in sims {
                if s > 0.0 && s > w[(i, j)] {
                    w[(i, j)] = s;
                    w[(j, i)] = s;
                }
            }
        }
        let g = Self { w };
        g.debug_check();
        g
    }

    /// Wraps an existing symmetric non-negative matrix. Symmetry and
    /// non-negativity are enforced by averaging with the transpose, taking
    /// absolute values, and zeroing the diagonal.
    pub fn from_symmetric(m: &Matrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "affinity matrix must be square");
        let n = m.rows();
        let mut w = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                if i != j {
                    w[(i, j)] = 0.5 * (m[(i, j)].abs() + m[(j, i)].abs());
                }
            }
        }
        let g = Self { w };
        g.debug_check();
        g
    }

    /// Debug-build structural invariant: `W` is symmetric, non-negative,
    /// with a zero diagonal. Every constructor runs this before handing the
    /// graph to spectral clustering; compiles to nothing in release builds.
    fn debug_check(&self) {
        if cfg!(debug_assertions) {
            let n = self.len();
            for i in 0..n {
                debug_assert!(self.w[(i, i)].abs() <= 0.0, "nonzero diagonal at {i}");
                for j in i + 1..n {
                    debug_assert!(self.w[(i, j)] >= 0.0, "negative weight at ({i},{j})");
                    debug_assert!(
                        (self.w[(i, j)] - self.w[(j, i)]).abs() <= 1e-12,
                        "asymmetric weights at ({i},{j})"
                    );
                }
            }
        }
    }

    /// Node degrees (row sums).
    pub fn degrees(&self) -> Vec<f64> {
        let n = self.len();
        (0..n)
            .map(|i| (0..n).map(|j| self.w[(i, j)]).sum())
            .collect()
    }

    /// The subgraph induced by `nodes` (in the given order).
    pub fn subgraph(&self, nodes: &[usize]) -> AffinityGraph {
        let k = nodes.len();
        let mut w = Matrix::zeros(k, k);
        for (a, &i) in nodes.iter().enumerate() {
            for (b, &j) in nodes.iter().enumerate() {
                w[(a, b)] = self.w[(i, j)];
            }
        }
        AffinityGraph { w }
    }

    /// Connected components under strictly positive edge weights above
    /// `eps`. Returns a component id per node (ids are dense, starting at 0,
    /// in first-seen order).
    pub fn connected_components(&self, eps: f64) -> Vec<usize> {
        let n = self.len();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if comp[v] == usize::MAX && self.w[(u, v)] > eps {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Number of connected components (edges above `eps`).
    pub fn num_components(&self, eps: f64) -> usize {
        self.connected_components(eps)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coefficients_symmetrizes_and_zeroes_diagonal() {
        let c =
            Matrix::from_rows(&[&[5.0, -1.0, 0.0], &[2.0, 5.0, 0.0], &[0.0, 0.0, 5.0]]).unwrap();
        let g = AffinityGraph::from_coefficients(&c);
        assert_eq!(g.weight(0, 1), 3.0);
        assert_eq!(g.weight(1, 0), 3.0);
        assert_eq!(g.weight(0, 0), 0.0);
        assert_eq!(g.weight(2, 2), 0.0);
    }

    #[test]
    fn knn_keeps_top_q() {
        // similarity = 1/(1+|i-j|): nearest indices are most similar.
        let g = AffinityGraph::from_knn_similarity(5, 1, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs())
        });
        // Node 0's best neighbor is 1.
        assert!(g.weight(0, 1) > 0.0);
        assert_eq!(g.weight(0, 3), 0.0);
        // Symmetry.
        assert_eq!(g.weight(1, 0), g.weight(0, 1));
    }

    #[test]
    fn connected_components_two_blocks() {
        let m = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 2.0],
            &[0.0, 0.0, 2.0, 0.0],
        ])
        .unwrap();
        let g = AffinityGraph::from_symmetric(&m);
        let comp = g.connected_components(0.0);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(g.num_components(0.0), 2);
    }

    #[test]
    fn eps_threshold_cuts_weak_edges() {
        let m = Matrix::from_rows(&[&[0.0, 0.1], &[0.1, 0.0]]).unwrap();
        let g = AffinityGraph::from_symmetric(&m);
        assert_eq!(g.num_components(0.0), 1);
        assert_eq!(g.num_components(0.5), 2);
    }

    #[test]
    fn subgraph_extracts_block() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[1.0, 0.0, 3.0], &[2.0, 3.0, 0.0]]).unwrap();
        let g = AffinityGraph::from_symmetric(&m);
        let sub = g.subgraph(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.weight(0, 1), 2.0);
    }

    #[test]
    fn degrees_are_row_sums() {
        let m = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]).unwrap();
        let g = AffinityGraph::from_symmetric(&m);
        assert_eq!(g.degrees(), vec![2.0, 2.0]);
    }

    #[test]
    fn empty_graph() {
        let g = AffinityGraph::from_symmetric(&Matrix::zeros(0, 0));
        assert!(g.is_empty());
        assert_eq!(g.num_components(0.0), 0);
    }
}
