//! Cross-process fleet telemetry: the in-band envelope that carries a
//! [`TraceContext`], a merged [`MetricsSnapshot`], and completed span
//! lanes up an aggregation tree, plus the [`FleetCollector`] each
//! receiving tier uses to absorb and re-merge them.
//!
//! ## Envelope wire format (`FSCE`, version 1)
//!
//! An envelope is an optional *prefix* on an uplink payload. All integers
//! are little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "FSCE"
//! 4       2     version (1)
//! 6       2     section flags (bit 0 ctx, bit 1 metrics, bit 2 spans)
//! 8       4     total envelope length = offset of the inner payload
//! 12      ...   sections, in flag-bit order
//! ```
//!
//! The ctx section is 48 fixed bytes. The metrics section is a
//! length-prefixed snapshot (string names as `u16` length + UTF-8).
//! The spans section is a `u32` count of [`FleetSpan`] records. A
//! payload that does not start with the magic has no envelope; decoding
//! never guesses. The 16 high bits of the inner `UplinkMessage` sample
//! count would have to be `0x4546` ("EF") for a false positive — sample
//! counts are small, so the magic is unambiguous in practice.
//!
//! ## Clock alignment
//!
//! Every process stamps spans against its own trace epoch
//! ([`crate::now_ns`]). Before serializing, a sender shifts all span
//! timestamps (its own and any absorbed descendants') by its estimated
//! offset to its parent's clock, so offsets compose transitively up the
//! tree and the root receives root-clock times directly.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::trace::SpanEvent;
use std::collections::BTreeMap;

/// Envelope magic bytes.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"FSCE";
/// Envelope wire version.
pub const ENVELOPE_VERSION: u16 = 1;

const SECT_CTX: u16 = 1 << 0;
const SECT_METRICS: u16 = 1 << 1;
const SECT_SPANS: u16 = 1 << 2;
const HEADER_LEN: usize = 12;
const CTX_LEN: usize = 48;

/// Compact causal context carried with an uplink: who is sending, within
/// which round/tier, and which open span on the sender's side is the
/// causal parent of the receiver's handling span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Run identifier (the protocol seed serves in the demo binaries).
    pub run_id: u64,
    /// Protocol round number.
    pub round: u32,
    /// Link tier the message travels on (0 = device→first parent).
    pub tier: u32,
    /// Sender's node index within its level.
    pub node: u64,
    /// Receiver's node index within its level.
    pub parent: u64,
    /// Sender's process lane (Chrome `pid`).
    pub pid: u64,
    /// Sender's open span id (0 if the sender was untraced).
    pub parent_span: u64,
}

/// One completed span with its process lane attached — the cross-process
/// form of [`SpanEvent`] (fields are dropped; identity, timing, and
/// naming survive the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpan {
    /// Process lane (Chrome `pid`).
    pub pid: u64,
    /// Recording thread within the process.
    pub tid: u64,
    /// Span id, unique within `pid`.
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// Lane of the parent span; equal to `pid` for a local parent.
    /// 0 if and only if `parent` is 0.
    pub parent_pid: u64,
    /// Start in the carrying process's clock (root clock at the root).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Category.
    pub cat: String,
    /// Span name.
    pub name: String,
}

impl FleetSpan {
    /// Lifts a local [`SpanEvent`] into lane `pid`, resolving a local
    /// parent (`parent_pid == 0`) to the absolute lane.
    pub fn from_event(ev: &SpanEvent, pid: u64) -> Self {
        FleetSpan {
            pid,
            tid: ev.tid,
            id: ev.id,
            parent: ev.parent,
            parent_pid: if ev.parent == 0 {
                0
            } else if ev.parent_pid == 0 {
                pid
            } else {
                ev.parent_pid
            },
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
            cat: ev.cat.to_string(),
            name: ev.name.to_string(),
        }
    }

    /// Shifts the start timestamp by a clock offset (saturating at 0: a
    /// sender whose parent started later can at worst clamp to the
    /// parent's epoch, never wrap).
    pub fn shift(&mut self, offset_ns: i64) {
        self.start_ns = self.start_ns.saturating_add_signed(offset_ns);
    }
}

/// The decoded in-band telemetry prefix of an uplink payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Envelope {
    /// Causal context of this hop.
    pub ctx: Option<TraceContext>,
    /// Metrics merged over the sender's subtree (real-process mode only).
    pub metrics: Option<MetricsSnapshot>,
    /// Completed spans of the sender's subtree, in the sender's clock.
    pub spans: Vec<FleetSpan>,
}

impl Envelope {
    /// Whether the envelope carries nothing (and [`Envelope::wrap`] would
    /// return the payload unchanged).
    pub fn is_empty(&self) -> bool {
        self.ctx.is_none() && self.metrics.is_none() && self.spans.is_empty()
    }

    /// Serializes the envelope alone (header + sections).
    pub fn encode(&self) -> Vec<u8> {
        let mut flags = 0u16;
        if self.ctx.is_some() {
            flags |= SECT_CTX;
        }
        if self.metrics.is_some() {
            flags |= SECT_METRICS;
        }
        if !self.spans.is_empty() {
            flags |= SECT_SPANS;
        }
        let mut out = Vec::with_capacity(HEADER_LEN + CTX_LEN);
        out.extend_from_slice(&ENVELOPE_MAGIC);
        out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // total length, patched below
        if let Some(ctx) = &self.ctx {
            out.extend_from_slice(&ctx.run_id.to_le_bytes());
            out.extend_from_slice(&ctx.round.to_le_bytes());
            out.extend_from_slice(&ctx.tier.to_le_bytes());
            out.extend_from_slice(&ctx.node.to_le_bytes());
            out.extend_from_slice(&ctx.parent.to_le_bytes());
            out.extend_from_slice(&ctx.pid.to_le_bytes());
            out.extend_from_slice(&ctx.parent_span.to_le_bytes());
        }
        if let Some(snap) = &self.metrics {
            encode_metrics(snap, &mut out);
        }
        if !self.spans.is_empty() {
            out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
            for s in &self.spans {
                for v in [
                    s.pid,
                    s.tid,
                    s.id,
                    s.parent,
                    s.parent_pid,
                    s.start_ns,
                    s.dur_ns,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                encode_str(&s.cat, &mut out);
                encode_str(&s.name, &mut out);
            }
        }
        let total = out.len() as u32;
        out[8..12].copy_from_slice(&total.to_le_bytes());
        out
    }

    /// Serialized envelope length in bytes (0 when empty — [`wrap`]
    /// forwards an unprefixed payload then).
    ///
    /// [`wrap`]: Envelope::wrap
    pub fn encoded_len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.encode().len()
        }
    }

    /// Prefixes `payload` with this envelope. An empty envelope returns
    /// the payload unchanged, so untraced senders stay byte-identical.
    pub fn wrap(&self, payload: &[u8]) -> Vec<u8> {
        if self.is_empty() {
            return payload.to_vec();
        }
        let mut out = self.encode();
        out.extend_from_slice(payload);
        out
    }

    /// Splits a received payload into its optional envelope and the
    /// offset where the inner payload begins. A payload without the
    /// magic is passed through as `(None, 0)`; a payload *with* the
    /// magic that fails to decode is an error (never silently fed to the
    /// inner decoder).
    pub fn strip(bytes: &[u8]) -> Result<(Option<Envelope>, usize), &'static str> {
        if bytes.len() < HEADER_LEN || bytes[..4] != ENVELOPE_MAGIC {
            return Ok((None, 0));
        }
        let mut cur = Cursor { bytes, pos: 4 };
        let version = cur.u16()?;
        if version != ENVELOPE_VERSION {
            return Err("unsupported envelope version");
        }
        let flags = cur.u16()?;
        if flags & !(SECT_CTX | SECT_METRICS | SECT_SPANS) != 0 {
            return Err("unknown envelope section flags");
        }
        let total = cur.u32()? as usize;
        if total < HEADER_LEN || total > bytes.len() {
            return Err("envelope length out of range");
        }
        let mut env = Envelope::default();
        if flags & SECT_CTX != 0 {
            env.ctx = Some(TraceContext {
                run_id: cur.u64()?,
                round: cur.u32()?,
                tier: cur.u32()?,
                node: cur.u64()?,
                parent: cur.u64()?,
                pid: cur.u64()?,
                parent_span: cur.u64()?,
            });
        }
        if flags & SECT_METRICS != 0 {
            env.metrics = Some(decode_metrics(&mut cur)?);
        }
        if flags & SECT_SPANS != 0 {
            let n = cur.u32()? as usize;
            if n > (total - HEADER_LEN) / 58 + 1 {
                return Err("span count exceeds envelope length");
            }
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                let (pid, tid, id) = (cur.u64()?, cur.u64()?, cur.u64()?);
                let (parent, parent_pid) = (cur.u64()?, cur.u64()?);
                let (start_ns, dur_ns) = (cur.u64()?, cur.u64()?);
                let cat = cur.string()?;
                let name = cur.string()?;
                spans.push(FleetSpan {
                    pid,
                    tid,
                    id,
                    parent,
                    parent_pid,
                    start_ns,
                    dur_ns,
                    cat,
                    name,
                });
            }
            env.spans = spans;
        }
        if cur.pos != total {
            return Err("envelope sections disagree with declared length");
        }
        Ok((Some(env), total))
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn encode_metrics(snap: &MetricsSnapshot, out: &mut Vec<u8>) {
    out.extend_from_slice(&(snap.counters.len() as u32).to_le_bytes());
    for (name, v) in &snap.counters {
        encode_str(name, out);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(snap.gauges.len() as u32).to_le_bytes());
    for (name, v) in &snap.gauges {
        encode_str(name, out);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(snap.histograms.len() as u32).to_le_bytes());
    for (name, h) in &snap.histograms {
        encode_str(name, out);
        out.extend_from_slice(&(h.bounds.len() as u32).to_le_bytes());
        for b in &h.bounds {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
        for b in &h.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&h.count.to_le_bytes());
        out.extend_from_slice(&h.sum.to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], &'static str> {
        let end = self.pos.checked_add(n).ok_or("envelope offset overflow")?;
        if end > self.bytes.len() {
            return Err("truncated envelope");
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, &'static str> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn i64(&mut self) -> Result<i64, &'static str> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, &'static str> {
        let len = self.u16()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8 in envelope string")
    }
}

fn decode_metrics(cur: &mut Cursor<'_>) -> Result<MetricsSnapshot, &'static str> {
    let mut snap = MetricsSnapshot::default();
    let cap = cur.bytes.len(); // every entry consumes ≥ 2 bytes; bounds the loops
    let n = cur.u32()? as usize;
    if n > cap {
        return Err("counter count exceeds envelope length");
    }
    for _ in 0..n {
        let name = cur.string()?;
        let v = cur.u64()?;
        snap.counters.insert(name, v);
    }
    let n = cur.u32()? as usize;
    if n > cap {
        return Err("gauge count exceeds envelope length");
    }
    for _ in 0..n {
        let name = cur.string()?;
        let v = cur.i64()?;
        snap.gauges.insert(name, v);
    }
    let n = cur.u32()? as usize;
    if n > cap {
        return Err("histogram count exceeds envelope length");
    }
    for _ in 0..n {
        let name = cur.string()?;
        let nb = cur.u32()? as usize;
        if nb > cap {
            return Err("histogram bound count exceeds envelope length");
        }
        let mut bounds = Vec::with_capacity(nb);
        for _ in 0..nb {
            bounds.push(cur.u64()?);
        }
        let nk = cur.u32()? as usize;
        if nk > cap {
            return Err("histogram bucket count exceeds envelope length");
        }
        let mut buckets = Vec::with_capacity(nk);
        for _ in 0..nk {
            buckets.push(cur.u64()?);
        }
        let count = cur.u64()?;
        let sum = cur.u64()?;
        snap.histograms.insert(
            name,
            HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum,
            },
        );
    }
    Ok(snap)
}

/// Accumulates the telemetry of a subtree: absorbed child envelopes plus
/// the local process's own lane, ready to export at the root or to
/// forward (shifted into the parent's clock) from an aggregator.
#[derive(Debug, Clone, Default)]
pub struct FleetCollector {
    /// All collected spans, in this process's clock.
    pub spans: Vec<FleetSpan>,
    /// Merged metrics over the subtree.
    pub metrics: MetricsSnapshot,
    /// Every trace context seen (one per absorbed enveloped uplink).
    pub contexts: Vec<TraceContext>,
    /// Total serialized envelope bytes absorbed — the exact payload
    /// overhead telemetry added on this node's ingress.
    pub envelope_bytes: usize,
}

impl FleetCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one child envelope whose serialized form occupied
    /// `env_bytes` bytes of uplink payload.
    pub fn absorb(&mut self, env: &Envelope, env_bytes: usize) {
        self.envelope_bytes += env_bytes;
        if let Some(ctx) = env.ctx {
            self.contexts.push(ctx);
        }
        if let Some(m) = &env.metrics {
            self.metrics.merge(m);
        }
        self.spans.extend(env.spans.iter().cloned());
    }

    /// Adds this process's own completed spans under lane `pid`.
    pub fn add_local_events(&mut self, events: &[SpanEvent], pid: u64) {
        self.spans
            .extend(events.iter().map(|ev| FleetSpan::from_event(ev, pid)));
    }

    /// Merges this process's own metrics snapshot into the subtree's.
    pub fn merge_metrics(&mut self, snap: &MetricsSnapshot) {
        self.metrics.merge(snap);
    }

    /// Shifts every collected span into the parent's clock before
    /// forwarding (offsets compose transitively up the tree).
    pub fn shift(&mut self, offset_ns: i64) {
        for s in &mut self.spans {
            s.shift(offset_ns);
        }
    }

    /// Packages the subtree's telemetry for the next uplink hop.
    ///
    /// A one-shot sender necessarily ships while its enclosing round
    /// span is still open, so its completed spans may carry parent links
    /// to spans that will never leave the process. Any parent reference
    /// pointing outside the shipped set is cut here — the span survives
    /// as a lane root — so a merged fleet trace always resolves every
    /// parent edge it contains.
    pub fn to_envelope(&self, ctx: Option<TraceContext>) -> Envelope {
        let present: BTreeMap<(u64, u64), ()> =
            self.spans.iter().map(|s| ((s.pid, s.id), ())).collect();
        let mut spans = self.spans.clone();
        for s in &mut spans {
            if s.parent != 0 && !present.contains_key(&(s.parent_pid, s.parent)) {
                s.parent = 0;
                s.parent_pid = 0;
            }
        }
        let empty = MetricsSnapshot::default();
        Envelope {
            ctx,
            metrics: if self.metrics == empty {
                None
            } else {
                Some(self.metrics.clone())
            },
            spans,
        }
    }

    /// Sorted distinct process lanes seen so far.
    pub fn pids(&self) -> Vec<u64> {
        let set: BTreeMap<u64, ()> = self.spans.iter().map(|s| (s.pid, ())).collect();
        set.into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_ctx() -> TraceContext {
        TraceContext {
            run_id: 7,
            round: 1,
            tier: 2,
            node: 3,
            parent: 0,
            pid: 1003,
            parent_span: 42,
        }
    }

    fn demo_span(pid: u64, id: u64) -> FleetSpan {
        FleetSpan {
            pid,
            tid: 1,
            id,
            parent: 0,
            parent_pid: 0,
            start_ns: 1_000,
            dur_ns: 500,
            cat: "wire".to_string(),
            name: "wire.device_round".to_string(),
        }
    }

    fn demo_metrics() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a".to_string(), 3);
        snap.gauges.insert("g".to_string(), -2);
        snap.histograms.insert(
            "h".to_string(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                buckets: vec![1, 2, 3],
                count: 6,
                sum: 99,
            },
        );
        snap
    }

    #[test]
    fn to_envelope_cuts_parent_links_that_cannot_ship() {
        let mut fleet = FleetCollector::new();
        // Span 2 hangs off span 1 (an open round span that never ships);
        // span 3 hangs off span 2, which does ship.
        let mut orphan = demo_span(1003, 2);
        orphan.parent = 1;
        orphan.parent_pid = 1003;
        let mut child = demo_span(1003, 3);
        child.parent = 2;
        child.parent_pid = 1003;
        fleet.spans.push(orphan);
        fleet.spans.push(child);
        let env = fleet.to_envelope(None);
        assert_eq!((env.spans[0].parent, env.spans[0].parent_pid), (0, 0));
        assert_eq!((env.spans[1].parent, env.spans[1].parent_pid), (2, 1003));
        // The collector itself is untouched — only the shipped copy is cut.
        assert_eq!(fleet.spans[0].parent, 1);
    }

    #[test]
    fn envelope_round_trips_all_sections() {
        let env = Envelope {
            ctx: Some(demo_ctx()),
            metrics: Some(demo_metrics()),
            spans: vec![demo_span(1003, 1), demo_span(1003, 2)],
        };
        let payload = [1u8, 2, 3, 4];
        let wrapped = env.wrap(&payload);
        assert_eq!(env.encoded_len() + payload.len(), wrapped.len());
        let (decoded, at) = Envelope::strip(&wrapped).expect("valid envelope");
        assert_eq!(decoded, Some(env));
        assert_eq!(&wrapped[at..], &payload);
    }

    #[test]
    fn empty_envelope_is_byte_transparent() {
        let env = Envelope::default();
        assert!(env.is_empty());
        assert_eq!(env.encoded_len(), 0);
        let payload = [9u8, 8, 7];
        assert_eq!(env.wrap(&payload), payload.to_vec());
        let (decoded, at) = Envelope::strip(&payload).expect("no envelope");
        assert_eq!(decoded, None);
        assert_eq!(at, 0);
    }

    #[test]
    fn truncated_and_corrupt_envelopes_error_instead_of_passing_through() {
        let env = Envelope {
            ctx: Some(demo_ctx()),
            metrics: Some(demo_metrics()),
            spans: vec![demo_span(1, 1)],
        };
        let bytes = env.encode();
        for cut in HEADER_LEN..bytes.len() {
            assert!(
                Envelope::strip(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(Envelope::strip(&bad_version).is_err());
        let mut bad_flags = bytes.clone();
        bad_flags[6] = 0xFF;
        assert!(Envelope::strip(&bad_flags).is_err());
    }

    #[test]
    fn collector_absorbs_merges_and_shifts() {
        let mut fleet = FleetCollector::new();
        let child = Envelope {
            ctx: Some(demo_ctx()),
            metrics: Some(demo_metrics()),
            spans: vec![demo_span(1003, 1)],
        };
        let child_bytes = child.encode().len();
        fleet.absorb(&child, child_bytes);
        fleet.absorb(&child, child_bytes);
        assert_eq!(fleet.envelope_bytes, 2 * child_bytes);
        assert_eq!(fleet.metrics.counters.get("a"), Some(&6));
        assert_eq!(fleet.contexts.len(), 2);

        let ev = SpanEvent {
            cat: "wire",
            name: "wire.uplink",
            tid: 1,
            id: 9,
            parent: 5,
            parent_pid: 0,
            start_ns: 2_000,
            dur_ns: 10,
            fields: Vec::new(),
        };
        fleet.add_local_events(&[ev], 100);
        assert_eq!(fleet.pids(), vec![100, 1003]);
        let local = fleet.spans.last().expect("local span present");
        assert_eq!(local.parent_pid, 100, "local parent resolved to own lane");

        fleet.shift(-3_000);
        assert_eq!(fleet.spans[0].start_ns, 0, "saturates at the epoch");
        let env = fleet.to_envelope(None);
        assert_eq!(env.spans.len(), 3);
        assert!(env.metrics.is_some());
    }

    #[test]
    fn empty_collector_produces_empty_envelope() {
        let fleet = FleetCollector::new();
        let env = fleet.to_envelope(None);
        assert!(env.is_empty());
    }
}
