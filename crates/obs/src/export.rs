//! Exporters: Chrome `trace_event` JSON (Perfetto / `chrome://tracing`)
//! and a flat JSON metrics snapshot — plus a dependency-free validator
//! used by `cargo xtask validate-trace` and CI.
//!
//! Span events are emitted as complete (`"ph":"X"`) events with
//! microsecond `ts`/`dur`; the viewer reconstructs the span hierarchy
//! from time containment per `tid`, which matches how the spans nested
//! at runtime.

use crate::fleet::FleetSpan;
use crate::metrics::MetricsSnapshot;
use crate::trace::{FieldValue, SpanEvent};
use std::fmt::Write as _;

/// Escapes a string into a JSON string body (no surrounding quotes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds → microseconds with three decimals, as Chrome expects.
fn push_us(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Emits the span-identity args (`span_id`, and for parented spans
/// `parent_span`/`parent_pid`, the latter resolved to `own_pid` when the
/// parent is local). No-op for id 0 (pre-identity or synthetic events).
fn push_identity_args(id: u64, parent: u64, parent_pid: u64, own_pid: u64, out: &mut String) {
    if id == 0 {
        return;
    }
    let _ = write!(out, "\"span_id\":{id}");
    if parent != 0 {
        let ppid = if parent_pid == 0 { own_pid } else { parent_pid };
        let _ = write!(out, ",\"parent_span\":{parent},\"parent_pid\":{ppid}");
    }
}

/// Serializes span events as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(ev.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(ev.cat, &mut out);
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(ev.start_ns, &mut out);
        out.push_str(",\"dur\":");
        push_us(ev.dur_ns, &mut out);
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
        if !ev.fields.is_empty() || ev.id != 0 {
            out.push_str(",\"args\":{");
            push_identity_args(ev.id, ev.parent, ev.parent_pid, 1, &mut out);
            for (j, (key, value)) in ev.fields.iter().enumerate() {
                if j > 0 || ev.id != 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(key, &mut out);
                out.push_str("\":");
                push_field_value(value, &mut out);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serializes a merged fleet trace: one Chrome `pid` lane per process
/// (named via `process_name` metadata events from `process_names`), all
/// timestamps already aligned to the root clock by the envelope path.
pub fn fleet_chrome_trace_json(spans: &[FleetSpan], process_names: &[(u64, String)]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in process_names {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"args\":{{\"name\":\""
        );
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(&s.cat, &mut out);
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(s.start_ns, &mut out);
        out.push_str(",\"dur\":");
        push_us(s.dur_ns, &mut out);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", s.pid, s.tid);
        if s.id != 0 {
            out.push_str(",\"args\":{");
            push_identity_args(s.id, s.parent, s.parent_pid, s.pid, &mut out);
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serializes a metrics snapshot as flat JSON:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{"buckets":{"le_10":n,…,"inf":n},"count":c,"sum":s}}}`.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        out.push_str("\":{\"buckets\":{");
        let mut first = true;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"le_{bound}\":{count}");
        }
        if let Some(overflow) = h.buckets.last() {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "\"inf\":{overflow}");
        }
        let _ = write!(out, "}},\"count\":{},\"sum\":{}}}", h.count, h.sum);
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------------
// Validation: a minimal recursive-descent JSON reader, enough to check that
// an exported trace is well-formed `trace_event` JSON without pulling in a
// serde stack.
// ---------------------------------------------------------------------------

/// Parsed JSON value (validation-oriented: numbers stay `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        if self.bump() == Some(want) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogates collapse to the replacement char:
                        // fine for validation purposes.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    // Re-assemble multi-byte utf-8 sequences.
                    let len = utf8_len(c);
                    if len == 1 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Validates that `text` is well-formed Chrome `trace_event` JSON: a root
/// object with a `traceEvents` array whose entries each carry a string
/// `name`, string `ph`, and numeric `ts` (plus numeric `dur` for `"X"`
/// complete events). Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err("`traceEvents` is not an array".to_string()),
        None => return Err("missing `traceEvents` key".to_string()),
    };
    for (i, ev) in events.iter().enumerate() {
        let obj = match ev {
            Json::Obj(_) => ev,
            _ => return Err(format!("traceEvents[{i}] is not an object")),
        };
        match obj.get("name") {
            Some(Json::Str(_)) => {}
            _ => return Err(format!("traceEvents[{i}] lacks a string `name`")),
        }
        let ph = match obj.get("ph") {
            Some(Json::Str(ph)) => ph.clone(),
            _ => return Err(format!("traceEvents[{i}] lacks a string `ph`")),
        };
        match obj.get("ts") {
            Some(Json::Num(ts)) if ts.is_finite() && *ts >= 0.0 => {}
            _ => return Err(format!("traceEvents[{i}] lacks a finite `ts`")),
        }
        if ph == "X" {
            match obj.get("dur") {
                Some(Json::Num(d)) if d.is_finite() && *d >= 0.0 => {}
                _ => return Err(format!("traceEvents[{i}] is `X` without a finite `dur`")),
            }
        }
    }
    Ok(events.len())
}

/// Tolerance for the child-before-parent check, in microseconds. Clock
/// offsets come from a midpoint estimator whose worst-case error is half
/// the handshake RTT; on the loopback/LAN links the fleet runs over that
/// is well under a millisecond.
const CROSS_PROCESS_SLACK_US: f64 = 1_000.0;

/// Validates cross-process causality on a (merged) Chrome trace, on top
/// of [`validate_chrome_trace`]'s structural checks: every `X` event
/// carrying a `parent_span` arg must name a parent `(parent_pid,
/// parent_span)` that exists in the trace, and must not start earlier
/// than its parent (beyond the clock-offset slack). Returns `(events,
/// checked_edges)`; a trace with zero parented spans fails — a merged
/// fleet trace with no causal links means propagation is broken.
pub fn validate_cross_process(text: &str) -> Result<(usize, usize), String> {
    let n = validate_chrome_trace(text)?;
    let doc = parse_json(text)?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing `traceEvents` array".to_string()),
    };
    let num = |ev: &Json, key: &str| -> Option<f64> {
        match ev.get(key) {
            Some(Json::Num(v)) => Some(*v),
            _ => None,
        }
    };
    let arg = |ev: &Json, key: &str| -> Option<f64> { ev.get("args").and_then(|a| num(a, key)) };
    // First pass: index every span by (pid, span_id) → start ts.
    let mut starts: std::collections::BTreeMap<(u64, u64), f64> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        if let (Some(pid), Some(id), Some(ts)) = (num(ev, "pid"), arg(ev, "span_id"), num(ev, "ts"))
        {
            if id != 0.0 && starts.insert((pid as u64, id as u64), ts).is_some() {
                return Err(format!(
                    "traceEvents[{i}]: duplicate span id {id} in pid {pid}"
                ));
            }
        }
    }
    // Second pass: resolve every parent edge.
    let mut edges = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Some(parent) = arg(ev, "parent_span") else {
            continue;
        };
        let ppid = arg(ev, "parent_pid")
            .or_else(|| num(ev, "pid"))
            .unwrap_or(0.0);
        let key = (ppid as u64, parent as u64);
        let Some(&parent_ts) = starts.get(&key) else {
            return Err(format!(
                "traceEvents[{i}]: parent span {parent} in pid {ppid} does not exist in the trace"
            ));
        };
        let ts = num(ev, "ts").unwrap_or(0.0);
        if ts + CROSS_PROCESS_SLACK_US < parent_ts {
            return Err(format!(
                "traceEvents[{i}]: starts at {ts}us, {}us before its pid-{ppid} parent at {parent_ts}us",
                parent_ts - ts
            ));
        }
        edges += 1;
    }
    if edges == 0 {
        return Err("trace has no parent-linked spans — causal propagation is broken".to_string());
    }
    Ok((n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn demo_event() -> SpanEvent {
        SpanEvent {
            cat: "phase",
            name: "local.ssc",
            tid: 2,
            id: 0,
            parent: 0,
            parent_pid: 0,
            start_ns: 1_234_567,
            dur_ns: 89_012,
            fields: vec![
                ("device", FieldValue::U64(3)),
                ("backend", FieldValue::Str("ssc")),
                ("ok", FieldValue::Bool(true)),
                ("rho", FieldValue::F64(0.5)),
            ],
        }
    }

    #[test]
    fn chrome_export_round_trips_through_validator() {
        let text = chrome_trace_json(&[demo_event(), demo_event()]);
        assert_eq!(validate_chrome_trace(&text), Ok(2));
        // Microsecond conversion: 1_234_567 ns = 1234.567 us.
        assert!(text.contains("\"ts\":1234.567"), "{text}");
        assert!(text.contains("\"dur\":89.012"), "{text}");
        assert!(
            text.contains("\"args\":{\"device\":3,\"backend\":\"ssc\",\"ok\":true,\"rho\":0.5}")
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&text), Ok(0));
    }

    #[test]
    fn nonfinite_field_values_become_null() {
        let mut ev = demo_event();
        ev.fields = vec![("bad", FieldValue::F64(f64::NAN))];
        let text = chrome_trace_json(&[ev]);
        assert!(text.contains("\"bad\":null"), "{text}");
        assert_eq!(validate_chrome_trace(&text), Ok(1));
    }

    #[test]
    fn metrics_export_is_parseable_and_sorted() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("b.count".to_string(), 2);
        snap.counters.insert("a.count".to_string(), 1);
        snap.gauges.insert("g.depth".to_string(), -3);
        snap.histograms.insert(
            "h.lat".to_string(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                buckets: vec![1, 2, 3],
                count: 6,
                sum: 420,
            },
        );
        let text = metrics_json(&snap);
        let doc = parse_json(&text).expect("parses");
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("a.count")),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            doc.get("gauges").and_then(|g| g.get("g.depth")),
            Some(&Json::Num(-3.0))
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("h.lat"))
            .expect("histogram");
        assert_eq!(h.get("count"), Some(&Json::Num(6.0)));
        assert_eq!(
            h.get("buckets").and_then(|b| b.get("le_10")),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            h.get("buckets").and_then(|b| b.get("inf")),
            Some(&Json::Num(3.0))
        );
        // BTree ordering: "a.count" serialized before "b.count".
        assert!(text.find("a.count") < text.find("b.count"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (text, why) in [
            ("", "empty"),
            ("{", "unclosed object"),
            ("[]", "no traceEvents"),
            ("{\"traceEvents\":1}", "traceEvents not an array"),
            ("{\"traceEvents\":[{\"ph\":\"X\"}]}", "event without name"),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0}]}",
                "X event without dur",
            ),
            ("{\"traceEvents\":[]} trailing", "trailing data"),
        ] {
            assert!(validate_chrome_trace(text).is_err(), "{why}");
        }
    }

    fn fleet_span(pid: u64, id: u64, parent: u64, parent_pid: u64, start_ns: u64) -> FleetSpan {
        FleetSpan {
            pid,
            tid: 1,
            id,
            parent,
            parent_pid,
            start_ns,
            dur_ns: 1_000,
            cat: "wire".to_string(),
            name: "wire.uplink".to_string(),
        }
    }

    #[test]
    fn identity_args_are_emitted_and_survive_validation() {
        let mut ev = demo_event();
        ev.id = 5;
        ev.parent = 3;
        let parent = SpanEvent {
            id: 3,
            parent: 0,
            fields: Vec::new(),
            start_ns: 1_000_000,
            ..demo_event()
        };
        let text = chrome_trace_json(&[parent, ev]);
        assert!(text.contains("\"span_id\":5"), "{text}");
        assert!(
            text.contains("\"parent_span\":3,\"parent_pid\":1"),
            "local parent resolves to pid 1: {text}"
        );
        let (events, edges) = validate_cross_process(&text).expect("valid");
        assert_eq!((events, edges), (2, 1));
    }

    #[test]
    fn fleet_export_names_lanes_and_validates() {
        let spans = vec![
            fleet_span(1000, 1, 0, 0, 5_000_000),
            fleet_span(1, 2, 1, 1000, 9_000_000),
        ];
        let names = vec![
            (1u64, "root".to_string()),
            (1000u64, "device-0".to_string()),
        ];
        let text = fleet_chrome_trace_json(&spans, &names);
        assert!(text.contains("\"process_name\""), "{text}");
        assert!(text.contains("\"pid\":1000"), "{text}");
        let (events, edges) = validate_cross_process(&text).expect("valid fleet trace");
        assert_eq!(events, 4, "2 metadata + 2 spans");
        assert_eq!(edges, 1);
    }

    #[test]
    fn cross_process_validation_catches_broken_causality() {
        // Missing parent: the child names (pid 1000, id 9) which no one owns.
        let orphan = vec![fleet_span(1, 2, 9, 1000, 9_000_000)];
        let text = fleet_chrome_trace_json(&orphan, &[]);
        assert!(validate_cross_process(&text).is_err_and(|e| e.contains("does not exist")));

        // Child starts (beyond slack) before its parent: offsets are wrong.
        let skewed = vec![
            fleet_span(1000, 1, 0, 0, 9_000_000),
            fleet_span(1, 2, 1, 1000, 1_000_000),
        ];
        let text = fleet_chrome_trace_json(&skewed, &[]);
        assert!(validate_cross_process(&text).is_err_and(|e| e.contains("before its")));

        // No links at all: a merged trace must carry causal edges.
        let flat = vec![fleet_span(1, 1, 0, 0, 0), fleet_span(2, 1, 0, 0, 0)];
        let text = fleet_chrome_trace_json(&flat, &[]);
        assert!(validate_cross_process(&text).is_err_and(|e| e.contains("no parent-linked")));

        // Duplicate (pid, id): lanes collided.
        let dup = vec![fleet_span(1, 1, 0, 0, 0), fleet_span(1, 1, 0, 0, 5)];
        let text = fleet_chrome_trace_json(&dup, &[]);
        assert!(validate_cross_process(&text).is_err_and(|e| e.contains("duplicate")));
    }

    #[test]
    fn parser_handles_escapes_numbers_and_nesting() {
        let doc = parse_json(
            "{\"s\":\"a\\n\\u0041\\\"\",\"n\":[-1.5e2,0.25],\"b\":[true,false,null],\"o\":{\"k\":{}}}",
        )
        .expect("parses");
        assert_eq!(doc.get("s"), Some(&Json::Str("a\nA\"".to_string())));
        assert_eq!(
            doc.get("n"),
            Some(&Json::Arr(vec![Json::Num(-150.0), Json::Num(0.25)]))
        );
    }

    #[test]
    fn parser_depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
    }
}
