//! Process-global metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Metrics are **always on** — a handful of relaxed atomic adds per
//! instrumented operation — because unlike spans they never read the
//! clock and never allocate on the hot path. Instrumentation sites
//! declare a `static` [`LazyCounter`] / [`LazyGauge`] /
//! [`LazyHistogram`] that registers itself on first use, so recording
//! is one `OnceLock` read plus one atomic op.
//!
//! The registry key space is flat dotted names (`"transport.bytes_sent"`,
//! `"pool.tasks"`); [`snapshot`] walks it in sorted (BTree) order so the
//! exported JSON is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — statistical telemetry; counts need to be
        // eventually visible and lost-update-free (RMW), never to order
        // any other memory. Same for every metric cell in this module.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — see `Counter::add`.
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        // ORDERING: Relaxed — see `Counter::add`.
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// Fixed-bucket histogram: bucket `i` counts observations `<= bounds[i]`
/// (non-cumulative storage), with one overflow bucket past the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut buckets = Vec::with_capacity(sorted.len() + 1);
        for _ in 0..=sorted.len() {
            buckets.push(AtomicU64::new(0));
        }
        Histogram {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        // ORDERING: Relaxed — statistical telemetry (see `Counter::add`);
        // bucket/count/sum need not be mutually consistent at any instant,
        // only individually lost-update-free.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ORDERING: as above.
        self.sum.fetch_add(v, Ordering::Relaxed); // ORDERING: as above.
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
            b.store(0, Ordering::Relaxed);
        }
        // ORDERING: Relaxed — statistical telemetry; see `Counter::add`.
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed); // ORDERING: as above.
    }
}

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: RwLock<BTreeMap<&'static str, Metric>> = RwLock::new(BTreeMap::new());

fn read_registry() -> std::sync::RwLockReadGuard<'static, BTreeMap<&'static str, Metric>> {
    match REGISTRY.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_registry() -> std::sync::RwLockWriteGuard<'static, BTreeMap<&'static str, Metric>> {
    match REGISTRY.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Returns (registering on first use) the counter named `name`. If the
/// name is already registered as a different kind, a detached counter is
/// returned instead of panicking — the collision shows up in review as a
/// metric that never moves in snapshots.
pub fn counter(name: &'static str) -> Arc<Counter> {
    if let Some(Metric::Counter(c)) = read_registry().get(name) {
        return Arc::clone(c);
    }
    let mut reg = write_registry();
    match reg.get(name) {
        Some(Metric::Counter(c)) => Arc::clone(c),
        Some(_) => Arc::new(Counter::default()),
        None => {
            let c = Arc::new(Counter::default());
            reg.insert(name, Metric::Counter(Arc::clone(&c)));
            c
        }
    }
}

/// Returns (registering on first use) the gauge named `name`. Kind
/// collisions yield a detached gauge, as with [`counter`].
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    if let Some(Metric::Gauge(g)) = read_registry().get(name) {
        return Arc::clone(g);
    }
    let mut reg = write_registry();
    match reg.get(name) {
        Some(Metric::Gauge(g)) => Arc::clone(g),
        Some(_) => Arc::new(Gauge::default()),
        None => {
            let g = Arc::new(Gauge::default());
            reg.insert(name, Metric::Gauge(Arc::clone(&g)));
            g
        }
    }
}

/// Returns (registering on first use) the histogram named `name` with the
/// given upper bucket bounds. The first registration fixes the bounds;
/// kind collisions yield a detached histogram, as with [`counter`].
pub fn histogram(name: &'static str, bounds: &[u64]) -> Arc<Histogram> {
    if let Some(Metric::Histogram(h)) = read_registry().get(name) {
        return Arc::clone(h);
    }
    let mut reg = write_registry();
    match reg.get(name) {
        Some(Metric::Histogram(h)) => Arc::clone(h),
        Some(_) => Arc::new(Histogram::new(bounds)),
        None => {
            let h = Arc::new(Histogram::new(bounds));
            reg.insert(name, Metric::Histogram(Arc::clone(&h)));
            h
        }
    }
}

/// A `static`-friendly counter handle: resolves its registry entry once.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares a counter named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter.
    pub fn handle(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.handle().inc();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A `static`-friendly gauge handle: resolves its registry entry once.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declares a gauge named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying gauge.
    pub fn handle(&self) -> &Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.handle().set(v);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.handle().add(delta);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.handle().get()
    }
}

/// A `static`-friendly histogram handle: resolves its registry entry once.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    bounds: &'static [u64],
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a histogram named `name` with upper bucket bounds `bounds`.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        LazyHistogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram.
    pub fn handle(&self) -> &Histogram {
        self.cell.get_or_init(|| histogram(self.name, self.bounds))
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.handle().observe(v);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `buckets[i]` pairs with `bounds[i]`, with one
    /// trailing overflow bucket (`> bounds.last()`).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Merges `other` into `self` by **union of bounds**: each bucket
    /// count stays attached to its original upper bound, the merged bound
    /// set is the sorted union, and the overflow buckets add. Because a
    /// count never moves to a different bound, the operation is
    /// associative and commutative — any merge order across an
    /// aggregation tree yields the identical snapshot. The price is that
    /// a merged bucket's count only means "observations ≤ this bound
    /// recorded by a process using this bound", not a re-bucketing.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut per_bound: BTreeMap<u64, u64> = BTreeMap::new();
        let mut overflow = 0u64;
        for snap in [&*self, other] {
            for (i, &c) in snap.buckets.iter().enumerate() {
                match snap.bounds.get(i) {
                    Some(&b) => *per_bound.entry(b).or_insert(0) += c,
                    None => overflow += c,
                }
            }
        }
        self.bounds = per_bound.keys().copied().collect();
        self.buckets = per_bound.values().copied().collect();
        self.buckets.push(overflow);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Point-in-time copy of the whole registry, sorted by name. Keys are
/// owned strings so snapshots can cross process boundaries via the fleet
/// envelope (see [`crate::fleet`]) and merge up an aggregation tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and gauges add per name,
    /// histograms merge by union of bounds (see
    /// [`HistogramSnapshot::merge`]). Associative and commutative, so a
    /// root export is independent of the tier merge order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (&name, metric) in read_registry().iter() {
        match metric {
            Metric::Counter(c) => {
                snap.counters.insert(name.to_string(), c.get());
            }
            Metric::Gauge(g) => {
                snap.gauges.insert(name.to_string(), g.get());
            }
            Metric::Histogram(h) => {
                snap.histograms.insert(
                    name.to_string(),
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            // ORDERING: Relaxed — statistical telemetry; a
                            // snapshot racing concurrent observes is a
                            // point-in-time approximation by design.
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                );
            }
        }
    }
    snap
}

/// Zeroes every registered metric (handles held by `Lazy*` statics stay
/// valid). Intended for test/bench isolation, not for production paths.
pub fn reset() {
    for metric in read_registry().values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global and one test calls [`reset`];
    /// serialize so value assertions cannot race.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let _g = guard();
        static C: LazyCounter = LazyCounter::new("test.metrics.counter_a");
        static G: LazyGauge = LazyGauge::new("test.metrics.gauge_a");
        C.add(2);
        C.inc();
        G.set(5);
        G.add(-2);
        assert_eq!(C.get(), 3);
        assert_eq!(G.get(), 3);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.metrics.counter_a"), Some(&3));
        assert_eq!(snap.gauges.get("test.metrics.gauge_a"), Some(&3));
    }

    #[test]
    fn registry_returns_the_same_instance_per_name() {
        let _g = guard();
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        a.add(1);
        b.add(1);
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kind_collision_yields_detached_metric_not_panic() {
        let _g = guard();
        let c = counter("test.metrics.collide");
        c.add(7);
        let g = gauge("test.metrics.collide");
        g.set(99);
        // The original counter is untouched and still registered.
        assert_eq!(counter("test.metrics.collide").get(), 7);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.metrics.collide"), Some(&7));
        assert!(!snap.gauges.contains_key("test.metrics.collide"));
    }

    #[test]
    fn histogram_buckets_partition_correctly() {
        let _g = guard();
        static H: LazyHistogram = LazyHistogram::new("test.metrics.hist", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            H.observe(v);
        }
        let snap = snapshot();
        let h = snap.histograms.get("test.metrics.hist").unwrap();
        assert_eq!(h.bounds, vec![10, 100, 1000]);
        // <=10: {1, 10}; <=100: {11, 100}; <=1000: {}; overflow: {5000}.
        assert_eq!(h.buckets, vec![2, 2, 0, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_alive() {
        let _g = guard();
        static C: LazyCounter = LazyCounter::new("test.metrics.reset_me");
        C.add(9);
        reset();
        assert_eq!(C.get(), 0);
        C.add(4);
        assert_eq!(C.get(), 4);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let _g = guard();
        static C: LazyCounter = LazyCounter::new("test.metrics.concurrent");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 4000);
    }
}
