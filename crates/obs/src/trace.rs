//! Structured spans recorded into a lock-minimal ring buffer.
//!
//! A [`Span`] is an RAII guard: creation stamps the start time, drop
//! stamps the duration and pushes one [`SpanEvent`] into the installed
//! ring. Hierarchy is positional — a span opened while another is open
//! on the same thread nests inside it by time, which is exactly how the
//! Chrome `trace_event` viewer reconstructs the tree from `"X"` events.
//!
//! With no recorder installed (the default), [`span`] reads one relaxed
//! atomic and returns an inert guard: no clock read, no allocation, no
//! locking — the "no-op global recorder".

use crate::clock::now_ns;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A typed span field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (field values never allocate).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// One completed span, as stored in the ring and fed to the exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Category (`"phase"`, `"wire"`, `"pool"`, …).
    pub cat: &'static str,
    /// Static span name (`"local.ssc"`, `"wire.device_round"`, …).
    pub name: &'static str,
    /// Small dense id of the recording thread (see [`thread_id`]).
    pub tid: u64,
    /// Process-unique span id (never 0 for a recorded span). Ids are only
    /// unique *within* a process; cross-process consumers key on
    /// `(pid, id)` where the pid lane comes from the fleet envelope.
    pub id: u64,
    /// Span id of the causal parent, or 0 for a root span. Local by
    /// default (the enclosing span on the same thread); a remote parent
    /// set via [`Span::remote_parent`] additionally carries `parent_pid`.
    pub parent: u64,
    /// Process lane of a remote parent, or 0 when the parent (if any)
    /// lives in the same process.
    pub parent_pid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Typed key/value annotations attached via [`Span::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Fixed-capacity ring of completed spans. Claiming a slot is one
/// relaxed `fetch_add`; each slot has its own mutex, contended only when
/// two writers collide on the same index modulo capacity.
struct Ring {
    slots: Vec<Mutex<Option<SpanEvent>>>,
    head: AtomicUsize,
    overwritten: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Mutex::new(None));
        }
        Ring {
            slots,
            head: AtomicUsize::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: SpanEvent) {
        // ORDERING: Relaxed — `head` only hands out unique slot indices;
        // the event payload itself is published by the slot mutex.
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = match self.slots[i].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.replace(ev).is_some() {
            // ORDERING: Relaxed — statistical loss counter; eventual
            // visibility suffices (see `overwritten()`).
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes and returns every recorded event, oldest first.
    fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let mut guard = match slot.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(ev) = guard.take() {
                out.push(ev);
            }
        }
        out.sort_by(|a, b| (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name)));
        out
    }
}

/// Fast-path gate: checked before anything else on every `span` call.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed ring, if any. Read-locked only on the enabled path.
static RECORDER: RwLock<Option<Arc<Ring>>> = RwLock::new(None);

fn recorder() -> Option<Arc<Ring>> {
    let guard = match RECORDER.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.as_ref().map(Arc::clone)
}

/// Installs a ring-buffer recorder with space for `capacity` spans and
/// enables tracing. Replaces (and discards) any previous recorder.
pub fn install_ring(capacity: usize) {
    let ring = Arc::new(Ring::new(capacity));
    match RECORDER.write() {
        Ok(mut g) => *g = Some(ring),
        Err(poisoned) => *poisoned.into_inner() = Some(ring),
    }
    // ORDERING: SeqCst — deliberate on/off edges: install/uninstall are
    // rare, and a single total order for the flag flips keeps the fast
    // path (`is_enabled`, `span`) safely Relaxed — worst case a span near
    // the edge is dropped, never torn, since payload flows via `RECORDER`.
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables tracing, removes the recorder, and returns everything it
/// held (oldest first). With no recorder installed, returns empty.
pub fn uninstall() -> Vec<SpanEvent> {
    // ORDERING: SeqCst — see the matching store in `install_ring`.
    ENABLED.store(false, Ordering::SeqCst);
    let ring = match RECORDER.write() {
        Ok(mut g) => g.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    ring.map(|r| r.drain()).unwrap_or_default()
}

/// Drains the currently installed ring without uninstalling it.
pub fn drain() -> Vec<SpanEvent> {
    recorder().map(|r| r.drain()).unwrap_or_default()
}

/// Number of spans lost to ring overwrites since install.
pub fn overwritten() -> u64 {
    // ORDERING: Relaxed — statistical loss counter; see `Ring::push`.
    recorder().map_or(0, |r| r.overwritten.load(Ordering::Relaxed))
}

/// Whether a recorder is installed and tracing is on.
pub fn is_enabled() -> bool {
    // ORDERING: Relaxed — advisory gate only; no data is published through
    // the flag (the ring travels via the `RECORDER` lock), so a stale read
    // merely records or skips a span near an install/uninstall edge.
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide span id allocator; 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    /// The top of the stack is the default parent for a new span.
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn next_span_id() -> u64 {
    // ORDERING: Relaxed — the RMW alone guarantees unique ids; nothing
    // else is ordered by the span-id counter.
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Small dense id for the calling thread (1, 2, … in first-use order),
/// used as the Chrome-trace `tid`.
pub fn thread_id() -> u64 {
    TID.with(|cell| {
        let v = cell.get();
        if v != 0 {
            return v;
        }
        // ORDERING: Relaxed — the RMW alone guarantees unique ids; no
        // other memory is ordered by the tid counter.
        let fresh = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        cell.set(fresh);
        fresh
    })
}

struct SpanInner {
    ring: Arc<Ring>,
    cat: &'static str,
    name: &'static str,
    tid: u64,
    id: u64,
    parent: u64,
    parent_pid: u64,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII span guard: records one [`SpanEvent`] on drop. Inert (all
/// methods are no-ops) when tracing is disabled.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a typed key/value field (builder style; no-op when inert).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Declares a causal parent in another process (builder style; no-op
    /// when inert, or when `id` is 0 — i.e. the sender was untraced).
    /// Overrides the positional local parent.
    pub fn remote_parent(mut self, pid: u64, id: u64) -> Self {
        if id != 0 {
            if let Some(inner) = &mut self.inner {
                inner.parent = id;
                inner.parent_pid = pid;
            }
        }
        self
    }

    /// This span's process-unique id, or 0 when inert. Carry it in a
    /// fleet envelope so the receiving process can link its span back
    /// here via [`Span::remote_parent`].
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Whether this span will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end = now_ns();
            // Pop by id, scanning from the top: robust to non-LIFO drops
            // (a span returned from a function and closed later). A span
            // dropped on a different thread than it was opened on simply
            // isn't found — its entry is cleaned up when that stack drains.
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                    stack.remove(pos);
                }
            });
            inner.ring.push(SpanEvent {
                cat: inner.cat,
                name: inner.name,
                tid: inner.tid,
                id: inner.id,
                parent: inner.parent,
                parent_pid: inner.parent_pid,
                start_ns: inner.start_ns,
                dur_ns: end.saturating_sub(inner.start_ns),
                fields: inner.fields,
            });
        }
    }
}

/// Opens a span. When tracing is disabled this is one relaxed atomic
/// load and returns an inert guard — no clock read, no allocation.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    // ORDERING: Relaxed — fast-path gate; see `is_enabled` for why a
    // stale read is harmless here.
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { inner: None };
    }
    let Some(ring) = recorder() else {
        return Span { inner: None };
    };
    let id = next_span_id();
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            ring,
            cat,
            name,
            tid: thread_id(),
            id,
            parent,
            parent_pid: 0,
            start_ns: now_ns(),
            fields: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Tracing state is process-global; tests that install/uninstall
    /// serialize on this lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = guard();
        let _ = uninstall();
        let s = span("t", "noop").field("k", 1u64);
        assert!(!s.is_recording());
        drop(s);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_record_fields_and_nesting_order() {
        let _g = guard();
        install_ring(16);
        {
            let _outer = span("t", "outer").field("device", 3usize);
            let _inner = span("t", "inner").field("ok", true);
        }
        let events = uninstall();
        assert_eq!(events.len(), 2);
        // Sorted by start time: outer opened first.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].fields, vec![("device", FieldValue::U64(3))]);
        assert_eq!(events[1].name, "inner");
        // The inner span closes before the outer: proper nesting by time.
        let (o, i) = (&events[0], &events[1]);
        assert!(i.start_ns >= o.start_ns);
        assert!(i.start_ns + i.dur_ns <= o.start_ns + o.dur_ns);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_losses() {
        let _g = guard();
        install_ring(2);
        for _ in 0..5 {
            drop(span("t", "x"));
        }
        assert_eq!(overwritten(), 3);
        let events = uninstall();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn spans_from_many_threads_all_land() {
        let _g = guard();
        install_ring(256);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        drop(span("t", "mt"));
                    }
                });
            }
        });
        let events = uninstall();
        assert_eq!(events.len(), 64);
        assert!(events.iter().all(|e| e.name == "mt"));
    }

    #[test]
    fn span_ids_link_children_to_parents() {
        let _g = guard();
        install_ring(16);
        {
            let outer = span("t", "outer");
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span("t", "inner");
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = span("t", "sibling");
        }
        let events = uninstall();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let sibling = events.iter().find(|e| e.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0, "outer is a root span");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id, "stack popped inner on drop");
        assert_eq!(inner.parent_pid, 0, "local parent has no pid");
    }

    #[test]
    fn remote_parent_overrides_local_nesting() {
        let _g = guard();
        install_ring(16);
        {
            let _outer = span("t", "outer");
            let _linked = span("t", "linked").remote_parent(42, 7);
        }
        let events = uninstall();
        let linked = events.iter().find(|e| e.name == "linked").unwrap();
        assert_eq!(linked.parent, 7);
        assert_eq!(linked.parent_pid, 42);
        // An untraced sender (id 0) must not clobber the local parent.
        install_ring(16);
        {
            let outer_id;
            {
                let outer = span("t", "outer2");
                outer_id = outer.id();
                let _kept = span("t", "kept").remote_parent(42, 0);
            }
            let events = uninstall();
            let kept = events.iter().find(|e| e.name == "kept").unwrap();
            assert_eq!(kept.parent, outer_id);
            assert_eq!(kept.parent_pid, 0);
        }
    }

    #[test]
    fn inert_spans_report_id_zero() {
        let _g = guard();
        let _ = uninstall();
        let s = span("t", "noop");
        assert_eq!(s.id(), 0);
        let s = s.remote_parent(1, 2);
        assert!(!s.is_recording());
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join();
        assert!(other.is_ok_and(|t| t != a));
    }
}
