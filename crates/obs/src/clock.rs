//! The workspace's only sanctioned monotonic-clock access.
//!
//! All timestamps are nanoseconds since a process-wide epoch anchored on
//! first use, so traces from one process share a single timeline and
//! Chrome-trace timestamps stay small. Other crates never name
//! `std::time::Instant` (xtask rule 3); they hold a [`Stopwatch`] or a
//! raw [`now_ns`] reading instead.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (anchored on first call).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// A started monotonic timer. The workspace-wide replacement for holding
/// an `Instant` directly.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        // Anchor the epoch first so `now_ns` readings taken later are
        // guaranteed to be comparable with this stopwatch's start.
        epoch();
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        let d = sw.elapsed();
        assert!(d.as_nanos() <= sw.elapsed().as_nanos());
        assert!(sw.elapsed_ns() >= d.as_nanos() as u64);
    }
}
