//! # fedsc-obs — observability substrate for the Fed-SC workspace
//!
//! Structured tracing (hierarchical spans with static names and typed
//! key/value fields) plus a metrics registry (counters, gauges,
//! fixed-bucket histograms), with two exporters: Chrome `trace_event`
//! JSON (loadable in Perfetto / `chrome://tracing`) and a flat JSON
//! metrics snapshot.
//!
//! ## Design rules
//!
//! * **Wall-clock confinement.** This crate is the only place in the
//!   workspace (besides the transport deadline helper,
//!   `crates/transport/src/timing.rs`) allowed to read the monotonic
//!   clock. Everything else times itself through [`Stopwatch`] /
//!   [`now_ns`], enforced by `cargo xtask check` rule 3.
//! * **Determinism is untouched.** Neither spans nor metrics feed back
//!   into any computation: no RNG, no data-dependent branching on time.
//!   A seeded run with tracing enabled is byte-identical to the same
//!   run with tracing disabled.
//! * **Zero cost when disabled.** [`span`] checks one relaxed atomic
//!   and returns an inert guard — no clock read, no allocation — when
//!   no recorder is installed (the default, "no-op recorder" state).
//! * **Lock-minimal recording.** The ring buffer has no global lock:
//!   a relaxed fetch-add claims a slot, and each slot has its own tiny
//!   mutex that is only ever contended when two threads land on the
//!   same slot modulo the capacity.
//!
//! ## Quick start
//!
//! ```
//! fedsc_obs::trace::install_ring(4096);
//! {
//!     let _span = fedsc_obs::span("fedsc", "local.affinity").field("device", 3u64);
//!     fedsc_obs::metrics::counter("demo.items").add(10);
//! }
//! let events = fedsc_obs::trace::uninstall();
//! let trace = fedsc_obs::export::chrome_trace_json(&events);
//! assert!(fedsc_obs::export::validate_chrome_trace(&trace).is_ok());
//! let snap = fedsc_obs::metrics::snapshot();
//! assert_eq!(snap.counters.get("demo.items"), Some(&10));
//! ```

pub mod clock;
pub mod export;
pub mod fleet;
pub mod metrics;
pub mod trace;

pub use clock::{now_ns, Stopwatch};
pub use fleet::{Envelope, FleetCollector, FleetSpan, TraceContext};
pub use metrics::{LazyCounter, LazyGauge, LazyHistogram, MetricsSnapshot};
pub use trace::{span, FieldValue, Span, SpanEvent};
