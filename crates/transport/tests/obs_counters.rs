//! Injected-fault metrics vs. the seeded fault schedule: every
//! `transport.fault.*` counter increment must correspond to exactly one
//! transcript line of the same class, so the counters are not estimates —
//! they *are* the schedule. The retry counter is cross-checked the same
//! way: in an exchange that ultimately succeeds, every injected failure
//! (drop / truncate / bit-flip) costs exactly one retry.

use bytes::Bytes;
use fedsc_obs::metrics::snapshot;
use fedsc_transport::{
    with_retry, DeviceTransport, FaultConfig, FaultyInMemoryTransport, ServerTransport, Transport,
};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

const DEVICES: usize = 6;
const RETRIES: u32 = 40;

/// Serializes tests in this binary: the metrics registry is process-global,
/// so counter deltas are only exact when one exchange runs at a time.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn counter(name: &str) -> u64 {
    snapshot().counters.get(name).copied().unwrap_or(0)
}

/// Runs one full seeded exchange (every device uploads with retries, the
/// server answers every device with retries) and returns the transcript.
fn run_exchange(fault: FaultConfig) -> String {
    let transport = FaultyInMemoryTransport::new(fault);
    let (mut server, mut devices) = transport.open(DEVICES).expect("open");
    for (z, dev) in devices.iter_mut().enumerate() {
        let body = Bytes::from(vec![z as u8; 48 + z]);
        with_retry(RETRIES, Duration::ZERO, || dev.send_uplink(&body))
            .expect("uplink within retry budget");
    }
    let mut seen = [false; DEVICES];
    let mut remaining = DEVICES;
    while remaining > 0 {
        let (z, _) = server
            .recv_uplink(Duration::from_secs(10))
            .expect("uplink arrives");
        if !seen[z] {
            seen[z] = true;
            remaining -= 1;
        }
    }
    for z in 0..DEVICES {
        let reply = Bytes::from(vec![0xF0 | z as u8; 16]);
        with_retry(RETRIES, Duration::ZERO, || server.send_downlink(z, &reply))
            .expect("downlink within retry budget");
    }
    for dev in devices.iter_mut() {
        let _ = dev
            .recv_downlink(Duration::from_secs(10))
            .expect("downlink arrives");
    }
    drop(devices);
    drop(server);
    transport.transcript()
}

/// Counts transcript lines whose event matches `needle`.
fn lines_with(transcript: &str, needle: &str) -> u64 {
    transcript.lines().filter(|l| l.contains(needle)).count() as u64
}

#[test]
fn fault_counters_match_the_seeded_transcript_exactly() {
    let _g = guard();
    let before = [
        counter("transport.fault.drop"),
        counter("transport.fault.truncate"),
        counter("transport.fault.bit_flip"),
        counter("transport.fault.duplicate"),
        counter("transport.fault.reorder"),
        counter("transport.retries"),
    ];
    let transcript = run_exchange(FaultConfig {
        seed: 1234,
        drop: 0.25,
        duplicate: 0.2,
        bit_flip: 0.15,
        truncate: 0.1,
        ..FaultConfig::default()
    });
    let delta = |i: usize, name: &str| counter(name) - before[i];

    let drops = lines_with(&transcript, " drop");
    let truncates = lines_with(&transcript, " truncate ");
    let flips = lines_with(&transcript, " bitflip ");
    // A duplicate decision shows up either as a `dup`-marked delivery or as
    // a two-frame reorder hold; this plan has reorder off, so `dup` lines
    // alone are the schedule.
    let dups = lines_with(&transcript, " dup");
    assert!(drops + truncates + flips + dups > 0, "schedule never fired");

    assert_eq!(delta(0, "transport.fault.drop"), drops, "{transcript}");
    assert_eq!(
        delta(1, "transport.fault.truncate"),
        truncates,
        "{transcript}"
    );
    assert_eq!(delta(2, "transport.fault.bit_flip"), flips, "{transcript}");
    assert_eq!(delta(3, "transport.fault.duplicate"), dups, "{transcript}");
    assert_eq!(delta(4, "transport.fault.reorder"), 0, "{transcript}");
    // Every injected failure forced exactly one retry (the exchange
    // succeeded, so no attempt died with its budget exhausted).
    assert_eq!(
        delta(5, "transport.retries"),
        drops + truncates + flips,
        "{transcript}"
    );
}

#[test]
fn reorder_counter_matches_hold_lines() {
    let _g = guard();
    let before = (
        counter("transport.fault.reorder"),
        counter("transport.fault.duplicate"),
    );
    // Reorder holds a frame until the *next* send on the same link, so the
    // one-shot exchange above would strand it; drive one uplink with many
    // sends instead (held frames flush when the endpoint drops).
    let transport = FaultyInMemoryTransport::new(FaultConfig {
        seed: 77,
        duplicate: 0.3,
        reorder: 0.3,
        ..FaultConfig::default()
    });
    let (server, mut devices) = transport.open(1).expect("open");
    for i in 0..40u8 {
        devices[0]
            .send_uplink(&Bytes::from(vec![i; 32]))
            .expect("lossless plan");
    }
    drop(devices);
    drop(server);
    let transcript = transport.transcript();
    let holds = lines_with(&transcript, " hold ");
    let dup_deliveries = lines_with(&transcript, " dup");
    let dup_holds = lines_with(&transcript, " hold n=2");
    assert!(holds > 0, "reorder never fired:\n{transcript}");
    assert_eq!(
        counter("transport.fault.reorder") - before.0,
        holds,
        "{transcript}"
    );
    // A duplicate decision shows up either as a `dup`-marked delivery or
    // as a two-frame hold.
    assert_eq!(
        counter("transport.fault.duplicate") - before.1,
        dup_deliveries + dup_holds,
        "{transcript}"
    );
}

#[test]
fn clean_exchange_mirrors_link_stats_and_counts_messages() {
    let _g = guard();
    let before = (
        counter("transport.msgs_sent"),
        counter("transport.msgs_received"),
        counter("transport.bytes_sent"),
        counter("transport.bytes_received"),
    );
    let transport = FaultyInMemoryTransport::new(FaultConfig::default());
    let (mut server, mut devices) = transport.open(DEVICES).expect("open");
    let mut stats_sent = 0usize;
    let mut stats_received = 0usize;
    for (z, dev) in devices.iter_mut().enumerate() {
        dev.send_uplink(&Bytes::from(vec![z as u8; 64]))
            .expect("uplink");
    }
    for _ in 0..DEVICES {
        let _ = server.recv_uplink(Duration::from_secs(5)).expect("recv");
    }
    for z in 0..DEVICES {
        server
            .send_downlink(z, &Bytes::from(vec![9; 8]))
            .expect("downlink");
    }
    for dev in devices.iter_mut() {
        let _ = dev.recv_downlink(Duration::from_secs(5)).expect("reply");
    }
    for dev in &devices {
        stats_sent += dev.stats().bytes_sent;
        stats_received += dev.stats().bytes_received;
    }
    stats_sent += server.stats().bytes_sent;
    stats_received += server.stats().bytes_received;

    // On a lossless plan the exchange is fully symmetric: 6 uplinks + 6
    // downlinks, and the global byte counters agree with the summed
    // per-endpoint `LinkStats` they mirror.
    assert_eq!(counter("transport.msgs_sent") - before.0, 12);
    assert_eq!(counter("transport.msgs_received") - before.1, 12);
    assert_eq!(
        counter("transport.bytes_sent") - before.2,
        stats_sent as u64
    );
    assert_eq!(
        counter("transport.bytes_received") - before.3,
        stats_received as u64
    );
    assert_eq!(stats_sent, stats_received);
}
