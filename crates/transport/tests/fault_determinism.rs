//! Determinism of seeded fault injection: the same seed and fault plan
//! must produce a **byte-identical transcript** of link events, run after
//! run, whether the endpoints are driven sequentially or from one thread
//! per device. This is the property that makes fault-plan regressions
//! diffable and chaos tests reproducible.

use bytes::Bytes;
use fedsc_transport::{
    with_retry, DeviceTransport, FaultConfig, FaultyInMemoryTransport, ServerTransport, Transport,
};
use std::time::Duration;

const DEVICES: usize = 6;
const RETRIES: u32 = 40;

fn plan(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop: 0.25,
        duplicate: 0.2,
        bit_flip: 0.15,
        truncate: 0.1,
        // Reorder holds a frame until the *next* send on the link; in this
        // one-shot workload each link sends once, so reorder would strand
        // a message. Its determinism is covered by the crate's unit tests.
        ..FaultConfig::default()
    }
}

fn payload(z: usize) -> Bytes {
    Bytes::from(vec![z as u8; 64 + z])
}

fn reply_byte(z: usize) -> u8 {
    0xF0 | (z as u8 & 0x0F)
}

/// One device's half of the exchange: upload with retries, await the
/// server's recognizable reply.
fn run_device<D: DeviceTransport>(z: usize, dev: &mut D) {
    let body = payload(z);
    with_retry(RETRIES, Duration::ZERO, || dev.send_uplink(&body))
        .expect("uplink within retry budget");
    let got = dev
        .recv_downlink(Duration::from_secs(10))
        .expect("downlink arrives");
    assert_eq!(got.as_slice()[0], reply_byte(z));
}

/// Collects every device's uplink (deduplicating duplicate deliveries),
/// then answers each with a recognizable byte, retrying dropped sends.
fn serve<S: ServerTransport>(server: &mut S) {
    let mut seen = [false; DEVICES];
    let mut remaining = DEVICES;
    while remaining > 0 {
        let (z, body) = server
            .recv_uplink(Duration::from_secs(10))
            .expect("uplink arrives");
        if seen[z] {
            continue;
        }
        assert_eq!(body.as_slice(), payload(z).as_slice());
        seen[z] = true;
        remaining -= 1;
    }
    for z in 0..DEVICES {
        let reply = Bytes::from(vec![reply_byte(z); 16]);
        with_retry(RETRIES, Duration::ZERO, || server.send_downlink(z, &reply))
            .expect("downlink within retry budget");
    }
}

/// Runs the full one-shot exchange (every device uploads with retries, the
/// server answers every device with retries) and returns the transcript.
/// `threaded` picks one-thread-per-device vs. fully sequential execution.
fn run_exchange(seed: u64, threaded: bool) -> String {
    let transport = FaultyInMemoryTransport::new(plan(seed));
    let (mut server, mut devices) = transport.open(DEVICES).expect("open");

    if threaded {
        crossbeam::thread::scope(|scope| {
            for (z, dev) in devices.iter_mut().enumerate() {
                scope.spawn(move |_| run_device(z, dev));
            }
            serve(&mut server);
        })
        .expect("no panics");
    } else {
        for (z, dev) in devices.iter_mut().enumerate() {
            let body = payload(z);
            with_retry(RETRIES, Duration::ZERO, || dev.send_uplink(&body))
                .expect("uplink within retry budget");
        }
        serve(&mut server);
        for (z, dev) in devices.iter_mut().enumerate() {
            let got = dev
                .recv_downlink(Duration::from_secs(10))
                .expect("downlink arrives");
            assert_eq!(got.as_slice()[0], reply_byte(z));
        }
    }
    drop(devices);
    drop(server);
    transport.transcript()
}

#[test]
fn same_seed_same_transcript_across_runs() {
    let a = run_exchange(1234, false);
    let b = run_exchange(1234, false);
    assert!(!a.is_empty());
    assert_eq!(a, b, "two sequential runs diverged");
}

#[test]
fn transcript_is_identical_across_thread_counts() {
    let sequential = run_exchange(1234, false);
    for _ in 0..3 {
        let threaded = run_exchange(1234, true);
        assert_eq!(
            sequential, threaded,
            "per-device threading changed the fault transcript"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_exchange(1, false);
    let b = run_exchange(2, false);
    assert_ne!(a, b, "fault plans ignored the seed");
}

#[test]
fn transcript_mentions_each_fault_class() {
    // With 6 uplinks + 6 downlinks at these rates, every enabled fault
    // class fires with overwhelming probability at this fixed seed.
    let t = run_exchange(1234, false);
    for needle in ["drop", "deliver", "dup"] {
        assert!(t.contains(needle), "transcript lacks `{needle}`:\n{t}");
    }
}
